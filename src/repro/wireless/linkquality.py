"""Link quality: SIR → bit error rate → packet loss.

The paper gates *modality* on SIR thresholds; physically, low SIR also
means bit errors and lost frames.  This module provides the standard
non-coherent FSK error model (consistent with the Goodman–Mandayam
frame-success function already used in power control)::

    BER(gamma)  = 0.5 * exp(-gamma / 2)
    P_loss(pkt) = 1 - (1 - BER)**bits

so the simulated radio link's loss rate can be *coupled* to the live SIR
(:meth:`~repro.core.basestation.BaseStation.couple_channel`), making the
RTP layer, the tier policy and the physics interact the way a real
deployment would.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .sir import from_db

__all__ = ["bit_error_rate", "packet_loss_probability", "loss_for_sir_db", "effective_throughput"]

ArrayLike = Union[float, np.ndarray]


def bit_error_rate(gamma: ArrayLike) -> ArrayLike:
    """Non-coherent FSK BER at linear SIR ``gamma`` (capped at 0.5)."""
    g = np.asarray(gamma, dtype=float)
    if np.any(g < 0):
        raise ValueError("SIR must be non-negative")
    ber = 0.5 * np.exp(-g / 2.0)
    return float(ber) if np.ndim(gamma) == 0 else ber


def packet_loss_probability(gamma: ArrayLike, packet_bits: int = 8000) -> ArrayLike:
    """Probability a ``packet_bits``-bit frame is lost at SIR ``gamma``.

    Assumes independent bit errors and no FEC — the pessimistic bound the
    paper's era hardware roughly obeyed for long frames.
    """
    if packet_bits <= 0:
        raise ValueError("packet_bits must be positive")
    ber = np.asarray(bit_error_rate(gamma), dtype=float)
    loss = 1.0 - (1.0 - ber) ** packet_bits
    return float(loss) if np.ndim(gamma) == 0 else loss


def loss_for_sir_db(
    sir_db: ArrayLike,
    packet_bits: int = 8000,
    cap: float = 0.98,
    coding_gain_db: float = 10.0,
) -> ArrayLike:
    """Convenience: dB in, loss probability out (capped below 1.0).

    ``coding_gain_db`` models FEC + spreading: the effective SIR seen by
    the detector is ``sir_db + coding_gain_db``.  The default 10 dB puts
    the paper's 4 dB full-image threshold at ≈1.4 % packet loss for
    1000-byte fragments — heavy but workable, exactly the regime where
    tier gating starts to matter — while channels below the sketch
    threshold are effectively dead for bulk data (the physical
    justification for the BS's modality tiers).

    The cap keeps a coupled simulator link formally usable for short,
    retried control frames even on a dead data channel.
    """
    loss = packet_loss_probability(from_db(np.asarray(sir_db) + coding_gain_db), packet_bits)
    clipped = np.minimum(loss, cap)
    return float(clipped) if np.ndim(sir_db) == 0 else clipped


def effective_throughput(
    gamma: ArrayLike, rate_bps: float = 11_000_000.0, packet_bits: int = 8000
) -> ArrayLike:
    """Goodput after loss: ``rate_bps * (1 - P_loss)`` in bits/second.

    The default raw rate is the 802.11b-style 11 Mb/s channel the
    paper's wireless experiments assume.
    """
    if rate_bps <= 0:
        raise ValueError("rate_bps must be positive")
    loss = packet_loss_probability(gamma, packet_bits)
    return rate_bps * (1.0 - np.asarray(loss, dtype=float))
