"""Power control algorithms for the wireless extension.

Two families, both referenced by the paper:

* **Target-SIR tracking** (Foschini–Miljanic 1993): each client scales its
  power by ``gamma_target / gamma_achieved`` every iteration.  Converges to
  the minimal power vector meeting all targets when the system is feasible
  (spectral radius of the normalized gain matrix < 1).  The base station
  uses this to issue "transmit at lower power" requests (paper: SIR
  threshold 4 dB, achieved 7 dB → request lower power, conserving battery).

* **Utility-based power economics** (Goodman & Mandayam 2000, paper ref
  [9]): utility = information bits delivered per joule::

      u_i = L * R * f(gamma_i) / (M * P_i)

  with frame-success function ``f(gamma) = (1 - exp(-gamma/2))**M``.
  The paper's claim — "if all the clients transmit at a power level
  reduced by the same factor from the original power, the net utility at
  the target is increased for all the clients" — holds in the
  interference-limited regime and is exercised by the FIG9 bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .sir import from_db, sir, to_db

__all__ = [
    "frame_success_rate",
    "utility",
    "uniform_power_scaling",
    "foschini_miljanic",
    "PowerControlResult",
    "feasible_targets",
    "sir_balancing_power",
]


def frame_success_rate(gamma: np.ndarray, frame_bits: int = 80) -> np.ndarray:
    """Probability an ``frame_bits``-bit frame survives at SIR ``gamma``.

    The non-coherent FSK approximation used by Goodman–Mandayam:
    ``f(gamma) = (1 - exp(-gamma/2)) ** M``.
    """
    g = np.asarray(gamma, dtype=float)
    if np.any(g < 0):
        raise ValueError("SIR must be non-negative")
    return (1.0 - np.exp(-g / 2.0)) ** frame_bits


def utility(
    powers: np.ndarray,
    gains: np.ndarray,
    sigma2: float,
    rate_bps: float = 10_000.0,
    frame_bits: int = 80,
    info_bits: int = 64,
) -> np.ndarray:
    """Per-client utility in bits/joule (Goodman–Mandayam Eq. form).

    ``u_i = info_bits * rate * f(gamma_i) / (frame_bits * P_i)``
    """
    p = np.asarray(powers, dtype=float)
    if np.any(p <= 0):
        raise ValueError("powers must be positive for utility")
    gamma = sir(p, gains, sigma2)
    f = frame_success_rate(gamma, frame_bits)
    return info_bits * rate_bps * f / (frame_bits * p)


def uniform_power_scaling(
    powers: np.ndarray,
    gains: np.ndarray,
    sigma2: float,
    factor: float,
    **utility_kwargs,
) -> dict:
    """Scale every client's power by ``factor`` and report the effect.

    Returns a dict with before/after SIR (dB) and utility arrays; the FIG9
    bench asserts that for ``factor < 1`` in the interference-limited
    regime every client's *utility* rises even as each SIR dips slightly.
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    p0 = np.asarray(powers, dtype=float)
    p1 = p0 * factor
    return {
        "powers_before": p0,
        "powers_after": p1,
        "sir_db_before": to_db(sir(p0, gains, sigma2)),
        "sir_db_after": to_db(sir(p1, gains, sigma2)),
        "utility_before": utility(p0, gains, sigma2, **utility_kwargs),
        "utility_after": utility(p1, gains, sigma2, **utility_kwargs),
    }


@dataclass
class PowerControlResult:
    """Outcome of an iterative power-control run."""

    powers: np.ndarray
    sir_db: np.ndarray
    iterations: int
    converged: bool
    history: list[np.ndarray] = field(default_factory=list)


def feasible_targets(
    gains: np.ndarray, targets_db: np.ndarray, sigma2: float = 0.0
) -> bool:
    """Check Foschini–Miljanic feasibility.

    The target vector is achievable iff the spectral radius of
    ``diag(gamma_t) * F`` is < 1, where ``F[i, j] = g_j / g_i`` for
    ``i != j`` (single-cell normalized cross-gain matrix).
    """
    g = np.asarray(gains, dtype=float)
    t = from_db(np.asarray(targets_db, dtype=float))
    n = g.shape[0]
    if n == 1:
        return True  # single client: always feasible given enough power
    F = np.where(np.eye(n, dtype=bool), 0.0, g[None, :] / g[:, None])
    A = t[:, None] * F
    rho = float(np.max(np.abs(np.linalg.eigvals(A))))
    return rho < 1.0


def foschini_miljanic(
    gains: np.ndarray,
    targets_db: np.ndarray,
    sigma2: float,
    p0: Optional[np.ndarray] = None,
    max_power: float = 10.0,
    max_iter: int = 500,
    tol_db: float = 0.01,
    keep_history: bool = False,
) -> PowerControlResult:
    """Distributed target-SIR tracking: ``P <- P * target/achieved``.

    Powers are clamped to ``max_power`` (battery/device limit), so an
    infeasible system saturates rather than diverges — this is exactly the
    "upper limit to the number of clients" behaviour of FIG10.
    """
    g = np.asarray(gains, dtype=float)
    n = g.shape[0]
    targets = from_db(np.broadcast_to(np.asarray(targets_db, dtype=float), (n,)))
    p = np.full(n, 0.1 * max_power) if p0 is None else np.asarray(p0, dtype=float).copy()
    history: list[np.ndarray] = []
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        gamma = sir(p, g, sigma2)
        if keep_history:
            history.append(p.copy())
        if np.all(np.abs(to_db(gamma) - to_db(targets)) < tol_db):
            converged = True
            break
        p = np.minimum(p * targets / gamma, max_power)
    gamma = sir(p, g, sigma2)
    return PowerControlResult(
        powers=p,
        sir_db=np.asarray(to_db(gamma)),
        iterations=it,
        converged=converged,
        history=history,
    )


def sir_balancing_power(gains: np.ndarray, sigma2: float, total_power: float) -> np.ndarray:
    """Split a power budget so all clients see equal received power.

    With equal received powers ``P_i g_i = c`` every client's SIR equals
    ``c / ((n-1) c + sigma2)`` — the max-min fair point for a single cell.
    Used by the BS when admitting heterogeneous-distance clients.
    """
    g = np.asarray(gains, dtype=float)
    if np.any(g <= 0):
        raise ValueError("gains must be positive")
    if total_power <= 0:
        raise ValueError("total_power must be positive")
    inv = 1.0 / g
    return total_power * inv / inv.sum()
