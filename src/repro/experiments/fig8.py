"""FIG8 — Two wireless clients, varying distance.

Paper Sec. 6.3.1: client A moves from 100 m in to 50 m (x-axis points
0–3) and back out (points 3–5) at constant transmit power; client B holds
position.  The base station recomputes each client's SIR (Eq. 1) at every
point and selects the modality tier it will forward for that client
(text / text+sketch / full image, image threshold 4 dB).

Physics to expect: as A approaches, A's own SIR improves (stronger
received signal) while B's SIR *degrades* (A's signal is B's
interference) — and vice versa on the way back out.  The BS tier for each
client tracks its SIR across the thresholds.
"""

from __future__ import annotations

from typing import Optional

from ..core.framework import CollaborationFramework
from ..wireless.channel import NoiseModel, PathLossModel
from ..wireless.mobility import approach_and_retreat
from .harness import ExperimentResult

__all__ = ["run_fig8", "main", "build_two_client_cell"]


def build_two_client_cell(
    seed: int = 0,
    d_a: float = 100.0,
    d_b: float = 80.0,
    power: float = 1.0,
):
    """The FIG8/FIG9 testbed: BS + two wireless clients + a wired peer."""
    fw = CollaborationFramework("fig8", objective="wireless distance sweep", seed=seed)
    wired = fw.add_wired_client("wired")
    bs = fw.add_base_station(
        "bs",
        pathloss=PathLossModel(alpha=4.0, k=1e6),
        noise=NoiseModel(reference_power=1.0, snr_ref_db=40.0),
    )
    a = fw.add_wireless_client("client-a", bs, distance=d_a, tx_power=power)
    b = fw.add_wireless_client("client-b", bs, distance=d_b, tx_power=power)
    wired.join()
    fw.run_for(0.5)
    return fw, bs, a, b, wired


def run_fig8(
    far: float = 100.0,
    near: float = 50.0,
    d_b: float = 80.0,
    power: float = 1.0,
    seed: int = 0,
) -> ExperimentResult:
    """Distance sweep: A 100→50→100 m, B fixed, constant powers."""
    result = ExperimentResult(
        "FIG8",
        "2 wireless clients, varying distance of A",
        columns=(
            "step",
            "distance_a",
            "distance_b",
            "sir_a_db",
            "sir_b_db",
            "tier_a",
            "tier_b",
        ),
    )
    fw, bs, a, b, _wired = build_two_client_cell(seed=seed, d_a=far, d_b=d_b, power=power)
    trace = approach_and_retreat(far=far, near=near, in_steps=3, out_steps=2)
    for step, distance in enumerate(trace):
        a.move_to(distance)          # client reports its new position...
        fw.run_for(0.5)              # ...the control event reaches the BS
        snap = bs.evaluate_qos()     # BS periodically recalculates SIR
        sir_a, tier_a = snap.for_client("client-a")
        sir_b, tier_b = snap.for_client("client-b")
        result.add_row(
            step=step,
            distance_a=distance,
            distance_b=d_b,
            sir_a_db=sir_a,
            sir_b_db=sir_b,
            tier_a=tier_a.name,
            tier_b=tier_b.name,
        )
    result.note(
        "paper: reducing A's distance (points 0-3) changes SIRs considerably;"
        " tiers follow thresholds (image >= 4 dB)"
    )
    return result


def run_fig8_dataflow(
    far: float = 100.0,
    near: float = 50.0,
    d_b: float = 80.0,
    power: float = 1.0,
    seed: int = 0,
) -> ExperimentResult:
    """FIG8's narrative as actual data flow: A shares an image at every
    mobility step and the table records which *modality* the BS let
    through to the session.

    "If a text file is transmitted in a single packet, then BS forwards
    the same on reception ... If the BS receives the base image packet at
    SIR above threshold for image, it will send out the image packets
    too.  Consequently, even in a low throughput network condition, the
    BS is able to send certain modality of information from a wireless
    client to the collaboration network."
    """
    from ..apps.imageviewer import ImageViewer
    from ..media.images import collaboration_scene
    from ..wireless.mobility import approach_and_retreat

    result = ExperimentResult(
        "FIG8b",
        "uplink modality vs distance (A shares an image at each step)",
        columns=(
            "step",
            "distance_a",
            "sir_a_db",
            "tier_a",
            "session_got_packets",
            "session_got_text",
        ),
    )
    fw, bs, a, _b, wired = build_two_client_cell(seed=seed, d_a=far, d_b=d_b, power=power)
    image = collaboration_scene(64, 64, seed=seed + 3)
    camera = ImageViewer("client-a", n_packets=16, target_bpp=2.2)
    trace = approach_and_retreat(far=far, near=near, in_steps=3, out_steps=2)

    for step, distance in enumerate(trace):
        a.move_to(distance)
        fw.run_for(0.5)
        snap = bs.evaluate_qos()
        sir_a, tier_a = snap.for_client("client-a")
        viewed_before = len(wired.viewer.viewed)
        texts_before = len(wired.chat.lines)
        image_id = f"field-{step}"
        announce, packets = camera.share(image_id, image)
        a.send_event(announce)
        for p in packets:
            a.send_event(p)
        fw.run_for(3.0)
        got_packets = (
            image_id in wired.viewer.viewed
            and wired.viewer.viewed[image_id].assembly.usable_prefix > 0
        )
        got_text = len(wired.chat.lines) > texts_before
        result.add_row(
            step=step,
            distance_a=distance,
            sir_a_db=sir_a,
            tier_a=tier_a.name,
            session_got_packets=got_packets,
            session_got_text=got_text,
        )
        assert got_packets or got_text or tier_a.name == "NOTHING"
    result.note(
        "paper Sec 6.3.1: 'even in a low throughput network condition, the"
        " BS is able to send certain modality of information'"
    )
    return result


def main() -> ExperimentResult:  # pragma: no cover - exercised via bench
    res = run_fig8()
    print(res.format_table())
    res2 = run_fig8_dataflow()
    print(res2.format_table())
    return res


if __name__ == "__main__":  # pragma: no cover
    main()
