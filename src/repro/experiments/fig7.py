"""FIG7 — Image-viewer parameters versus CPU load.

Paper Sec. 6.2: CPU load sweeps 30 → 100 %, dropping the packet budget
from 16 to 0.  The reported BPP range (14.3 → 0.7) and compression-ratio
range (1.6 → 32.7) are mutually consistent with a **24-bit color** image
(24 / 14.3 ≈ 1.68; 24 / 0.7 ≈ 34), so this experiment shares color.
At 100 % load zero packets are accepted — BPP 0, CR undefined (the last
paper point, ~0.7 BPP, is our 1-packet row).
"""

from __future__ import annotations

from typing import Optional

from ..core.framework import CollaborationFramework
from ..hosts.workload import Trace
from ..media.images import collaboration_scene, to_rgb
from .harness import ExperimentResult

__all__ = ["run_fig7", "main"]


def run_fig7(
    cpu_levels: Optional[list[float]] = None,
    image_size: int = 64,
    target_bpp: float = 14.3,
    seed: int = 0,
) -> ExperimentResult:
    """Run the CPU-load sweep with a color image."""
    if cpu_levels is None:
        cpu_levels = [30, 40, 50, 60, 70, 80, 90, 95, 100]
    result = ExperimentResult(
        "FIG7",
        "image viewer parameters vs CPU load (color image)",
        columns=("cpu_load", "packets", "bpp", "compression_ratio", "psnr_db"),
    )
    fw = CollaborationFramework("fig7", objective="cpu-load adaptation sweep", seed=seed)
    sender = fw.add_wired_client("sender", image_target_bpp=target_bpp)
    viewer = fw.add_wired_client(
        "viewer",
        cpu_workload=Trace(cpu_levels),
        image_target_bpp=target_bpp,
    )
    sender.join()
    viewer.join()
    fw.run_for(0.5)
    image = to_rgb(collaboration_scene(image_size, image_size, seed=seed + 11))

    for step, level in enumerate(cpu_levels):
        fw.hosts["viewer"].advance_to_tick(step)
        decision = viewer.monitor_and_adapt()
        image_id = f"img-cpu-{step}"
        sender.share_image(image_id, image)
        fw.run_for(3.0)
        view = viewer.viewer.viewed[image_id]
        view.original = image
        report = view.report()
        result.add_row(
            cpu_load=level,
            packets=report.packets_used,
            bpp=report.bpp,
            compression_ratio=(
                report.compression_ratio if report.packets_used > 0 else None
            ),
            psnr_db=report.psnr_db if report.packets_used > 0 else None,
        )
        assert report.packets_used == decision.packets

    result.note(
        "paper: packets 16->0 over CPU load 30->100%; BPP 14.3->0.7;"
        " CR 1.6->32.7 (24-bit color baseline)"
    )
    return result


def main() -> ExperimentResult:  # pragma: no cover - exercised via bench
    res = run_fig7()
    print(res.format_table())
    return res


if __name__ == "__main__":  # pragma: no cover
    main()
