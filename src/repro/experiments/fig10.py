"""FIG10 — Three wireless clients: joins degrade everyone's SIR.

Paper Sec. 6.3.3: "For client 2 joining ... the SIR of client A reduced
by 90% and when client 3 joined, the SIR of client A further reduced by
23%.  Hence, there exists an upper limit to the number of clients that
can join in a session."

The default geometry is solved from the paper's percentages (see
DESIGN.md): with noise σ² and path gain g(d) = k·d⁻⁴, a second client at
distance d₂ takes A's SIR down by exactly σ²/(P·g(d₂)+σ²); choosing
P·g(d₂) = 9σ² gives the 90 % drop, and P·g(d₃) = 0.3·(P·g(d₂)+σ²) the
further 23 %.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.framework import CollaborationFramework
from ..wireless.channel import NoiseModel, PathLossModel
from .harness import ExperimentResult

__all__ = ["run_fig10", "solve_join_geometry", "main"]


def solve_join_geometry(
    pathloss: PathLossModel,
    noise: NoiseModel,
    power: float = 1.0,
    drop2: float = 0.90,
    drop3: float = 0.23,
) -> tuple[float, float]:
    """Distances for clients 2 and 3 producing the paper's SIR drops.

    After client 2 joins, SIR_A scales by σ²/(P·g₂+σ²) = 1−drop2;
    after client 3, by (P·g₂+σ²)/(P·g₂+P·g₃+σ²) = 1−drop3.
    """
    s2 = noise.sigma2
    g2 = s2 * (drop2 / (1.0 - drop2)) / power
    i2 = power * g2 + s2
    g3 = i2 * (drop3 / (1.0 - drop3)) / power
    return pathloss.distance_for_gain(g2), pathloss.distance_for_gain(g3)


def run_fig10(
    d_a: float = 60.0,
    power: float = 1.0,
    drop2: float = 0.90,
    drop3: float = 0.23,
    seed: int = 0,
) -> ExperimentResult:
    """Sequential joins; records SIR_A (and all SIRs) after each join."""
    pathloss = PathLossModel(alpha=4.0, k=1e6)
    noise = NoiseModel(reference_power=1.0, snr_ref_db=40.0)
    d2, d3 = solve_join_geometry(pathloss, noise, power, drop2, drop3)

    result = ExperimentResult(
        "FIG10",
        "3 wireless clients: session-size limit from interference",
        columns=(
            "n_clients",
            "sir_a_linear",
            "sir_a_db",
            "drop_vs_prev_pct",
            "tier_a",
            "joined",
        ),
    )
    fw = CollaborationFramework("fig10", objective="join-degradation sweep", seed=seed)
    bs = fw.add_base_station("bs", pathloss=pathloss, noise=noise)
    fw.add_wireless_client("client-a", bs, distance=d_a, tx_power=power)

    prev_sir: Optional[float] = None
    joins = [("client-a", None), ("client-b", d2), ("client-c", d3)]
    for n, (cid, dist) in enumerate(joins, start=1):
        if dist is not None:
            fw.add_wireless_client(cid, bs, distance=dist, tx_power=power)
        snap = bs.evaluate_qos()
        sir_a_db, tier_a = snap.for_client("client-a")
        sir_a_lin = 10.0 ** (sir_a_db / 10.0)
        drop = None
        if prev_sir is not None:
            drop = 100.0 * (1.0 - sir_a_lin / prev_sir)
        result.add_row(
            n_clients=n,
            sir_a_linear=sir_a_lin,
            sir_a_db=sir_a_db,
            drop_vs_prev_pct=drop,
            tier_a=tier_a.name,
            joined=cid,
        )
        prev_sir = sir_a_lin
    result.note(
        f"geometry solved for paper drops: d2={d2:.0f} m, d3={d3:.0f} m;"
        f" expected drops ~{100*drop2:.0f}% then ~{100*drop3:.0f}%"
    )
    return result


def main() -> ExperimentResult:  # pragma: no cover - exercised via bench
    res = run_fig10()
    print(res.format_table())
    return res


if __name__ == "__main__":  # pragma: no cover
    main()
