"""BROKER — dispatch-backend scaling on one synthetic session.

Not a paper figure: an engineering experiment over the semantic
substrate itself.  One population of subscribers (mixed attribute
signatures, so the sharded broker's partitions actually spread) receives
one batch of messages through every broker backend behind the unified
:class:`~repro.messaging.transport.BrokerAPI` —

* the linear :class:`~repro.messaging.broker.SemanticBus`
  (``indexed=False``),
* the predicate-indexed :class:`SemanticBus`, and
* the :class:`~repro.messaging.sharded.ShardedSemanticBus` at a sweep of
  shard counts —

all built through :func:`~repro.messaging.transport.make_broker`.  Every
backend must produce the identical delivery count (the equivalence the
property tests prove); what varies is how many interpreter runs the
batch cost (``checked``) and, for the sharded backend, how many
(selector, shard) pairs were skipped outright because the shard's
attribute universe cannot satisfy the selector's required attributes.

The message mix is deliberately half linear-fallback (disjunctions the
predicate index cannot plan), because that is where shard partitioning
pays: an unindexable selector costs a full-population scan on the flat
bus but only the *relevant shards* on the sharded one.
"""

from __future__ import annotations

import random
import time
from typing import Optional, Sequence

from ..core.profiles import ClientProfile
from ..messaging.message import SemanticMessage
from ..messaging.transport import make_broker
from .harness import ExperimentResult

__all__ = ["run_broker_scale", "main"]

#: attribute-signature templates the population cycles through; distinct
#: signatures land in distinct shards, which is what shard skipping needs
_SIGNATURES: tuple[tuple[str, ...], ...] = (
    ("role", "team"),
    ("role", "zone"),
    ("role", "team", "zone"),
    ("modality", "team"),
    ("modality", "zone"),
    ("role",),
)

_ROLES = ("medic", "scout", "engineer", "observer")
_TEAMS = ("alpha", "bravo", "charlie")
_ZONES = ("north", "south", "east", "west")
_MODALITIES = ("image", "text", "speech")


def _population(n: int, rng: random.Random) -> list[ClientProfile]:
    profiles = []
    for i in range(n):
        sig = _SIGNATURES[i % len(_SIGNATURES)]
        attrs: dict[str, str] = {}
        if "role" in sig:
            attrs["role"] = rng.choice(_ROLES)
        if "team" in sig:
            attrs["team"] = rng.choice(_TEAMS)
        if "zone" in sig:
            attrs["zone"] = rng.choice(_ZONES)
        if "modality" in sig:
            attrs["modality"] = rng.choice(_MODALITIES)
        profiles.append(ClientProfile(f"c{i}", attrs))
    return profiles


def _batch(n: int, rng: random.Random) -> list[SemanticMessage]:
    """Half indexable conjunctions, half linear-fallback disjunctions."""
    messages = []
    for i in range(n):
        if i % 2 == 0:
            sel = f"role == '{rng.choice(_ROLES)}' and team == '{rng.choice(_TEAMS)}'"
        else:
            sel = (
                f"modality == '{rng.choice(_MODALITIES)}' "
                f"or modality == '{rng.choice(_MODALITIES)}'"
            )
        messages.append(
            SemanticMessage.create(
                sender="bench", selector=sel, headers={"seq": i}, kind="broker-scale"
            )
        )
    return messages


def run_broker_scale(
    subscribers: int = 1800,
    messages: int = 48,
    shard_counts: Sequence[int] = (1, 2, 4, 8),
    seed: int = 0,
) -> ExperimentResult:
    """Same population + batch through every broker backend."""
    rng = random.Random(seed)
    profiles = _population(subscribers, rng)
    batch = _batch(messages, rng)

    result = ExperimentResult(
        "BROKER",
        f"dispatch backends, {subscribers} subscribers x {messages} messages",
        columns=(
            "backend",
            "shards",
            "delivered",
            "checked",
            "shard_skips",
            "elapsed_ms",
            "msgs_per_s",
        ),
    )

    def sink(_delivery: object) -> None:
        pass

    backends: list[tuple[str, Optional[int], bool]] = [
        ("linear", None, False),
        ("indexed", None, True),
    ]
    backends += [("sharded", s, True) for s in shard_counts]

    expected_delivered: Optional[int] = None
    for label, shards, indexed in backends:
        broker = make_broker(shards=shards, indexed=indexed)
        for profile in profiles:
            broker.attach(profile, sink)
        t0 = time.perf_counter()
        outcome = broker.publish_many(batch)
        elapsed = time.perf_counter() - t0
        stats = broker.stats()
        delivered = outcome.delivered
        if expected_delivered is None:
            expected_delivered = delivered
        elif delivered != expected_delivered:  # pragma: no cover - equivalence bug
            raise AssertionError(
                f"{label}: delivered {delivered} != reference {expected_delivered}"
            )
        result.add_row(
            backend=label,
            shards=int(stats["shards"]),
            delivered=delivered,
            checked=outcome.candidates_checked,
            shard_skips=int(stats.get("shard_skips", 0)),
            elapsed_ms=elapsed * 1e3,
            msgs_per_s=(messages / elapsed) if elapsed > 0 else float("inf"),
        )
        close = getattr(broker, "close", None)
        if close is not None:
            close()

    result.note("every backend delivers the identical set; only the work varies")
    result.note(
        "disjunction selectors force linear fallback: flat buses scan the whole "
        "population, the sharded broker only its attribute-compatible shards"
    )
    return result


def main() -> ExperimentResult:  # pragma: no cover
    res = run_broker_scale()
    print(res.format_table(float_fmt="{:.3g}"))
    return res


if __name__ == "__main__":  # pragma: no cover
    main()
