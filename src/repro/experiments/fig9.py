"""FIG9 — Two wireless clients, varying transmit power.

Paper Sec. 6.3.2: A's transmit power is stepped up at fixed distances.
A's SIR rises, B's falls.  Two further claims are exercised:

* Goodman–Mandayam scaling — "if all the clients transmit at a power
  level reduced by the same factor ... the net utility at the target is
  increased for all the clients" (utility = bits/joule; SIR dips
  slightly because noise does not scale, but energy efficiency wins);
* "varying the distance is more effective than a variation in power" —
  with path-loss exponent 4, halving distance buys 16× received power
  versus 2× for doubling transmit power.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..wireless.channel import NoiseModel, PathLossModel
from ..wireless.powercontrol import uniform_power_scaling
from .fig8 import build_two_client_cell
from .harness import ExperimentResult

__all__ = ["run_fig9", "run_fig9_scaling", "main"]


def run_fig9(
    power_steps: Optional[list[float]] = None,
    d_a: float = 80.0,
    d_b: float = 80.0,
    seed: int = 0,
) -> ExperimentResult:
    """Power sweep for client A at fixed, equal distances."""
    if power_steps is None:
        power_steps = [0.5, 1.0, 1.5, 2.0, 3.0, 4.0]
    result = ExperimentResult(
        "FIG9",
        "2 wireless clients, varying power of A",
        columns=("step", "power_a", "power_b", "sir_a_db", "sir_b_db", "tier_a", "tier_b"),
    )
    fw, bs, a, b, _wired = build_two_client_cell(seed=seed, d_a=d_a, d_b=d_b)
    for step, power in enumerate(power_steps):
        a.set_power(power)
        fw.run_for(0.5)
        snap = bs.evaluate_qos()
        sir_a, tier_a = snap.for_client("client-a")
        sir_b, tier_b = snap.for_client("client-b")
        result.add_row(
            step=step,
            power_a=power,
            power_b=b.tx_power,
            sir_a_db=sir_a,
            sir_b_db=sir_b,
            tier_a=tier_a.name,
            tier_b=tier_b.name,
        )
    result.note("paper: raising A's power raises SIR_A and depresses SIR_B")
    return result


def run_fig9_scaling(
    factor: float = 0.5,
    d_a: float = 80.0,
    d_b: float = 100.0,
    base_power: float = 2.0,
) -> ExperimentResult:
    """Goodman–Mandayam uniform power reduction (both clients × factor)."""
    pathloss = PathLossModel(alpha=4.0, k=1e6)
    noise = NoiseModel(reference_power=1.0, snr_ref_db=40.0)
    gains = np.array([pathloss.gain(d_a), pathloss.gain(d_b)])
    powers = np.array([base_power, base_power])
    out = uniform_power_scaling(powers, gains, noise.sigma2, factor)
    result = ExperimentResult(
        "FIG9b",
        f"uniform power scaling x{factor} (Goodman-Mandayam)",
        columns=("client", "power_before", "power_after", "sir_db_before", "sir_db_after", "utility_before", "utility_after"),
    )
    for i, cid in enumerate(("client-a", "client-b")):
        result.add_row(
            client=cid,
            power_before=float(out["powers_before"][i]),
            power_after=float(out["powers_after"][i]),
            sir_db_before=float(out["sir_db_before"][i]),
            sir_db_after=float(out["sir_db_after"][i]),
            utility_before=float(out["utility_before"][i]),
            utility_after=float(out["utility_after"][i]),
        )
    result.note("paper claim: utility (bits/joule) improves for every client")
    return result


def main() -> tuple[ExperimentResult, ExperimentResult]:  # pragma: no cover
    res = run_fig9()
    print(res.format_table())
    res2 = run_fig9_scaling()
    print(res2.format_table(float_fmt="{:.4g}"))
    return res, res2


if __name__ == "__main__":  # pragma: no cover
    main()
