"""FIG6 — Image-viewer parameters versus host page faults.

Paper Sec. 6.1: a wired client's host sweeps page faults 30 → 100; the
inference engine (reading the SNMP extension agent) sets the image-packet
budget, which "varies from 1 to 16 in powers of 2".  As packets fall, the
compression ratio rises (≈3.6 → 131 reported) and BPP falls (≈2.1 → 0.1).

This reproduction runs the *entire* stack per sweep point: workload →
simulated host → SNMP agent → SNMP manager → inference engine → packet
budget → multicast image share → progressive reconstruction → metrics.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.framework import CollaborationFramework
from ..hosts.workload import Trace
from ..media.images import collaboration_scene
from .harness import ExperimentResult

__all__ = ["run_fig6", "main"]


def run_fig6(
    fault_levels: Optional[list[float]] = None,
    image_size: int = 64,
    target_bpp: float = 2.2,
    seed: int = 0,
) -> ExperimentResult:
    """Run the page-fault sweep; one row per swept level.

    Parameters
    ----------
    fault_levels:
        Page-fault levels to visit (default: 30..100 in steps of 10,
        the paper's x-axis).
    image_size:
        Side of the shared (grayscale) test image.
    target_bpp:
        Full-quality rate of the coder; 2.2 matches the paper's top BPP.
    """
    if fault_levels is None:
        fault_levels = [30, 40, 50, 60, 70, 80, 90, 100]
    result = ExperimentResult(
        "FIG6",
        "image viewer parameters vs page faults",
        columns=("page_faults", "packets", "bpp", "compression_ratio", "psnr_db"),
    )
    fw = CollaborationFramework("fig6", objective="page-fault adaptation sweep", seed=seed)
    sender = fw.add_wired_client("sender", image_target_bpp=target_bpp)
    viewer = fw.add_wired_client(
        "viewer",
        fault_workload=Trace(fault_levels),
        image_target_bpp=target_bpp,
    )
    sender.join()
    viewer.join()
    fw.run_for(0.5)
    image = collaboration_scene(image_size, image_size, seed=seed + 7)

    for step, level in enumerate(fault_levels):
        fw.hosts["viewer"].advance_to_tick(step)
        decision = viewer.monitor_and_adapt()  # SNMP → inference → budget
        image_id = f"img-pf-{step}"
        sender.share_image(image_id, image)
        fw.run_for(2.0)
        view = viewer.viewer.viewed[image_id]
        view.original = image
        report = view.report()
        result.add_row(
            page_faults=level,
            packets=report.packets_used,
            bpp=report.bpp,
            compression_ratio=report.compression_ratio,
            psnr_db=report.psnr_db,
        )
        assert report.packets_used == decision.packets, "budget must gate reception"

    result.note(
        "paper: packets 16->1 (powers of 2) over page faults 30->100;"
        " CR rises ~3.6->131; BPP falls ~2.1->0.1"
    )
    return result


def main() -> ExperimentResult:  # pragma: no cover - exercised via bench
    res = run_fig6()
    print(res.format_table())
    return res


if __name__ == "__main__":  # pragma: no cover
    main()
