"""CLI: regenerate every paper figure in one run.

Usage::

    python -m repro.experiments            # all figures
    python -m repro.experiments fig6 fig10 # a subset
"""

from __future__ import annotations

import sys

from .broker_scale import run_broker_scale
from .chaos import run_chaos
from .fig6 import run_fig6
from .fig7 import run_fig7
from .fig8 import run_fig8, run_fig8_dataflow
from .fig9 import run_fig9, run_fig9_scaling
from .fig10 import run_fig10
from .multicast_scale import run_multicast_scale

_RUNNERS = {
    "fig6": lambda: [run_fig6()],
    "fig7": lambda: [run_fig7()],
    "fig8": lambda: [run_fig8(), run_fig8_dataflow()],
    "fig9": lambda: [run_fig9(), run_fig9_scaling()],
    "fig10": lambda: [run_fig10()],
    "chaos": lambda: [run_chaos()],
    "broker": lambda: [run_broker_scale()],
    "multicast": lambda: [run_multicast_scale()],
}


def main(argv: list[str]) -> int:
    wanted = argv or list(_RUNNERS)
    unknown = [w for w in wanted if w not in _RUNNERS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}; "
              f"choose from {', '.join(_RUNNERS)}", file=sys.stderr)
        return 2
    for name in wanted:
        for result in _RUNNERS[name]():
            print(result.format_table())
            print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
