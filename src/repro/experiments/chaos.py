"""CHAOS — a collaboration session run under injected degraded conditions.

Not a paper figure: a robustness drill.  Three wired clients chat, share
an image, and run their adaptation loops while a seeded
:class:`~repro.network.faults.FaultPlan` degrades the deployment — the
sender's access link flaps, one client is partitioned off, another
host's SNMP agent crashes, and the LAN suffers a burst-loss episode, a
payload-corruption window, a latency spike, and a duplication window.
The run demonstrates the framework's graceful-degradation machinery end
to end:

* SNMP retries back off in virtual time and the per-agent circuit
  breaker fails fast while an agent is down;
* adaptation decisions fall back to the conservative floor once the
  management plane is dark beyond its stale grace;
* NACK-driven selective retransmission repairs fragment loss;
* corrupted datagrams hit every receiver's hardened decode path: they
  are counted (``decode_failures``) and dropped, never fatal;
* the packet-disposition conservation invariant
  (``sent == delivered + dropped + duplicated``) holds throughout —
  corruption damages a delivered packet's payload, it is neither a drop
  nor a duplicate.

Everything is driven by the virtual clock and seeded RNGs, so two runs
with the same seed produce *byte-identical* telemetry
(:func:`chaos_telemetry`) — the property the regression suite pins.
"""

from __future__ import annotations

from ..core.framework import CollaborationFramework
from ..core.telemetry import deployment_report, format_report
from ..media.images import collaboration_scene
from ..network.faults import (
    AgentCrash,
    BurstLoss,
    ChaosController,
    Corruption,
    Duplication,
    FaultPlan,
    LatencySpike,
    LinkFlap,
    Partition,
    Reordering,
)
from .harness import ExperimentResult

__all__ = ["default_chaos_plan", "run_chaos", "chaos_telemetry", "main"]

#: Virtual seconds the drill runs for (past the last fault window).
DURATION = 24.0


def default_chaos_plan() -> FaultPlan:
    """The drill's schedule: every fault family, non-overlapping enough
    to attribute effects, overlapping enough to exercise nesting."""
    return FaultPlan(
        events=(
            LinkFlap("alice", "lan-switch", start=4.0, duration=2.0),
            BurstLoss("bob", "lan-switch", start=7.0, duration=3.0),
            Partition(("carol",), start=10.0, duration=3.0),
            AgentCrash("bob", start=13.0, duration=5.0),
            Corruption(start=15.0, duration=3.0, probability=0.4),
            LatencySpike(start=18.0, duration=2.0, extra=0.05),
            Duplication(start=19.0, duration=3.5, probability=0.6),
            Reordering(start=20.0, duration=2.0, probability=0.3),
        )
    )


def _run(seed: int, duration: float) -> tuple[CollaborationFramework, ChaosController]:
    """Build the deployment, install the plan, and run it to the end."""
    fw = CollaborationFramework(
        "chaos", objective="degraded-conditions drill", seed=seed
    )
    alice = fw.add_wired_client("alice")
    bob = fw.add_wired_client("bob")
    carol = fw.add_wired_client("carol")
    for client in (alice, bob, carol):
        client.join()
    controller = ChaosController(
        fw.network, default_chaos_plan(), seed=seed, agents=fw.agents
    ).install()

    # steady traffic + adaptation across every fault window
    for client in (alice, bob, carol):
        client.start_adaptation_loop(interval=1.0)
    counter = [0]

    def chat_tick() -> None:
        counter[0] += 1
        alice.send_chat(f"status {counter[0]}")
        if counter[0] * 1.5 < duration:
            fw.scheduler.call_after(1.5, chat_tick)

    fw.scheduler.call_after(0.5, chat_tick)
    image = collaboration_scene(32, 32, seed=seed + 7)
    fw.scheduler.call_after(2.5, lambda: alice.share_image("img-calm", image))
    fw.scheduler.call_after(11.0, lambda: bob.share_image("img-storm", image))
    fw.run_for(duration)
    return fw, controller


def chaos_telemetry(seed: int = 0, duration: float = DURATION) -> str:
    """One drill run rendered as a deterministic telemetry blob.

    Same seed → byte-identical output: the deployment report, the
    network's packet-disposition counters, and the chaos controller's
    event counters are all functions of the virtual clock and the seeded
    RNGs only.
    """
    fw, controller = _run(seed, duration)
    net = fw.network
    lines = [format_report(deployment_report(fw))]
    lines.append(
        "network: "
        f"sent={net.packets_sent} delivered={net.packets_delivered} "
        f"dropped={net.packets_dropped} duplicated={net.packets_duplicated} "
        f"copies={net.copies_delivered}"
    )
    lines.append(
        "chaos: " + " ".join(f"{k}={v}" for k, v in sorted(controller.report().items()))
    )
    breakers = {
        name: client.snmp.breaker_state(client.snmp_host)
        for name, client in sorted(fw.wired_clients.items())
    }
    lines.append("breakers: " + " ".join(f"{k}={v}" for k, v in breakers.items()))
    return "\n".join(lines)


def run_chaos(seed: int = 0, duration: float = DURATION) -> ExperimentResult:
    """Run the drill; one row per peer plus the disposition invariant."""
    fw, controller = _run(seed, duration)
    result = ExperimentResult(
        "CHAOS",
        "collaboration under injected faults (seeded, deterministic)",
        columns=(
            "peer",
            "received",
            "accepted",
            "chat_lines",
            "decisions",
            "snmp_failures",
            "fast_failures",
            "last_budget",
        ),
    )
    for name, client in sorted(fw.wired_clients.items()):
        result.add_row(
            peer=name,
            received=client.endpoint.received_messages,
            accepted=client.endpoint.accepted_messages,
            chat_lines=len(client.chat.lines),
            decisions=len(client.decision_log),
            snmp_failures=getattr(client, "snmp_failures", 0),
            fast_failures=client.snmp.fast_failures,
            last_budget=client.viewer.packet_budget,
        )
    net = fw.network
    conserved = net.packets_sent == (
        net.packets_delivered + net.packets_dropped + net.packets_duplicated
    )
    result.note(
        f"packet disposition: sent={net.packets_sent} "
        f"delivered={net.packets_delivered} dropped={net.packets_dropped} "
        f"duplicated={net.packets_duplicated} (conserved={conserved})"
    )
    result.note(
        "chaos events: "
        + " ".join(f"{k}={v}" for k, v in sorted(controller.report().items()))
    )
    assert conserved, "packet disposition counters must be conserved"
    return result


def main() -> ExperimentResult:  # pragma: no cover - exercised via tests
    res = run_chaos()
    print(res.format_table())
    return res


if __name__ == "__main__":  # pragma: no cover
    main()
