"""Shared experiment harness: run, collect, and format figure series.

Each ``figN`` module produces an :class:`ExperimentResult` — an ordered
table of rows plus the paper's reported shape for EXPERIMENTS.md — and a
``main()`` that prints it.  Benchmarks re-run the same entry points and
assert the shape invariants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """One reproduced figure/table."""

    experiment_id: str
    title: str
    columns: tuple[str, ...]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append a row; unknown columns are rejected to catch typos."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns {sorted(unknown)}; declared {self.columns}")
        self.rows.append(values)

    def column(self, name: str) -> list[Any]:
        """One column as a list (missing cells become None)."""
        if name not in self.columns:
            raise KeyError(f"no column {name!r}")
        return [row.get(name) for row in self.rows]

    def note(self, text: str) -> None:
        """Attach a free-form observation (printed under the table)."""
        self.notes.append(text)

    # ------------------------------------------------------------------
    def format_table(self, float_fmt: str = "{:.2f}") -> str:
        """Render as a fixed-width text table (the bench output)."""
        def fmt(v: Any) -> str:
            if v is None:
                return "-"
            if isinstance(v, bool):
                return str(v)
            if isinstance(v, float):
                if v != v:  # nan
                    return "-"
                if v in (float("inf"), float("-inf")):
                    return "inf" if v > 0 else "-inf"
                return float_fmt.format(v)
            return str(v)

        header = list(self.columns)
        body = [[fmt(row.get(c)) for c in self.columns] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [
            f"== {self.experiment_id}: {self.title} ==",
            "  ".join(h.ljust(w) for h, w in zip(header, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for r in body:
            lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Render as CSV (header row + data rows; RFC 4180 quoting)."""

        def cell(v: Any) -> str:
            if v is None:
                return ""
            if isinstance(v, float):
                if v != v:
                    return ""
                return repr(v)
            text = str(v)
            if any(ch in text for ch in ',"\n'):
                return '"' + text.replace('"', '""') + '"'
            return text

        lines = [",".join(self.columns)]
        for row in self.rows:
            lines.append(",".join(cell(row.get(c)) for c in self.columns))
        return "\n".join(lines) + "\n"

    def save_csv(self, path) -> None:
        """Write :meth:`to_csv` to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_csv())

    def __len__(self) -> int:
        return len(self.rows)
