"""MCAST — flat unicast fan-out vs. tree replication at scale.

Not a paper figure: an engineering experiment over the network substrate.
One sender multicasts to an M-member group spread across a two-domain
router fabric (core → per-domain aggregation → sub-aggregation → access),
once through the flat per-member unicast registry and once through the
:class:`~repro.network.routing.MulticastFabric` distribution tree.  Both
modes must deliver to the identical member set (the hypothesis
equivalence property pins this); what varies is the *physical* packet
count per group send — ``Network.packets_transmitted``, one per link hop
actually carried:

* flat: every member costs a full unicast path, so a shared backbone
  link is billed once per member — O(members × path length);
* tree: the packet crosses each tree edge once and replicates only at
  branch points — O(tree edges) ≈ members + routers.

Every number here is a deterministic packet count on the virtual-time
simulator (no wall clock), so the benchmark gate can compare exact
values across machines.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..network.clock import Scheduler
from ..network.multicast import MulticastGroup, MulticastSocket
from ..network.routing import MulticastFabric
from ..network.simnet import Network
from .harness import ExperimentResult

__all__ = ["build_fabric_world", "run_multicast_scale", "main"]

GROUP = "239.77.0.1"
PORT = 5000

#: two domains, each: aggregation router -> 2 sub-aggregates -> 4 access
#: routers apiece, so a cross-domain unicast costs 8 hops and the average
#: flat path is >6 hops at an even member spread
DOMAINS = ("east", "west")
SUBAGGS_PER_DOMAIN = 2
ACCESS_PER_SUBAGG = 4


def build_fabric_world(
    members: int, seed: int = 0
) -> tuple[Scheduler, Network, MulticastFabric, list[str]]:
    """Two-domain hierarchy with ``members`` hosts spread round-robin.

    Returns ``(scheduler, network, fabric, member_hosts)``; the sender
    host ``tx`` is attached to the first east access router and is *not*
    in the returned member list.
    """
    sched = Scheduler()
    net = Network(sched, seed=seed)
    fab = MulticastFabric(net)
    fab.add_domain("core")
    fab.add_router("core0", "core", latency=0.0005)
    access: list[str] = []
    for dom in DOMAINS:
        fab.add_domain(dom, parent="core")
        agg = f"agg_{dom}"
        fab.add_router(agg, dom, parent="core0", latency=0.0005)
        for s in range(SUBAGGS_PER_DOMAIN):
            sub = f"sub_{dom}{s}"
            fab.add_router(sub, dom, parent=agg, latency=0.0003)
            for a in range(ACCESS_PER_SUBAGG):
                acc = f"acc_{dom}{s}{a}"
                fab.add_router(acc, dom, parent=sub, latency=0.0002)
                access.append(acc)
    fab.attach_host("tx", access[0], latency=0.0001)
    hosts = []
    for m in range(members):
        host = f"m{m:04d}"
        fab.attach_host(host, access[m % len(access)], latency=0.0001)
        hosts.append(host)
    return sched, net, fab, hosts


def _measure(tree: bool, members: int, sends: int, seed: int) -> dict:
    """Packets per group send for one mode at one group size."""
    sched, net, fab, hosts = build_fabric_world(members, seed=seed)
    group = MulticastGroup(net, GROUP, PORT, fabric=fab if tree else None)
    received = [0]

    def on_rx(data: bytes, src: tuple) -> None:
        received[0] += 1

    sockets = [MulticastSocket(net, host, group, on_receive=on_rx) for host in hosts]
    sender = MulticastSocket(net, "tx", group)
    try:
        base_tx = net.packets_transmitted
        for i in range(sends):
            sender.send(b"frame-%d" % i)
            sched.run()
        tree_edges = len(fab.group_edges(GROUP)) if tree else 0
    finally:
        sender.leave()
        for sock in sockets:
            sock.leave()
    return {
        "tx_per_send": (net.packets_transmitted - base_tx) // sends,
        "delivered": received[0],
        "tree_edges": tree_edges,
    }


def run_multicast_scale(
    member_counts: Sequence[int] = (16, 64, 256),
    sends: int = 4,
    seed: int = 0,
) -> ExperimentResult:
    """Flat vs. tree physical packet cost across group sizes."""
    result = ExperimentResult(
        "MCAST",
        "flat unicast fan-out vs. tree replication, two-domain fabric",
        columns=(
            "members",
            "flat_tx_per_send",
            "tree_tx_per_send",
            "tree_edges",
            "reduction",
            "delivered_each",
        ),
    )
    for members in member_counts:
        flat = _measure(False, members, sends, seed)
        tree = _measure(True, members, sends, seed)
        if flat["delivered"] != tree["delivered"]:  # pragma: no cover
            raise AssertionError(
                f"M={members}: flat delivered {flat['delivered']} "
                f"!= tree {tree['delivered']}"
            )
        result.add_row(
            members=members,
            flat_tx_per_send=flat["tx_per_send"],
            tree_tx_per_send=tree["tx_per_send"],
            tree_edges=tree["tree_edges"],
            reduction=flat["tx_per_send"] / tree["tx_per_send"],
            delivered_each=tree["delivered"] // sends,
        )
    result.note(
        "tx_per_send is Network.packets_transmitted (physical link hops) per "
        "group send; both modes deliver to the identical member set"
    )
    result.note(
        "flat cost grows with members x path length; tree cost is one packet "
        "per tree edge (~members + routers), so the gap widens with depth"
    )
    return result


def main() -> ExperimentResult:  # pragma: no cover
    res = run_multicast_scale()
    print(res.format_table(float_fmt="{:.2f}"))
    return res


if __name__ == "__main__":  # pragma: no cover
    main()
