"""Figure reproductions (FIG6–FIG10) and the shared experiment harness."""

from .harness import ExperimentResult
from .broker_scale import run_broker_scale
from .fig6 import run_fig6
from .fig7 import run_fig7
from .fig8 import run_fig8, run_fig8_dataflow
from .fig9 import run_fig9, run_fig9_scaling
from .fig10 import run_fig10, solve_join_geometry

__all__ = [
    "ExperimentResult",
    "run_broker_scale",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig8_dataflow",
    "run_fig9",
    "run_fig9_scaling",
    "run_fig10",
    "solve_join_geometry",
]
