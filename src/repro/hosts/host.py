"""Simulated host: the 'Windows NT workstation' the agent instruments.

A :class:`SimulatedHost` owns the observable system state of one machine
— CPU load (%), page faults per sampling interval, memory — and advances
it on the shared discrete-event scheduler, driven by
:mod:`~repro.hosts.workload` generators.  The framework never reads this
state directly: it goes through the SNMP extension agent (see
:mod:`~repro.hosts.snmp_binding`), exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..network.clock import Scheduler
from .workload import Constant, Workload

__all__ = ["SimulatedHost", "HostSample"]


@dataclass(frozen=True)
class HostSample:
    """One instant of a host's observable state."""

    tick: int
    time: float
    cpu_load: float       # percent, 0..100
    page_faults: float    # faults per sampling interval
    free_memory_kib: int
    total_memory_kib: int
    processes: int


class SimulatedHost:
    """Deterministic host dynamics on the simulation clock.

    Parameters
    ----------
    name:
        Host name; should match its network node.
    scheduler:
        Shared simulation scheduler; the host ticks itself every
        ``interval`` seconds once :meth:`start` is called.
    cpu_workload / fault_workload:
        Generators for the two swept parameters.  Free memory is derived:
        heavy paging (high fault rate) correlates with low free memory.
    """

    def __init__(
        self,
        name: str,
        scheduler: Scheduler,
        cpu_workload: Optional[Workload] = None,
        fault_workload: Optional[Workload] = None,
        total_memory_kib: int = 262_144,  # 256 MiB, era-appropriate
        interval: float = 1.0,
        base_processes: int = 40,
    ) -> None:
        self.name = name
        self.scheduler = scheduler
        self.cpu_workload = cpu_workload if cpu_workload is not None else Constant(20.0)
        self.fault_workload = fault_workload if fault_workload is not None else Constant(10.0)
        self.total_memory_kib = total_memory_kib
        self.interval = interval
        self.base_processes = base_processes
        self.tick = 0
        self._running = False
        self._update()

    # ------------------------------------------------------------------
    def _update(self) -> None:
        self.cpu_load = float(np.clip(self.cpu_workload.value(self.tick), 0.0, 100.0))
        self.page_faults = float(max(0.0, self.fault_workload.value(self.tick)))
        # paging pressure model: free memory shrinks as fault rate grows
        pressure = min(self.page_faults / 120.0, 0.95)
        self.free_memory_kib = int(self.total_memory_kib * (0.6 * (1.0 - pressure) + 0.05))
        self.processes = self.base_processes + int(self.cpu_load / 10.0)

    def _tick(self) -> None:
        if not self._running:
            return
        self.tick += 1
        self._update()
        self.scheduler.call_after(self.interval, self._tick)

    def start(self) -> None:
        """Begin periodic self-updates on the scheduler."""
        if not self._running:
            self._running = True
            self.scheduler.call_after(self.interval, self._tick)

    def stop(self) -> None:
        """Freeze the host's state (pending tick becomes a no-op)."""
        self._running = False

    def advance_to_tick(self, tick: int) -> None:
        """Jump the workload position directly (sweep-style experiments)."""
        if tick < 0:
            raise ValueError("tick must be non-negative")
        self.tick = tick
        self._update()

    # ------------------------------------------------------------------
    def sample(self) -> HostSample:
        """Snapshot the current observable state."""
        return HostSample(
            tick=self.tick,
            time=self.scheduler.clock.now,
            cpu_load=self.cpu_load,
            page_faults=self.page_faults,
            free_memory_kib=self.free_memory_kib,
            total_memory_kib=self.total_memory_kib,
            processes=self.processes,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SimulatedHost({self.name!r}, tick={self.tick},"
            f" cpu={self.cpu_load:.0f}%, pf={self.page_faults:.0f})"
        )
