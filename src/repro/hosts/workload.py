"""Workload generators driving the simulated hosts.

The paper's wired experiments observe the image viewer "with dynamically
changing system conditions": CPU load and page faults swept 30→100.
Generators produce a deterministic value per tick; compose them with
:class:`Add` / :class:`Clamp` to build richer scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "Workload",
    "Constant",
    "Ramp",
    "Square",
    "RandomWalk",
    "Trace",
    "Add",
    "Clamp",
]


class Workload:
    """Base: ``value(tick)`` maps a non-negative tick to a level."""

    def value(self, tick: int) -> float:
        raise NotImplementedError

    def series(self, ticks: int) -> np.ndarray:
        """The first ``ticks`` values as an array."""
        return np.array([self.value(t) for t in range(ticks)], dtype=float)


@dataclass
class Constant(Workload):
    """A flat level."""

    level: float

    def value(self, tick: int) -> float:
        return self.level


@dataclass
class Ramp(Workload):
    """Linear sweep ``start → stop`` over ``ticks`` steps, then hold.

    The FIG6/FIG7 sweeps are ``Ramp(30, 100, n)``.
    """

    start: float
    stop: float
    ticks: int

    def __post_init__(self) -> None:
        if self.ticks < 1:
            raise ValueError("ticks must be >= 1")

    def value(self, tick: int) -> float:
        if tick >= self.ticks - 1 or self.ticks == 1:
            return self.stop
        frac = tick / (self.ticks - 1)
        return self.start + frac * (self.stop - self.start)


@dataclass
class Square(Workload):
    """Alternating low/high plateaus of ``period`` ticks each."""

    low: float
    high: float
    period: int

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ValueError("period must be >= 1")

    def value(self, tick: int) -> float:
        return self.high if (tick // self.period) % 2 else self.low


class RandomWalk(Workload):
    """Mean-reverting random walk (deterministic under its seed)."""

    def __init__(
        self,
        start: float = 50.0,
        step: float = 5.0,
        lo: float = 0.0,
        hi: float = 100.0,
        seed: int = 0,
    ) -> None:
        if lo >= hi:
            raise ValueError("require lo < hi")
        self.start = start
        self.step = step
        self.lo = lo
        self.hi = hi
        self._seed = seed
        self._cache: list[float] = [float(np.clip(start, lo, hi))]
        self._rng = np.random.default_rng(seed)

    def value(self, tick: int) -> float:
        while len(self._cache) <= tick:
            prev = self._cache[-1]
            drift = 0.05 * ((self.lo + self.hi) / 2 - prev)
            nxt = prev + drift + float(self._rng.normal(0.0, self.step))
            self._cache.append(float(np.clip(nxt, self.lo, self.hi)))
        return self._cache[tick]


@dataclass
class Trace(Workload):
    """Playback of an explicit series; holds the last value after the end."""

    values: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.values) == 0:
            raise ValueError("trace must be non-empty")

    def value(self, tick: int) -> float:
        idx = min(tick, len(self.values) - 1)
        return float(self.values[idx])


@dataclass
class Add(Workload):
    """Pointwise sum of two workloads."""

    a: Workload
    b: Workload

    def value(self, tick: int) -> float:
        return self.a.value(tick) + self.b.value(tick)


@dataclass
class Clamp(Workload):
    """Clamp another workload into ``[lo, hi]``."""

    inner: Workload
    lo: float
    hi: float

    def value(self, tick: int) -> float:
        return float(np.clip(self.inner.value(tick), self.lo, self.hi))
