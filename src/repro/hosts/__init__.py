"""Simulated host substrate: workstation dynamics, workloads, SNMP binding."""

from .host import HostSample, SimulatedHost
from .workload import Add, Clamp, Constant, Ramp, RandomWalk, Square, Trace, Workload
from .snmp_binding import attach_extension_agent, build_host_mib

__all__ = [
    "HostSample",
    "SimulatedHost",
    "Add",
    "Clamp",
    "Constant",
    "Ramp",
    "RandomWalk",
    "Square",
    "Trace",
    "Workload",
    "attach_extension_agent",
    "build_host_mib",
]
