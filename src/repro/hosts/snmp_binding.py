"""Bind a simulated host's metrics into an SNMP extension-agent MIB.

"To monitor the hosts, we have built a specialized embedded extension
agent that runs on each host and is serviced by instrumentation routines"
(paper Sec. 5.5).  This module is those instrumentation routines: it
populates a :class:`~repro.snmp.mib.MibTree` with live getters over a
:class:`~repro.hosts.host.SimulatedHost` and the host's access link, and
starts the agent on the host's network node.
"""

from __future__ import annotations

from typing import Optional

from ..network.simnet import Link, Network
from ..network.udp import DatagramSocket
from ..snmp.agent import SnmpAgent
from ..snmp.ber import Gauge32, OctetString, TimeTicks
from ..snmp.mib import MibTree
from ..snmp.oids import MIB2, TASSL
from .host import SimulatedHost

__all__ = ["build_host_mib", "attach_extension_agent"]


def build_host_mib(host: SimulatedHost, access_link: Optional[Link] = None) -> MibTree:
    """A MIB tree with live instrumentation over ``host``.

    Gauges are integers per SNMP; CPU load and page faults round to the
    nearest unit, which matches agent granularity on real systems.
    """
    tree = MibTree()
    tree.register_scalar(MIB2.sysName, OctetString(host.name.encode()), "host name")
    tree.register_scalar(
        MIB2.sysDescr,
        OctetString(b"TASSL simulated workstation (reproduction)"),
        "system description",
    )
    tree.register_callable(
        MIB2.sysUpTime,
        lambda: TimeTicks(int(host.scheduler.clock.now * 100) % 2**32),
        description="agent uptime in hundredths",
    )
    tree.register_callable(
        TASSL.hostCpuLoad,
        lambda: Gauge32(int(round(host.cpu_load))),
        description="CPU utilisation percent",
    )
    tree.register_callable(
        TASSL.hostPageFaults,
        lambda: Gauge32(int(round(host.page_faults))),
        description="page faults per interval",
    )
    tree.register_callable(
        TASSL.hostFreeMemory,
        lambda: Gauge32(host.free_memory_kib),
        description="free memory KiB",
    )
    tree.register_scalar(
        TASSL.hostTotalMemory, Gauge32(host.total_memory_kib), "total memory KiB"
    )
    tree.register_callable(
        TASSL.hostProcesses,
        lambda: Gauge32(host.processes),
        description="process count",
    )
    tree.register_callable(
        TASSL.hostUptime,
        lambda: TimeTicks(int(host.scheduler.clock.now * 100) % 2**32),
        description="host uptime",
    )
    if access_link is not None:
        tree.register_callable(
            TASSL.linkBandwidth,
            lambda: Gauge32(
                int(min(access_link.bandwidth, 2**32 - 1))
                if access_link.bandwidth != float("inf")
                else 2**32 - 1
            ),
            description="access link bandwidth B/s",
        )
        tree.register_callable(
            TASSL.linkLatencyUs,
            lambda: Gauge32(int(access_link.latency * 1e6)),
            description="access link latency us",
        )
        tree.register_callable(
            TASSL.linkJitterUs,
            lambda: Gauge32(int(access_link.jitter * 1e6)),
            description="access link jitter us",
        )
        tree.register_callable(
            TASSL.linkLossPpm,
            lambda: Gauge32(int(access_link.loss * 1e6)),
            description="access link loss ppm",
        )
    return tree


def attach_extension_agent(
    network: Network,
    host: SimulatedHost,
    access_link: Optional[Link] = None,
    read_community: str = "public",
    write_community: str = "private",
) -> SnmpAgent:
    """Build the MIB and start the agent on the host's node (port 161)."""
    tree = build_host_mib(host, access_link)
    sock = DatagramSocket(network, host.name)
    return SnmpAgent(
        sock, tree, read_community=read_community, write_community=write_community
    )
