#!/usr/bin/env python
"""Crisis management: the paper's flagship scenario, end to end.

A command post (wired), a hospital workstation (wired), and two field
responders on wireless devices behind a base station.  Demonstrates:

* profile/interest-based delivery (the hospital only wants medical
  traffic; the command post wants everything);
* BS-side SIR evaluation and modality tiering as a responder moves;
* power control conserving a responder's battery;
* a field image reaching the wired peers, and the degraded-tier
  responder still following along via text descriptions.

Run:  python examples/crisis_management.py
"""

from repro import ClientProfile, CollaborationFramework
from repro.core.events import ChatEvent
from repro.media.images import collaboration_scene
from repro.wireless.channel import NoiseModel, PathLossModel


def main() -> None:
    fw = CollaborationFramework(
        "crisis-7", objective="coordinate flood response in sector 7"
    )

    command = fw.add_wired_client(
        "command-post",
        profile=ClientProfile(
            "command-post",
            {"session": "crisis-7", "role": "command", "client_id": "command-post"},
        ),
    )
    hospital = fw.add_wired_client(
        "hospital",
        profile=ClientProfile(
            "hospital",
            {"session": "crisis-7", "role": "medic", "client_id": "hospital"},
            # the hospital's interest: medical traffic and imagery only
            interest="kind in ['image-share', 'image-packet', 'text-share'] or topic == 'medical'",
        ),
    )
    command.join()
    hospital.join()

    bs = fw.add_base_station(
        "base-station",
        pathloss=PathLossModel(alpha=4.0, k=1e6),
        noise=NoiseModel(reference_power=1.0, snr_ref_db=40.0),
    )
    responder1 = fw.add_wireless_client("responder-1", bs, distance=45.0, tx_power=2.0)
    responder2 = fw.add_wireless_client("responder-2", bs, distance=95.0, tx_power=1.0)
    fw.run_for(0.5)

    # --- service assessment on attach (paper Sec. 4.2) -------------------
    snap = bs.evaluate_qos()
    print("initial service assessment:")
    for cid, sir, tier in zip(snap.client_ids, snap.sir_db, snap.tiers):
        print(f"  {cid:12s} SIR {sir:6.1f} dB -> {tier.name}")

    # --- power control: responder-1 is over target ------------------------
    requests = bs.apply_power_control()
    fw.run_for(0.5)
    for req in requests:
        print(f"\npower control: {req.client_id} asked to drop to "
              f"P={req.new_power:.2f} ({req.reason})")
    print(f"responder-1 now transmits at P={responder1.tx_power:.2f} "
          f"(battery {responder1.battery:.1f}%)")

    # --- command post chats; routing follows interests --------------------
    command.send_chat("all units: water level rising at bridge 4")
    fw.run_for(0.5)
    print(f"\nhospital chat: {hospital.chat.transcript}"
          "  <- empty: its interest admits only medical traffic")
    print(f"responder-1 received {len(responder1.received_events)} event(s) via BS")

    # --- a field image goes up through the base station -------------------
    from repro.apps.imageviewer import ImageViewer

    field_cam = ImageViewer("responder-1", n_packets=16, target_bpp=2.2)
    scene = collaboration_scene(64, 64, seed=99)
    announce, packets = field_cam.share("bridge-4-photo", scene)
    responder1.send_event(announce)
    for p in packets:
        responder1.send_event(p)
    fw.run_for(3.0)

    view = command.viewer.viewed.get("bridge-4-photo")
    if view is not None:
        view.original = scene
        r = view.report()
        print(f"\ncommand post received the field photo: "
              f"{r.packets_used} packets, psnr={r.psnr_db:.1f} dB")

    # --- responder-2 is far out: follows along in degraded modality -------
    counts = responder2.modality_counts()
    print(f"responder-2 (far, {bs.attachments['responder-2'].sir_db:.1f} dB) got: "
          f"{counts['text']} text, {counts['sketch']} sketch, "
          f"{counts['image_packets']} image packets")

    # --- responder-2 drives closer; tier improves --------------------------
    responder2.move_to(50.0)
    fw.run_for(0.5)
    snap = bs.evaluate_qos()
    sir, tier = snap.for_client("responder-2")
    print(f"\nresponder-2 moved to 50 m: SIR {sir:.1f} dB -> {tier.name}")
    command.send_chat("responder-2, send photos when you arrive")
    fw.run_for(0.5)

    # --- end-of-run telemetry ---------------------------------------------
    from repro.core.telemetry import deployment_report, format_report

    print()
    print(format_report(deployment_report(fw)))


if __name__ == "__main__":
    main()
