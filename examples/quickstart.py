#!/usr/bin/env python
"""Quickstart: a collaboration session in ~60 lines.

Builds a two-workstation session on the simulated LAN, exchanges chat
and whiteboard events, shares an image progressively, and shows the
inference engine adapting the receiver's packet budget to host load
observed over SNMP.

Run:  python examples/quickstart.py
"""

from repro import CollaborationFramework
from repro.hosts.workload import Trace
from repro.media.images import collaboration_scene

def main() -> None:
    # 1. a session with a clearly defined objective (paper Sec. 2)
    fw = CollaborationFramework(
        "quickstart", objective="demonstrate adaptive collaboration"
    )

    # 2. two wired workstations; bob's host will start thrashing
    alice = fw.add_wired_client("alice")
    bob = fw.add_wired_client("bob", fault_workload=Trace([30, 30, 95]))
    alice.join()
    bob.join()
    fw.run_for(0.5)

    # 3. chat + whiteboard replicate to every matching profile
    alice.send_chat("hello bob — sharing the site plan now")
    alice.draw("arrow-1", (10.0, 10.0, 42.0, 58.0))
    fw.run_for(0.5)
    print("bob's chat:      ", bob.chat.transcript)
    print("bob's whiteboard:", bob.whiteboard.objects())

    # 4. share an image at full quality (host is calm: 16 packets pass)
    image = collaboration_scene(64, 64)
    decision = bob.monitor_and_adapt()   # SNMP -> inference -> budget
    print(f"\ncalm host:   page-fault policy allows {decision.packets} packets")
    alice.share_image("site-plan", image)
    fw.run_for(2.0)
    view = bob.viewer.viewed["site-plan"]
    view.original = image
    r = view.report()
    print(f"  received {r.packets_used} packets  "
          f"bpp={r.bpp:.2f}  CR={r.compression_ratio:.1f}  psnr={r.psnr_db:.1f} dB")

    # 5. the host starts paging heavily; the next share degrades gracefully
    fw.hosts["bob"].advance_to_tick(2)   # page faults -> 95
    decision = bob.monitor_and_adapt()
    print(f"\nthrashing:   policy cuts the budget to {decision.packets} packet(s)")
    alice.share_image("site-plan-v2", image)
    fw.run_for(2.0)
    view = bob.viewer.viewed["site-plan-v2"]
    view.original = image
    r = view.report()
    print(f"  received {r.packets_used} packet(s)  "
          f"bpp={r.bpp:.2f}  CR={r.compression_ratio:.1f}  psnr={r.psnr_db:.1f} dB")
    print("\nsemantic content preserved at both rates — that is the point.")


if __name__ == "__main__":
    main()
