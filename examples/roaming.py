#!/usr/bin/env python
"""Roaming: a wireless client walks between two cells.

Demonstrates the extension machinery around the paper's "path updates of
the wireless user": the coupled radio channel (SIR → packet loss with
802.11b-style rate fallback), the handoff manager re-associating the
client at the cell boundary, and the modality tier recovering after
handoff.

Run:  python examples/roaming.py
"""

import numpy as np

from repro import CollaborationFramework
from repro.core.handoff import HandoffManager, Position


def main() -> None:
    fw = CollaborationFramework("campus", objective="roaming demo")
    wired = fw.add_wired_client("ops-desk")
    west = fw.add_base_station("bs-west")
    east = fw.add_base_station("bs-east")
    walker = fw.add_wireless_client("walker", west, distance=30.0)
    wired.join()
    fw.run_for(0.2)

    west.couple_channel()
    east.couple_channel()

    hm = HandoffManager(fw.network, hysteresis_db=3.0)
    hm.add_station(west, Position(0.0, 0.0))
    hm.add_station(east, Position(400.0, 0.0))
    hm.add_client(walker, Position(30.0, 0.0), serving_bs="bs-west")

    print(" x(m)  serving   SIR(dB)  tier            radio loss")
    for x in np.linspace(30.0, 370.0, 12):
        hm.move_client("walker", Position(float(x), 0.0))
        hm.step()
        serving = hm.serving_station("walker")
        bs = west if serving == "bs-west" else east
        snap = bs.evaluate_qos()
        sir, tier = snap.for_client("walker")
        loss = fw.network.link("walker", serving).loss
        print(f"{x:5.0f}  {serving:8s}  {sir:7.1f}  {tier.name:14s}  {loss:8.4f}")
        fw.run_for(0.5)

    print("\nhandoffs executed:")
    for ev in hm.events:
        print(f"  t={ev.time:.1f}s  {ev.client_id}: {ev.from_bs} -> {ev.to_bs}"
              f"  ({ev.from_sir_db:.1f} dB -> {ev.to_sir_db:.1f} dB)")

    # traffic still flows end-to-end after the handoff
    from repro.core.events import ChatEvent

    walker.send_event(ChatEvent(author="walker", text="arrived east side"))
    fw.run_for(1.0)
    print(f"\nops-desk chat: {wired.chat.transcript}")


if __name__ == "__main__":
    main()
