#!/usr/bin/env python
"""Electronic trading: group formation and semantic filtering.

The paper's bidding example (Sec. 2): "a person interested in purchasing
modems would find [a] computer peripherals group to be of coarse
granularity" — so members refine the group with interest selectors
instead of splitting the session.  Bids are semantic messages; each
trader's profile decides which auctions it follows, at run time, with no
roster anywhere.

Run:  python examples/trading_floor.py
"""

from repro import ClientProfile, CollaborationFramework
from repro.messaging.message import SemanticMessage


def bid(client, item: str, category: str, price: float) -> None:
    """Publish a bid: a chat event whose *message headers* carry the offer.

    Interests evaluate the headers (category, price); accepting clients
    render the chat body in their chat area.
    """
    from repro.core.events import ChatEvent

    event = ChatEvent(author=client.name, text=f"{item} @ {price} ({category})")
    msg = SemanticMessage.create(
        sender=client.name,
        selector=client.session.selector_text(),
        headers={"topic": "auction", "item": item, "category": category,
                 "price": price},
        body=event.to_body(),
        kind="chat",
    )
    client.endpoint.publish(msg)


def main() -> None:
    fw = CollaborationFramework(
        "peripherals-auction",
        objective="auction surplus computer peripherals",
        result_space=("chat",),
    )

    # the modem buyer narrows the coarse 'peripherals' group semantically
    modem_buyer = fw.add_wired_client(
        "modem-buyer",
        profile=ClientProfile(
            "modem-buyer",
            {"session": "peripherals-auction", "role": "buyer",
             "client_id": "modem-buyer"},
            interest="category == 'modems' and price <= 50 or kind == 'join'",
        ),
    )
    # a budget-limited generalist
    bargain_hunter = fw.add_wired_client(
        "bargain-hunter",
        profile=ClientProfile(
            "bargain-hunter",
            {"session": "peripherals-auction", "role": "buyer",
             "client_id": "bargain-hunter"},
            interest="price <= 20 or kind == 'join'",
        ),
    )
    # the auctioneer sees everything
    auctioneer = fw.add_wired_client("auctioneer")
    for c in (modem_buyer, bargain_hunter, auctioneer):
        c.join()
    fw.run_for(0.5)

    # --- a round of offers -------------------------------------------------
    bid(auctioneer, "56k-modem", "modems", 45.0)
    bid(auctioneer, "laser-printer", "printers", 120.0)
    bid(auctioneer, "ps2-mouse", "input", 8.0)
    bid(auctioneer, "isdn-modem", "modems", 75.0)  # over the buyer's cap
    fw.run_for(0.5)

    print("modem-buyer sees:    ", [l for l in modem_buyer.chat.transcript if "@" in l])
    print("bargain-hunter sees: ", [l for l in bargain_hunter.chat.transcript if "@" in l])

    # --- interests change at run time: no re-registration -------------------
    print("\nbargain-hunter raises the budget to 100 — locally, instantly:")
    bargain_hunter.profile.set_interest("price <= 100")
    bid(auctioneer, "trackball", "input", 35.0)
    fw.run_for(0.5)
    print("bargain-hunter now sees:", bargain_hunter.chat.transcript[-1])

    # --- concurrency control: two simultaneous bids on one item -------------
    modem_buyer.draw("lot-56k-modem", (45.0,))     # bid recorded as shared state
    bargain_hunter.draw("lot-56k-modem", (46.0,))  # concurrent counter-bid
    fw.run_for(1.0)
    winner = auctioneer.whiteboard.objects().get("lot-56k-modem")
    conflicts = auctioneer.whiteboard.conflicts
    print(f"\nconcurrent bids arbitrated deterministically: winning={winner}")
    print("no information lost — losing bid retained in the conflict history"
          f" ({conflicts} conflict(s) archived on the auctioneer's replica)")


if __name__ == "__main__":
    main()
