#!/usr/bin/env python
"""Medical telediagnosis: QoS contracts and modality transformation.

A radiologist's workstation must never fall below a contracted image
quality; a ward terminal prefers text; a consultant dials in on a
speech-only channel.  The same shared scan reaches all three, each in
the modality and quality its profile and contract allow — "each of the
users may access the same visual information but at different
resolutions or using different modalities" (paper Sec. 5.4).

Run:  python examples/telediagnosis.py
"""

from repro import ClientProfile, CollaborationFramework
from repro.core.contracts import Constraint, QoSContract
from repro.hosts.workload import Trace
from repro.media.images import collaboration_scene, to_rgb
from repro.media.speech import speech_to_text
from repro.media.transformers import Modality, default_registry


def main() -> None:
    fw = CollaborationFramework(
        "telediagnosis", objective="review patient 1142's scan"
    )

    # the radiologist contracts a minimum of 8 packets regardless of load
    radiologist = fw.add_wired_client(
        "radiologist",
        contract=QoSContract("diagnostic-floor", [Constraint("packets", minimum=8)]),
        fault_workload=Trace([30, 95]),   # the workstation will start paging
        image_target_bpp=14.3,
    )
    ward = fw.add_wired_client(
        "ward-terminal",
        profile=ClientProfile(
            "ward-terminal",
            {"session": "telediagnosis", "role": "nurse", "client_id": "ward-terminal",
             "modality": "text"},
        ),
    )
    archive = fw.add_wired_client("pacs-archive", image_target_bpp=14.3)
    for c in (radiologist, ward, archive):
        c.join()
    fw.run_for(0.5)

    scan = to_rgb(collaboration_scene(64, 64, seed=1142))

    # --- calm host: full-quality color delivery ---------------------------
    d = radiologist.monitor_and_adapt()
    print(f"calm workstation: inference grants {d.packets} packets")
    archive.share_image("scan-1142", scan)
    fw.run_for(3.0)
    view = radiologist.viewer.viewed["scan-1142"]
    view.original = scan
    r = view.report()
    print(f"  radiologist: {r.packets_used} packets, bpp={r.bpp:.1f}, "
          f"psnr={r.psnr_db:.1f} dB")

    # the ward terminal followed along in text
    print(f"  ward terminal transcript: {ward.chat.transcript}")

    # --- thrashing host: policy says 1 packet, the CONTRACT floors it at 8
    fw.hosts["radiologist"].advance_to_tick(1)
    d = radiologist.monitor_and_adapt()
    print(f"\nthrashing workstation: policy wanted fewer, contract floors at "
          f"{d.packets} packets (degraded={d.degraded})")
    for reason in d.reasons:
        print(f"  reason: {reason}")
    archive.share_image("scan-1143", scan)
    fw.run_for(3.0)
    view = radiologist.viewer.viewed["scan-1143"]
    view.original = scan
    r = view.report()
    print(f"  radiologist still gets {r.packets_used} packets, "
          f"psnr={r.psnr_db:.1f} dB — contract honoured")

    # --- the dial-in consultant: image -> text -> synthetic speech --------
    registry = default_registry()
    clip = registry.apply(scan, Modality.IMAGE, Modality.SPEECH)
    print(f"\nconsultant's speech channel: {clip.duration:.1f} s of audio")
    print(f"  (recognised back: \"{speech_to_text(clip)[:72]}...\")")


if __name__ == "__main__":
    main()
