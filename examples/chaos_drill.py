#!/usr/bin/env python
"""Chaos drill: a session surviving injected faults, deterministically.

Three workstations collaborate while a seeded fault plan degrades the
deployment — the sender's access link flaps, one client is partitioned
off, another host's SNMP agent crashes, and the LAN suffers burst loss,
a latency spike, and duplication/reordering windows.  The run shows the
robustness layer absorbing all of it:

* SNMP retries back off (in virtual time) and the per-agent circuit
  breaker fails fast while an agent is down;
* adaptation falls back to a conservative packet budget when the
  management plane goes dark beyond its stale grace;
* the packet-disposition invariant sent == delivered + dropped +
  duplicated holds at the end of the run;
* re-running with the same seed prints byte-identical telemetry.

Run:  python examples/chaos_drill.py
"""

from repro.experiments.chaos import chaos_telemetry, run_chaos


def main() -> None:
    result = run_chaos(seed=0)
    print(result.format_table())
    print()

    # determinism: the whole drill replays byte-identically under a seed
    first = chaos_telemetry(seed=0)
    second = chaos_telemetry(seed=0)
    print(first)
    print()
    print(
        "replay byte-identical:", first == second
    )


if __name__ == "__main__":
    main()
