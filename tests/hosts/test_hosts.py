"""Tests for simulated hosts, workloads, and the SNMP binding."""

import numpy as np
import pytest

from repro.hosts.host import SimulatedHost
from repro.hosts.snmp_binding import attach_extension_agent, build_host_mib
from repro.hosts.workload import (
    Add,
    Clamp,
    Constant,
    Ramp,
    RandomWalk,
    Square,
    Trace,
)
from repro.network.clock import Scheduler
from repro.network.simnet import Network
from repro.network.udp import DatagramSocket
from repro.snmp.manager import SnmpManager
from repro.snmp.oids import MIB2, TASSL


class TestWorkloads:
    def test_constant(self):
        assert Constant(42.0).value(0) == 42.0
        assert Constant(42.0).value(1000) == 42.0

    def test_ramp_endpoints_and_monotone(self):
        r = Ramp(30.0, 100.0, 8)
        s = r.series(8)
        assert s[0] == 30.0
        assert s[-1] == 100.0
        assert np.all(np.diff(s) >= 0)

    def test_ramp_holds_after_end(self):
        r = Ramp(0.0, 10.0, 3)
        assert r.value(100) == 10.0

    def test_ramp_single_tick(self):
        assert Ramp(5.0, 9.0, 1).value(0) == 9.0

    def test_ramp_validation(self):
        with pytest.raises(ValueError):
            Ramp(0, 1, 0)

    def test_square_alternates(self):
        s = Square(10.0, 90.0, period=2)
        assert [s.value(t) for t in range(6)] == [10, 10, 90, 90, 10, 10]

    def test_random_walk_deterministic_and_bounded(self):
        a = RandomWalk(seed=3).series(100)
        b = RandomWalk(seed=3).series(100)
        assert np.array_equal(a, b)
        assert a.min() >= 0.0 and a.max() <= 100.0

    def test_random_walk_random_access(self):
        w = RandomWalk(seed=1)
        v50 = w.value(50)
        assert w.value(50) == v50  # cached, stable

    def test_trace_playback_and_hold(self):
        t = Trace([1.0, 2.0, 3.0])
        assert [t.value(i) for i in range(5)] == [1.0, 2.0, 3.0, 3.0, 3.0]

    def test_compose_add_clamp(self):
        w = Clamp(Add(Constant(80.0), Constant(50.0)), 0.0, 100.0)
        assert w.value(0) == 100.0


class TestSimulatedHost:
    def test_initial_state(self):
        host = SimulatedHost("h", Scheduler(), cpu_workload=Constant(30.0),
                             fault_workload=Constant(40.0))
        s = host.sample()
        assert s.cpu_load == 30.0
        assert s.page_faults == 40.0
        assert 0 < s.free_memory_kib < s.total_memory_kib

    def test_periodic_ticks_advance_workload(self):
        sched = Scheduler()
        host = SimulatedHost("h", sched, cpu_workload=Ramp(0.0, 100.0, 5),
                             interval=1.0)
        host.start()
        sched.run_until(3.5)
        assert host.tick == 3
        assert host.cpu_load == pytest.approx(75.0)

    def test_stop_freezes(self):
        sched = Scheduler()
        host = SimulatedHost("h", sched, interval=1.0)
        host.start()
        sched.run_until(1.5)
        host.stop()
        tick = host.tick
        sched.run_until(5.0)
        assert host.tick == tick

    def test_advance_to_tick(self):
        host = SimulatedHost("h", Scheduler(), fault_workload=Trace([10, 20, 30]))
        host.advance_to_tick(2)
        assert host.page_faults == 30.0
        with pytest.raises(ValueError):
            host.advance_to_tick(-1)

    def test_memory_pressure_tracks_faults(self):
        sched = Scheduler()
        calm = SimulatedHost("a", sched, fault_workload=Constant(5.0))
        thrash = SimulatedHost("b", sched, fault_workload=Constant(110.0))
        assert thrash.free_memory_kib < calm.free_memory_kib

    def test_cpu_clamped(self):
        host = SimulatedHost("h", Scheduler(), cpu_workload=Constant(150.0))
        assert host.cpu_load == 100.0


class TestSnmpBinding:
    @pytest.fixture
    def stack(self):
        sched = Scheduler()
        net = Network(sched, seed=0)
        net.add_node("mgr")
        net.add_node("host1")
        link = net.add_link("mgr", "host1", latency=0.001, bandwidth=2e6)
        host = SimulatedHost("host1", sched, cpu_workload=Constant(64.0),
                             fault_workload=Constant(33.0))
        agent = attach_extension_agent(net, host, access_link=link)
        mgr = SnmpManager(DatagramSocket(net, "mgr"), sched)
        return sched, host, agent, mgr, link

    def test_cpu_and_faults_visible(self, stack):
        _, _, _, mgr, _ = stack
        assert mgr.get_scalar("host1", TASSL.hostCpuLoad).value == 64
        assert mgr.get_scalar("host1", TASSL.hostPageFaults).value == 33

    def test_sysname_and_descr(self, stack):
        _, _, _, mgr, _ = stack
        assert mgr.get_scalar("host1", MIB2.sysName).text() == "host1"
        assert b"TASSL" in mgr.get_scalar("host1", MIB2.sysDescr).value

    def test_live_instrumentation(self, stack):
        _, host, _, mgr, _ = stack
        host.cpu_workload = Constant(91.0)
        host.advance_to_tick(1)
        assert mgr.get_scalar("host1", TASSL.hostCpuLoad).value == 91

    def test_link_metrics_exported(self, stack):
        _, _, _, mgr, link = stack
        assert mgr.get_scalar("host1", TASSL.linkBandwidth).value == int(link.bandwidth)
        assert mgr.get_scalar("host1", TASSL.linkLatencyUs).value == 1000

    def test_uptime_ticks(self, stack):
        sched, _, _, mgr, _ = stack
        t1 = mgr.get_scalar("host1", MIB2.sysUpTime).value
        sched.run_until(sched.clock.now + 5.0)
        t2 = mgr.get_scalar("host1", MIB2.sysUpTime).value
        assert t2 > t1

    def test_walk_whole_extension(self, stack):
        _, _, _, mgr, _ = stack
        out = mgr.walk("host1", TASSL.root)
        names = [str(o) for o, _ in out]
        assert str(TASSL.hostCpuLoad) in names
        assert str(TASSL.linkLossPpm) in names
        assert len(out) >= 10

    def test_mib_without_link(self):
        host = SimulatedHost("h", Scheduler())
        tree = build_host_mib(host, access_link=None)
        assert TASSL.hostCpuLoad in tree
        assert TASSL.linkBandwidth not in tree
