"""Tests for path loss and noise models."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.wireless.channel import ChannelError, NoiseModel, PathLossModel


class TestPathLoss:
    def test_unit_distance_gain_is_k(self):
        m = PathLossModel(alpha=4.0, k=2.5)
        assert m.gain(1.0) == pytest.approx(2.5)

    def test_power_law(self):
        m = PathLossModel(alpha=4.0, k=1.0)
        assert m.gain(2.0) == pytest.approx(1.0 / 16.0)
        assert m.gain(10.0) == pytest.approx(1e-4)

    def test_vectorized(self):
        m = PathLossModel(alpha=2.0, k=1.0)
        g = m.gain(np.array([1.0, 2.0, 4.0]))
        assert np.allclose(g, [1.0, 0.25, 0.0625])

    def test_min_distance_clamp(self):
        m = PathLossModel(alpha=4.0, k=1.0, min_distance=1.0)
        assert m.gain(0.001) == m.gain(1.0)

    def test_invalid_params(self):
        with pytest.raises(ChannelError):
            PathLossModel(alpha=0)
        with pytest.raises(ChannelError):
            PathLossModel(k=-1)
        with pytest.raises(ChannelError):
            PathLossModel(min_distance=0)
        with pytest.raises(ChannelError):
            PathLossModel(shadowing_sigma_db=-1)

    def test_shadowing_requires_rng(self):
        m = PathLossModel(shadowing_sigma_db=4.0)
        with pytest.raises(ChannelError):
            m.gain(10.0)

    def test_shadowing_varies_gain(self):
        m = PathLossModel(shadowing_sigma_db=8.0)
        rng = np.random.default_rng(0)
        g = m.gain(np.full(100, 50.0), rng=rng)
        assert g.std() > 0

    @given(st.floats(min_value=1.0, max_value=1e4))
    def test_distance_gain_inverse(self, d):
        m = PathLossModel(alpha=4.0, k=1e6)
        assert m.distance_for_gain(m.gain(d)) == pytest.approx(d, rel=1e-9)

    def test_monotone_decreasing(self):
        m = PathLossModel(alpha=3.0, k=1.0)
        d = np.linspace(1, 200, 50)
        g = m.gain(d)
        assert np.all(np.diff(g) < 0)


class TestNoise:
    def test_sigma2_formula(self):
        n = NoiseModel(reference_power=1.0, snr_ref_db=40.0)
        assert n.sigma2 == pytest.approx(1e-4)

    def test_from_sigma2(self):
        n = NoiseModel.from_sigma2(0.01)
        assert n.sigma2 == pytest.approx(0.01)

    def test_invalid(self):
        with pytest.raises(ChannelError):
            NoiseModel(reference_power=0)
        with pytest.raises(ChannelError):
            NoiseModel.from_sigma2(-1)
