"""Tests for power-control algorithms."""

import numpy as np
import pytest

from repro.wireless.channel import NoiseModel, PathLossModel
from repro.wireless.powercontrol import (
    feasible_targets,
    foschini_miljanic,
    frame_success_rate,
    sir_balancing_power,
    uniform_power_scaling,
    utility,
)
from repro.wireless.sir import sir, to_db


@pytest.fixture
def cell():
    pathloss = PathLossModel(alpha=4.0, k=1e6)
    gains = np.array([pathloss.gain(d) for d in (60.0, 90.0, 120.0)])
    sigma2 = NoiseModel(reference_power=1.0, snr_ref_db=40.0).sigma2
    return gains, sigma2


class TestFrameSuccess:
    def test_monotone_in_sir(self):
        gamma = np.linspace(0.1, 20.0, 50)
        f = frame_success_rate(gamma)
        assert np.all(np.diff(f) > 0)

    def test_bounds(self):
        f = frame_success_rate(np.array([0.0, 100.0]))
        assert f[0] == pytest.approx(0.0)
        assert f[1] == pytest.approx(1.0, abs=1e-6)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            frame_success_rate(np.array([-1.0]))


class TestUtility:
    def test_positive(self, cell):
        gains, sigma2 = cell
        u = utility(np.ones(3), gains, sigma2)
        assert np.all(u >= 0)

    def test_zero_power_rejected(self, cell):
        gains, sigma2 = cell
        with pytest.raises(ValueError):
            utility(np.array([0.0, 1.0, 1.0]), gains, sigma2)


class TestUniformScaling:
    def test_goodman_mandayam_claim(self, cell):
        """Scaling all powers down raises everyone's bits/joule."""
        gains, sigma2 = cell
        out = uniform_power_scaling(np.full(3, 2.0), gains, sigma2, factor=0.5)
        assert np.all(out["utility_after"] >= out["utility_before"])

    def test_sir_dips_slightly_with_noise(self, cell):
        gains, sigma2 = cell
        out = uniform_power_scaling(np.full(3, 2.0), gains, sigma2, factor=0.5)
        assert np.all(out["sir_db_after"] <= out["sir_db_before"])
        # but only slightly: interference-limited regime
        assert np.all(out["sir_db_before"] - out["sir_db_after"] < 1.0)

    def test_no_noise_sir_invariant(self, cell):
        gains, _ = cell
        out = uniform_power_scaling(np.full(3, 2.0), gains, 0.0, factor=0.25)
        assert np.allclose(out["sir_db_after"], out["sir_db_before"])

    def test_bad_factor(self, cell):
        gains, sigma2 = cell
        with pytest.raises(ValueError):
            uniform_power_scaling(np.ones(3), gains, sigma2, factor=0.0)


class TestFoschiniMiljanic:
    def test_converges_to_feasible_targets(self, cell):
        gains, sigma2 = cell
        # feasibility needs sum(g/(1+g)) < 1: -4/-5/-6 dB comfortably fits
        targets = np.array([-4.0, -5.0, -6.0])
        assert feasible_targets(gains, targets, sigma2)
        res = foschini_miljanic(gains, targets, sigma2)
        assert res.converged
        assert np.allclose(res.sir_db, targets, atol=0.05)

    def test_minimal_power_property(self, cell):
        """Converged powers should be (near) the minimal solution."""
        gains, sigma2 = cell
        targets = np.array([-5.0, -5.0, -5.0])
        res = foschini_miljanic(gains, targets, sigma2)
        # perturb downward: any uniformly smaller power vector misses targets
        worse = sir(res.powers * 0.9, gains, sigma2)
        assert np.all(to_db(worse) < targets + 0.05)

    def test_infeasible_saturates(self, cell):
        gains, sigma2 = cell
        targets = np.array([10.0, 10.0, 10.0])  # 3 clients can't all get 10 dB
        assert not feasible_targets(gains, targets, sigma2)
        res = foschini_miljanic(gains, targets, sigma2, max_power=5.0, max_iter=100)
        assert not res.converged
        assert np.all(res.powers <= 5.0 + 1e-12)

    def test_single_client_always_feasible(self):
        gains = np.array([1e-3])
        assert feasible_targets(gains, np.array([20.0]), 0.0)
        res = foschini_miljanic(gains, np.array([10.0]), 1e-5, max_power=100.0)
        assert res.converged

    def test_history_recorded(self, cell):
        gains, sigma2 = cell
        res = foschini_miljanic(gains, np.array([-3.0, -3.0, -3.0]), sigma2, keep_history=True)
        assert len(res.history) == res.iterations


class TestSirBalancing:
    def test_equal_received_power(self, cell):
        gains, _ = cell
        p = sir_balancing_power(gains, 1e-4, total_power=3.0)
        rx = p * gains
        assert np.allclose(rx, rx[0])
        assert p.sum() == pytest.approx(3.0)

    def test_far_client_gets_more_power(self, cell):
        gains, _ = cell
        p = sir_balancing_power(gains, 1e-4, total_power=3.0)
        assert p[2] > p[1] > p[0]  # 120 m > 90 m > 60 m

    def test_invalid(self, cell):
        gains, _ = cell
        with pytest.raises(ValueError):
            sir_balancing_power(gains, 1e-4, total_power=0.0)
        with pytest.raises(ValueError):
            sir_balancing_power(np.array([0.0, 1.0]), 1e-4, total_power=1.0)
