"""Tests for the SIR computation (paper Eq. 1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.wireless.sir import from_db, sir, sir_db, sir_matrix, sir_sweep, to_db

positive_floats = st.floats(min_value=1e-6, max_value=1e6)


class TestDbConversion:
    def test_known_values(self):
        assert to_db(10.0) == pytest.approx(10.0)
        assert to_db(1.0) == pytest.approx(0.0)
        assert from_db(3.0) == pytest.approx(1.9952623)

    @given(positive_floats)
    def test_inverse(self, x):
        assert from_db(to_db(x)) == pytest.approx(x, rel=1e-9)


class TestSir:
    def test_two_equal_clients_no_noise(self):
        g = sir(np.array([1.0, 1.0]), np.array([1.0, 1.0]), sigma2=0.0)
        assert np.allclose(g, [1.0, 1.0])  # each sees only the other

    def test_eq1_hand_computed(self):
        # P = [2, 1], g = [0.5, 0.25], sigma2 = 0.05
        # rx = [1.0, 0.25]; SIR_0 = 1.0/(0.25+0.05); SIR_1 = 0.25/(1.0+0.05)
        g = sir(np.array([2.0, 1.0]), np.array([0.5, 0.25]), 0.05)
        assert g[0] == pytest.approx(1.0 / 0.30)
        assert g[1] == pytest.approx(0.25 / 1.05)

    def test_single_client_noise_only(self):
        g = sir(np.array([2.0]), np.array([0.1]), sigma2=0.05)
        assert g[0] == pytest.approx(4.0)

    def test_zero_denominator_rejected(self):
        with pytest.raises(ValueError):
            sir(np.array([1.0]), np.array([1.0]), sigma2=0.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            sir(np.array([1.0, 2.0]), np.array([1.0]), 0.1)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            sir(np.array([-1.0, 1.0]), np.array([1.0, 1.0]), 0.1)
        with pytest.raises(ValueError):
            sir(np.array([1.0, 1.0]), np.array([1.0, 1.0]), -0.1)

    @settings(max_examples=50)
    @given(
        st.lists(positive_floats, min_size=2, max_size=8),
        st.lists(positive_floats, min_size=2, max_size=8),
        positive_floats,
    )
    def test_invariants(self, powers, gains, sigma2):
        n = min(len(powers), len(gains))
        p = np.array(powers[:n])
        g = np.array(gains[:n])
        s = sir(p, g, sigma2)
        assert np.all(s > 0)
        # raising one client's power can only hurt the others
        p2 = p.copy()
        p2[0] *= 2.0
        s2 = sir(p2, g, sigma2)
        assert s2[0] >= s[0] * 0.999
        assert np.all(s2[1:] <= s[1:] * 1.001)

    def test_interference_dominates_far_client(self):
        """The paper's asymmetry: near client crushes the far one."""
        gains = np.array([1e-2, 1e-4])  # near, far
        s = sir_db(np.array([1.0, 1.0]), gains, 1e-6)
        assert s[0] > 15.0
        assert s[1] < -15.0


class TestSweep:
    def test_matches_pointwise(self):
        rng = np.random.default_rng(0)
        P = rng.uniform(0.1, 2.0, (20, 4))
        G = rng.uniform(1e-4, 1e-2, (20, 4))
        swept = sir_sweep(P, G, 1e-5)
        for i in range(20):
            assert np.allclose(swept[i], sir(P[i], G[i], 1e-5))

    def test_broadcast_powers(self):
        G = np.array([[1e-2, 1e-3], [1e-3, 1e-2]])
        swept = sir_sweep(np.array([1.0, 1.0]), G, 1e-6)
        assert swept.shape == (2, 2)
        assert np.allclose(swept[0], sir(np.array([1.0, 1.0]), G[0], 1e-6))

    def test_per_row_sigma(self):
        P = np.ones((3, 2))
        G = np.full((3, 2), 1e-3)
        s = sir_sweep(P, G, np.array([1e-6, 1e-4, 1e-2]))
        assert s[0, 0] > s[1, 0] > s[2, 0]


class TestMultiCell:
    def test_shape_and_reference(self):
        powers = np.array([1.0, 1.0, 1.0])
        G = np.array([[1e-2, 1e-3, 1e-4], [1e-4, 1e-3, 1e-2]])
        s = sir_matrix(powers, G, np.array([1e-6, 1e-6]))
        assert s.shape == (2, 3)
        # client 0 is strong at BS 0, weak at BS 1
        assert s[0, 0] > s[1, 0]

    def test_bad_shapes(self):
        with pytest.raises(ValueError):
            sir_matrix(np.ones(3), np.ones((2, 4)), np.ones(2))
