"""Tests for mobility traces."""

import numpy as np
import pytest

from repro.wireless.mobility import (
    PiecewiseLinearTrace,
    RandomWaypointTrace,
    StaticTrace,
    approach_and_retreat,
)


class TestStatic:
    def test_constant(self):
        t = StaticTrace(80.0, steps=5)
        assert t.distances().tolist() == [80.0] * 5
        assert len(t) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            StaticTrace(-1.0, 5)
        with pytest.raises(ValueError):
            StaticTrace(1.0, 0)


class TestPiecewise:
    def test_interpolation(self):
        t = PiecewiseLinearTrace([(0, 100.0), (2, 50.0), (4, 100.0)])
        assert t.distances().tolist() == [100.0, 75.0, 50.0, 75.0, 100.0]

    def test_iteration(self):
        t = PiecewiseLinearTrace([(0, 10.0), (1, 20.0)])
        assert list(t) == [10.0, 20.0]

    def test_waypoint_validation(self):
        with pytest.raises(ValueError):
            PiecewiseLinearTrace([(0, 10.0)])
        with pytest.raises(ValueError):
            PiecewiseLinearTrace([(2, 10.0), (1, 20.0)])
        with pytest.raises(ValueError):
            PiecewiseLinearTrace([(0, 10.0), (0, 20.0)])
        with pytest.raises(ValueError):
            PiecewiseLinearTrace([(0, 10.0), (1, -5.0)])


class TestApproachRetreat:
    def test_paper_defaults(self):
        """100 m in to 50 m over points 0-3, back out over 3-5."""
        d = approach_and_retreat().distances()
        assert len(d) == 6
        assert d[0] == 100.0
        assert d[3] == 50.0
        assert d[5] == 100.0
        assert np.all(np.diff(d[:4]) < 0)  # approaching
        assert np.all(np.diff(d[3:]) > 0)  # retreating


class TestRandomWaypoint:
    def test_deterministic_under_seed(self):
        a = RandomWaypointTrace(50, seed=3).distances()
        b = RandomWaypointTrace(50, seed=3).distances()
        assert np.array_equal(a, b)

    def test_stays_in_annulus(self):
        d = RandomWaypointTrace(200, d_min=10.0, d_max=150.0, seed=1).distances()
        assert d.min() >= 10.0 - 1e-9
        assert d.max() <= 150.0 + 1e-9

    def test_speed_bounds_step(self):
        d = RandomWaypointTrace(200, speed=7.0, seed=2).distances()
        assert np.abs(np.diff(d)).max() <= 7.0 + 1e-9

    def test_cached_trace_stable(self):
        t = RandomWaypointTrace(20, seed=4)
        assert np.array_equal(t.distances(), t.distances())

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomWaypointTrace(10, d_min=100.0, d_max=50.0)
        with pytest.raises(ValueError):
            RandomWaypointTrace(0)
