"""Tests for the SIR → BER → packet-loss model."""

import numpy as np
import pytest

from repro.wireless.linkquality import (
    bit_error_rate,
    effective_throughput,
    loss_for_sir_db,
    packet_loss_probability,
)
from repro.wireless.sir import from_db


class TestBer:
    def test_zero_sir_half(self):
        assert bit_error_rate(0.0) == pytest.approx(0.5)

    def test_monotone_decreasing(self):
        g = np.linspace(0, 40, 100)
        ber = bit_error_rate(g)
        assert np.all(np.diff(ber) < 0)

    def test_high_sir_negligible(self):
        assert bit_error_rate(from_db(20.0)) < 1e-20

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bit_error_rate(-1.0)


class TestPacketLoss:
    def test_longer_packets_lose_more(self):
        gamma = from_db(12.0)
        assert packet_loss_probability(gamma, 16000) > packet_loss_probability(gamma, 800)

    def test_bounds(self):
        assert 0.0 <= packet_loss_probability(from_db(5.0), 8000) <= 1.0
        assert packet_loss_probability(from_db(40.0), 8000) < 1e-6

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            packet_loss_probability(1.0, 0)


class TestCoupledLoss:
    def test_image_threshold_is_workable(self):
        """At the paper's 4 dB image threshold, coded loss is percent-scale."""
        loss = loss_for_sir_db(4.0)
        assert 0.001 < loss < 0.10

    def test_below_sketch_threshold_is_dead(self):
        assert loss_for_sir_db(-6.0) == pytest.approx(0.98)  # hits the cap

    def test_strong_channel_clean(self):
        assert loss_for_sir_db(20.0) < 1e-6

    def test_cap_respected(self):
        assert loss_for_sir_db(-30.0, cap=0.9) == pytest.approx(0.9)

    def test_monotone_in_sir(self):
        sirs = np.linspace(-10, 20, 50)
        losses = loss_for_sir_db(sirs)
        assert np.all(np.diff(losses) <= 1e-12)

    def test_coding_gain_helps(self):
        assert loss_for_sir_db(4.0, coding_gain_db=13.0) < loss_for_sir_db(
            4.0, coding_gain_db=7.0
        )


class TestThroughput:
    def test_scales_with_quality(self):
        low = effective_throughput(from_db(6.0))
        high = effective_throughput(from_db(20.0))
        assert high > low

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            effective_throughput(1.0, rate_bps=0)


class TestBasestationCoupling:
    def test_coupling_writes_link_loss(self):
        from repro.core.framework import CollaborationFramework

        fw = CollaborationFramework("couple")
        bs = fw.add_base_station("bs")
        fw.add_wireless_client("near", bs, distance=40.0)
        fw.add_wireless_client("far", bs, distance=110.0)
        bs.couple_channel()
        snap = bs.evaluate_qos()
        near_loss = fw.network.link("bs", "near").loss
        far_loss = fw.network.link("bs", "far").loss
        assert near_loss < far_loss
        assert far_loss == pytest.approx(0.98)

    def test_coupling_updates_on_reevaluation(self):
        from repro.core.framework import CollaborationFramework

        fw = CollaborationFramework("couple2")
        bs = fw.add_base_station("bs")
        w = fw.add_wireless_client("w", bs, distance=100.0)
        fw.add_wireless_client("interferer", bs, distance=60.0)
        bs.couple_channel()
        bs.evaluate_qos()
        loss_far = fw.network.link("bs", "w").loss
        bs.update_attachment("w", distance=30.0)
        bs.evaluate_qos()
        loss_near = fw.network.link("bs", "w").loss
        assert loss_near < loss_far

    def test_coupled_channel_physically_gates_images(self):
        """Below the image tier the radio genuinely cannot complete a
        16-packet transfer — the physical argument for tier gating."""
        from repro.core.events import ChatEvent
        from repro.core.framework import CollaborationFramework
        from repro.core.policies import SirTierPolicy, PolicyDatabase

        fw = CollaborationFramework("couple3", seed=5)
        wired = fw.add_wired_client("wired")
        # disable tier gating entirely: BS forwards everything regardless
        db = PolicyDatabase()
        db.set_sir_policy(SirTierPolicy(image_db=-100.0, sketch_db=-100.0, text_db=-100.0))
        bs = fw.add_base_station("bs", policies=db)
        w = fw.add_wireless_client("w", bs, distance=95.0)
        jam = fw.add_wireless_client("jam", bs, distance=40.0)
        wired.join()
        bs.couple_channel()
        bs.evaluate_qos()
        from repro.media.images import collaboration_scene

        wired.share_image("img", collaboration_scene(64, 64))
        fw.run_for(5.0)
        # with gating off but physics on, the weak client misses fragments
        counts = w.modality_counts()
        assert counts["image_packets"] < 16


class TestThroughputUnits:
    """Regression (UNI003): goodput is bits/second, not a unitless ratio."""

    def test_default_rate_is_11_megabit(self):
        # at very high SIR essentially nothing is lost, so goodput
        # approaches the 802.11b channel rate of 11 Mb/s
        assert effective_throughput(from_db(40.0)) == pytest.approx(
            11_000_000.0, rel=1e-3
        )

    def test_explicit_rate_scales_linearly(self):
        gamma = from_db(12.0)
        one = effective_throughput(gamma, rate_bps=1_000_000.0)
        two = effective_throughput(gamma, rate_bps=2_000_000.0)
        assert two == pytest.approx(2.0 * one)
