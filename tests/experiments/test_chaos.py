"""Regression suite for the seeded chaos drill.

Pins the two properties the fault-injection subsystem promises: the
packet-disposition conservation invariant, and byte-identical replay of
a full collaboration session under the same seed.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.chaos import (
    DURATION,
    chaos_telemetry,
    default_chaos_plan,
    run_chaos,
)


class TestChaosDrill:
    @pytest.fixture(scope="class")
    def result(self):
        return run_chaos(seed=0)

    def test_plan_covers_every_fault_family(self):
        kinds = {type(e).__name__ for e in default_chaos_plan().events}
        assert kinds == {
            "LinkFlap",
            "BurstLoss",
            "Partition",
            "AgentCrash",
            "LatencySpike",
            "Duplication",
            "Reordering",
            "Corruption",
        }
        assert default_chaos_plan().horizon <= DURATION

    def test_conservation_noted(self, result):
        assert any("conserved=True" in note for note in result.notes)

    def test_all_peers_reported(self, result):
        assert result.column("peer") == ["alice", "bob", "carol"]

    def test_session_survives_the_faults(self, result):
        # receivers still accept traffic despite the fault windows
        assert all(r > 0 for r in result.column("received"))
        # adaptation loops kept deciding through the darkness
        assert all(d > 0 for d in result.column("decisions"))

    def test_faults_actually_bite(self, result):
        # the crashed agent forces SNMP failures and fast-fails on bob
        by_peer = dict(zip(result.column("peer"), result.column("snmp_failures")))
        assert by_peer["bob"] > 0


class TestChaosDeterminism:
    def test_same_seed_byte_identical_telemetry(self):
        assert chaos_telemetry(seed=0) == chaos_telemetry(seed=0)

    def test_different_seed_different_telemetry(self):
        assert chaos_telemetry(seed=0) != chaos_telemetry(seed=1)

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 2**16 - 1))
    def test_replay_property_short_horizon(self, seed):
        """Any seed replays byte-identically (shorter run for speed)."""
        assert chaos_telemetry(seed=seed, duration=8.0) == chaos_telemetry(
            seed=seed, duration=8.0
        )

    def test_telemetry_reports_all_sections(self):
        blob = chaos_telemetry(seed=0)
        for marker in ("network: sent=", "chaos: ", "breakers: "):
            assert marker in blob
