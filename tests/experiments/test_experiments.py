"""Shape tests for the figure reproductions (fast, reduced sweeps).

The benchmarks run the full-size experiments; here we assert the paper's
qualitative shapes on smaller parameterizations so the suite stays quick.
"""

import numpy as np
import pytest

from repro.core.policies import ModalityTier
from repro.experiments import (
    ExperimentResult,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig9_scaling,
    run_fig10,
    solve_join_geometry,
)
from repro.wireless.channel import NoiseModel, PathLossModel


class TestHarness:
    def test_add_row_validates_columns(self):
        r = ExperimentResult("X", "t", columns=("a", "b"))
        r.add_row(a=1, b=2)
        with pytest.raises(KeyError):
            r.add_row(a=1, z=9)

    def test_column_extraction(self):
        r = ExperimentResult("X", "t", columns=("a", "b"))
        r.add_row(a=1, b=2)
        r.add_row(a=3)
        assert r.column("a") == [1, 3]
        assert r.column("b") == [2, None]
        with pytest.raises(KeyError):
            r.column("zzz")

    def test_format_table_renders(self):
        r = ExperimentResult("X", "title", columns=("a",))
        r.add_row(a=1.234)
        r.note("hello")
        text = r.format_table()
        assert "X: title" in text and "1.23" in text and "hello" in text

    def test_format_handles_special_floats(self):
        r = ExperimentResult("X", "t", columns=("a",))
        r.add_row(a=float("inf"))
        r.add_row(a=float("nan"))
        r.add_row(a=None)
        assert r.format_table()  # no crash


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig6(fault_levels=[30, 60, 100], image_size=32)

    def test_packets_non_increasing_powers_of_two(self, result):
        packets = result.column("packets")
        assert packets == sorted(packets, reverse=True)
        assert set(packets) <= {0, 1, 2, 4, 8, 16}
        assert packets[0] == 16 and packets[-1] == 1

    def test_cr_rises_as_packets_fall(self, result):
        crs = result.column("compression_ratio")
        assert crs == sorted(crs)

    def test_bpp_falls(self, result):
        bpps = result.column("bpp")
        assert bpps == sorted(bpps, reverse=True)
        assert bpps[0] == pytest.approx(2.2, rel=0.1)


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig7(cpu_levels=[30, 70, 100], image_size=32)

    def test_packets_reach_zero(self, result):
        packets = result.column("packets")
        assert packets[0] == 16
        assert packets[-1] == 0

    def test_color_bpp_range(self, result):
        bpps = result.column("bpp")
        assert bpps[0] == pytest.approx(14.3, rel=0.1)
        assert bpps[-1] == 0.0

    def test_cr_near_paper_at_full_quality(self, result):
        crs = result.column("compression_ratio")
        assert crs[0] == pytest.approx(1.68, rel=0.1)  # 24 / 14.3
        assert crs[-1] is None  # zero packets: undefined


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig8()

    def test_a_sir_peaks_at_closest_point(self, result):
        sirs = result.column("sir_a_db")
        assert int(np.argmax(sirs)) == 3  # the 50 m point
        assert sirs[0] == pytest.approx(sirs[5], abs=0.2)  # symmetric trace

    def test_b_sir_mirrors_a(self, result):
        sa = np.array(result.column("sir_a_db"))
        sb = np.array(result.column("sir_b_db"))
        assert np.all(np.diff(sa[:4]) > 0)
        assert np.all(np.diff(sb[:4]) < 0)

    def test_tiers_cross_thresholds(self, result):
        tiers_a = result.column("tier_a")
        assert tiers_a[0] == "TEXT_ONLY"
        assert tiers_a[3] == "FULL_IMAGE"


class TestFig9:
    def test_power_sweep_monotone(self):
        result = run_fig9(power_steps=[0.5, 1.0, 2.0, 4.0])
        sa = result.column("sir_a_db")
        sb = result.column("sir_b_db")
        assert sa == sorted(sa)
        assert sb == sorted(sb, reverse=True)

    def test_goodman_mandayam_utility_improves(self):
        result = run_fig9_scaling(factor=0.5)
        for row in result.rows:
            assert row["utility_after"] > row["utility_before"]
            assert row["power_after"] == row["power_before"] / 2

    def test_distance_beats_power(self):
        """Halving distance is worth 16x power (alpha=4) vs 2x for power."""
        pl = PathLossModel(alpha=4.0, k=1e6)
        gain_ratio_distance = pl.gain(40.0) / pl.gain(80.0)
        assert gain_ratio_distance == pytest.approx(16.0)
        assert gain_ratio_distance > 2.0  # doubling power gives only 2x


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig10()

    def test_each_join_degrades_sir(self, result):
        sirs = result.column("sir_a_linear")
        assert sirs == sorted(sirs, reverse=True)

    def test_paper_drop_percentages(self, result):
        drops = result.column("drop_vs_prev_pct")
        assert drops[0] is None
        assert drops[1] == pytest.approx(90.0, abs=2.0)
        assert drops[2] == pytest.approx(23.0, abs=2.0)

    def test_geometry_solver_inverts(self):
        pl = PathLossModel(alpha=4.0, k=1e6)
        noise = NoiseModel(reference_power=1.0, snr_ref_db=40.0)
        d2, d3 = solve_join_geometry(pl, noise, power=1.0, drop2=0.5, drop3=0.5)
        # verify by direct computation
        s2 = noise.sigma2
        sir_alone = pl.gain(60.0) / s2
        sir_with_2 = pl.gain(60.0) / (pl.gain(d2) + s2)
        assert 1 - sir_with_2 / sir_alone == pytest.approx(0.5, abs=1e-6)


class TestFig8Dataflow:
    def test_modality_follows_tier(self):
        from repro.experiments.fig8 import run_fig8_dataflow

        result = run_fig8_dataflow()
        for row in result.rows:
            if row["tier_a"] == "FULL_IMAGE":
                assert row["session_got_packets"]
            elif row["tier_a"] != "NOTHING":
                assert row["session_got_text"]
                assert not row["session_got_packets"]


class TestCsvExport:
    def test_to_csv_roundtrippable(self, tmp_path):
        r = ExperimentResult("X", "t", columns=("a", "b", "name"))
        r.add_row(a=1, b=2.5, name="plain")
        r.add_row(a=2, name='quoted, "text"')
        csv_text = r.to_csv()
        lines = csv_text.strip().split("\n")
        assert lines[0] == "a,b,name"
        assert lines[1] == "1,2.5,plain"
        assert lines[2] == '2,,"quoted, ""text"""'
        path = tmp_path / "out.csv"
        r.save_csv(path)
        assert path.read_text() == csv_text

    def test_fig10_csv_has_anchor_values(self):
        csv_text = run_fig10().to_csv()
        assert "n_clients" in csv_text.splitlines()[0]
        assert len(csv_text.splitlines()) == 4


class TestBrokerScale:
    def test_backends_agree_and_sharding_cuts_work(self):
        from repro.experiments import run_broker_scale

        res = run_broker_scale(subscribers=600, messages=24, shard_counts=(1, 8))
        assert res.columns[0] == "backend"
        delivered = res.column("delivered")
        assert len(set(delivered)) == 1  # every backend, same outcome
        by_backend = {
            (row["backend"], row["shards"]): row for row in res.rows
        }
        # linear scans everyone for every message
        assert by_backend[("linear", 1)]["checked"] == 600 * 24
        # 8-way sharding skips shards and checks strictly less than 1-way
        assert (
            by_backend[("sharded", 8)]["checked"]
            < by_backend[("sharded", 1)]["checked"]
        )
        assert by_backend[("sharded", 8)]["shard_skips"] > 0

    def test_registered_in_cli(self):
        from repro.experiments.__main__ import _RUNNERS

        assert "broker" in _RUNNERS
