"""Integration tests: base station + wireless clients (the paper's Sec. 4.2/6.3)."""

import numpy as np
import pytest

from repro.core.events import ChatEvent, ImageShareAnnounce, TextShareEvent
from repro.core.framework import CollaborationFramework
from repro.core.policies import ModalityTier
from repro.media.images import collaboration_scene
from repro.wireless.channel import NoiseModel, PathLossModel


@pytest.fixture
def cell():
    fw = CollaborationFramework("wtest", objective="wireless integration")
    wired = fw.add_wired_client("wired")
    bs = fw.add_base_station(
        "bs",
        pathloss=PathLossModel(alpha=4.0, k=1e6),
        noise=NoiseModel(reference_power=1.0, snr_ref_db=40.0),
    )
    wired.join()
    fw.run_for(0.2)
    return fw, wired, bs


class TestAttachment:
    def test_attach_detach(self, cell):
        fw, _, bs = cell
        w = fw.add_wireless_client("w1", bs, distance=60.0)
        assert "w1" in bs.attachments
        bs.detach("w1")
        assert "w1" not in bs.attachments

    def test_invalid_attach_params(self, cell):
        fw, _, bs = cell
        with pytest.raises(ValueError):
            bs.attach("bad", ("bad", 1), distance=-5.0, tx_power=1.0)

    def test_channel_report_updates_attachment(self, cell):
        fw, _, bs = cell
        w = fw.add_wireless_client("w1", bs, distance=60.0, tx_power=1.0)
        w.move_to(45.0)
        fw.run_for(0.5)
        assert bs.attachments["w1"].distance == pytest.approx(45.0)
        w.set_power(0.5)
        fw.run_for(0.5)
        assert bs.attachments["w1"].tx_power == pytest.approx(0.5)


class TestSirEvaluation:
    def test_single_client_snr(self, cell):
        fw, _, bs = cell
        fw.add_wireless_client("w1", bs, distance=50.0, tx_power=1.0)
        snap = bs.evaluate_qos()
        # SNR = P*g/sigma2 = 1e6*50^-4 / 1e-4 = 1600 -> 32 dB
        assert snap.sir_db[0] == pytest.approx(32.04, abs=0.1)
        assert snap.tiers[0] is ModalityTier.FULL_IMAGE

    def test_two_clients_interfere(self, cell):
        fw, _, bs = cell
        fw.add_wireless_client("near", bs, distance=50.0)
        fw.add_wireless_client("far", bs, distance=100.0)
        snap = bs.evaluate_qos()
        sir_near, _ = snap.for_client("near")
        sir_far, _ = snap.for_client("far")
        assert sir_near > 0 > sir_far
        assert sir_near == pytest.approx(-sir_far, abs=0.5)  # near-symmetric

    def test_snapshot_history_accumulates(self, cell):
        fw, _, bs = cell
        fw.add_wireless_client("w1", bs, distance=50.0)
        bs.evaluate_qos()
        bs.evaluate_qos()
        assert len(bs.qos_history) == 2

    def test_qos_loop_periodic(self, cell):
        fw, _, bs = cell
        fw.add_wireless_client("w1", bs, distance=50.0)
        bs.start_qos_loop(interval=0.5)
        fw.run_for(2.1)
        assert len(bs.qos_history) >= 4

    def test_empty_cell_snapshot(self, cell):
        _, _, bs = cell
        snap = bs.evaluate_qos()
        assert snap.client_ids == ()


class TestDownlinkGating:
    def test_full_tier_gets_image_packets(self, cell):
        fw, wired, bs = cell
        w = fw.add_wireless_client("w1", bs, distance=40.0, tx_power=1.0)
        bs.evaluate_qos()
        wired.share_image("map", collaboration_scene(64, 64))
        fw.run_for(3.0)
        counts = w.modality_counts()
        assert counts["announces"] == 1
        assert counts["image_packets"] == 16

    def test_low_sir_gets_text_only(self, cell):
        fw, wired, bs = cell
        near = fw.add_wireless_client("near", bs, distance=40.0)
        far = fw.add_wireless_client("far", bs, distance=95.0)
        bs.evaluate_qos()
        _, far_tier = bs.qos_history[-1].for_client("far")
        assert far_tier in (ModalityTier.TEXT_ONLY, ModalityTier.NOTHING)
        wired.share_image("map", collaboration_scene(64, 64))
        fw.run_for(3.0)
        counts = far.modality_counts()
        assert counts["image_packets"] == 0
        if far_tier is ModalityTier.TEXT_ONLY:
            assert counts["text"] == 1  # the verbal description

    def test_sketch_tier_receives_sketch(self, cell):
        fw, wired, bs = cell
        # geometry chosen so w2 (the nearer client) sits in [0, 4) dB
        fw.add_wireless_client("w1", bs, distance=75.0)
        sk = fw.add_wireless_client("w2", bs, distance=70.0)
        snap = bs.evaluate_qos()
        sir, tier = snap.for_client("w2")
        assert tier is ModalityTier.TEXT_AND_SKETCH
        wired.share_image("map", collaboration_scene(64, 64))
        fw.run_for(3.0)
        counts = sk.modality_counts()
        assert counts["text"] == 1
        assert counts["sketch"] == 1
        assert counts["image_packets"] == 0

    def test_chat_reaches_all_usable_tiers(self, cell):
        fw, wired, bs = cell
        w = fw.add_wireless_client("w1", bs, distance=80.0)
        bs.evaluate_qos()
        wired.send_chat("status?")
        fw.run_for(1.0)
        kinds = [type(e).__name__ for _, e in w.received_events]
        assert "ChatEvent" in kinds


class TestUplinkGating:
    def test_chat_uplink_reaches_session(self, cell):
        fw, wired, bs = cell
        w = fw.add_wireless_client("w1", bs, distance=50.0)
        w.send_event(ChatEvent(author="w1", text="in the field"))
        fw.run_for(1.0)
        assert "w1: in the field" in wired.chat.transcript

    def test_full_tier_image_uplink_forwarded(self, cell):
        fw, wired, bs = cell
        w = fw.add_wireless_client("w1", bs, distance=40.0)
        bs.evaluate_qos()
        from repro.apps.imageviewer import ImageViewer

        viewer = ImageViewer("w1", n_packets=16, target_bpp=2.2)
        announce, packets = viewer.share("field-img", collaboration_scene(64, 64))
        w.send_event(announce)
        for p in packets:
            w.send_event(p)
        fw.run_for(3.0)
        assert "field-img" in wired.viewer.viewed
        assert wired.viewer.viewed["field-img"].assembly.usable_prefix == 16

    def test_degraded_uplink_sends_description_as_text(self, cell):
        fw, wired, bs = cell
        w = fw.add_wireless_client("w1", bs, distance=80.0)  # low SNR alone? no
        # drag the client down with an interferer
        fw.add_wireless_client("jammer", bs, distance=40.0)
        bs.evaluate_qos()
        _, tier = bs.qos_history[-1].for_client("w1")
        assert tier in (ModalityTier.TEXT_ONLY, ModalityTier.TEXT_AND_SKETCH, ModalityTier.NOTHING)
        from repro.apps.imageviewer import ImageViewer

        viewer = ImageViewer("w1")
        announce, packets = viewer.share("field-img", collaboration_scene(64, 64))
        w.send_event(announce)
        fw.run_for(2.0)
        if tier is not ModalityTier.NOTHING:
            # wired peer got a text rendition, not the image
            assert "field-img" not in wired.viewer.viewed
            assert any("field-img" in line for line in wired.chat.transcript)

    def test_unattached_sender_dropped(self, cell):
        fw, wired, bs = cell
        w = fw.add_wireless_client("w1", bs, distance=50.0)
        bs.detach("w1")
        w.send_event(ChatEvent(author="w1", text="ghost"))
        fw.run_for(1.0)
        assert wired.chat.transcript == []


class TestPowerControl:
    def test_overpowered_client_asked_to_reduce(self, cell):
        fw, _, bs = cell
        w = fw.add_wireless_client("w1", bs, distance=30.0, tx_power=4.0)
        requests = bs.apply_power_control()
        fw.run_for(1.0)
        assert len(requests) == 1
        assert requests[0].new_power < 4.0
        # client complied and reported back
        assert w.tx_power == pytest.approx(requests[0].new_power)
        assert bs.attachments["w1"].tx_power == pytest.approx(requests[0].new_power)

    def test_client_at_target_not_asked(self, cell):
        fw, _, bs = cell
        fw.add_wireless_client("w1", bs, distance=90.0, tx_power=1.0)
        fw.add_wireless_client("w2", bs, distance=85.0, tx_power=1.0)
        assert bs.apply_power_control() == []

    def test_noncompliant_client_keeps_power(self, cell):
        fw, _, bs = cell
        w = fw.add_wireless_client("w1", bs, distance=30.0, tx_power=4.0)
        w.comply_with_power_control = False
        bs.apply_power_control()
        fw.run_for(1.0)
        assert w.tx_power == 4.0
        assert len(w.power_requests) == 1

    def test_power_reduction_conserves_battery(self, cell):
        fw, _, bs = cell
        w = fw.add_wireless_client("w1", bs, distance=30.0, tx_power=4.0)
        bs.apply_power_control()
        fw.run_for(1.0)
        drain_before = w.battery
        for _ in range(10):
            w.send_event(ChatEvent(author="w1", text="x"))
        low_power_drain = drain_before - w.battery
        assert low_power_drain < 10 * 0.05 * 4.0  # cheaper than at 4.0 power
