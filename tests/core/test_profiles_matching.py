"""Tests for profiles, transform rules, and the Figure 3 interpretation."""

import pytest

from repro.core.attributes import MISSING, coerce_value, values_equal
from repro.core.matching import Decision, interpret, match_selector
from repro.core.profiles import ClientProfile, ProfileError, TransformRule
from repro.core.selectors import Selector


class TestAttributes:
    def test_coerce_scalars(self):
        assert coerce_value(5) == 5
        assert coerce_value("x") == "x"
        assert coerce_value(True) is True

    def test_coerce_tuple_to_list(self):
        assert coerce_value((1, 2)) == [1, 2]

    def test_nested_rejected(self):
        with pytest.raises(TypeError):
            coerce_value([[1]])
        with pytest.raises(TypeError):
            coerce_value({"a": 1})

    def test_values_equal_semantics(self):
        assert values_equal(1, 1.0)
        assert not values_equal("1", 1)
        assert not values_equal(True, 1)  # bool is not a number here
        assert values_equal([1, 2], (1, 2))
        assert not values_equal(MISSING, MISSING)

    def test_missing_is_falsy_singleton(self):
        assert not MISSING
        from repro.core.attributes import _Missing

        assert _Missing() is MISSING


class TestProfile:
    def test_update_bumps_version(self):
        p = ClientProfile("c", {"a": 1})
        v0 = p.version
        p.update(b=2)
        assert p.version == v0 + 1
        assert p["b"] == 2

    def test_remove(self):
        p = ClientProfile("c", {"a": 1, "b": 2})
        p.remove("a", "zzz")
        assert "a" not in p
        assert p.get("a", "dflt") == "dflt"

    def test_interest_from_string(self):
        p = ClientProfile("c", interest="x == 1")
        assert isinstance(p.interest, Selector)

    def test_default_interest_accepts_all(self):
        p = ClientProfile("c")
        assert p.interest.matches({"anything": 1})

    def test_set_interest(self):
        p = ClientProfile("c")
        p.set_interest("modality == 'text'")
        assert not p.interest.matches({"modality": "image"})

    def test_snapshot_is_detached(self):
        p = ClientProfile("c", {"a": 1})
        snap = p.snapshot()
        p.update(a=2)
        assert snap["a"] == 1


class TestTransformRule:
    def test_applies_and_apply(self):
        rule = TransformRule("encoding", "mpeg2", "jpeg")
        assert rule.applies_to({"encoding": "mpeg2"})
        assert not rule.applies_to({"encoding": "png"})
        assert rule.apply({"encoding": "mpeg2", "x": 1}) == {"encoding": "jpeg", "x": 1}

    def test_apply_without_precondition_raises(self):
        rule = TransformRule("encoding", "mpeg2", "jpeg")
        with pytest.raises(ProfileError):
            rule.apply({"encoding": "png"})

    def test_str_uses_name(self):
        assert str(TransformRule("a", "b", "c", name="b2c")) == "b2c"
        assert "a:b->c" in str(TransformRule("a", "b", "c"))


class TestFigure3:
    """The paper's worked example, verbatim."""

    selector = Selector("role == 'participant'")
    headers = {"media": "video", "encoding": "mpeg2", "color": True, "size_mb": 1}

    def test_profile1_accepts(self):
        p = ClientProfile("c1", {"role": "participant"},
                          interest="media == 'video' and encoding == 'mpeg2'")
        r = interpret(self.selector, self.headers, p)
        assert r.decision is Decision.ACCEPT
        assert r.accepted
        assert r.effective_headers == self.headers

    def test_profile2_rejects(self):
        p = ClientProfile("c2", {"role": "participant"},
                          interest="media == 'video' and color == false")
        r = interpret(self.selector, self.headers, p)
        assert r.decision is Decision.REJECT
        assert not r.accepted

    def test_profile3_accepts_with_transform(self):
        p = ClientProfile(
            "c3",
            {"role": "participant"},
            interest="media == 'video' and encoding == 'jpeg'",
            transforms=[TransformRule("encoding", "mpeg2", "jpeg", "mpeg2->jpeg")],
        )
        r = interpret(self.selector, self.headers, p)
        assert r.decision is Decision.ACCEPT_WITH_TRANSFORM
        assert [str(t) for t in r.transforms] == ["mpeg2->jpeg"]
        assert r.effective_headers["encoding"] == "jpeg"

    def test_unaddressed_profile_rejects_regardless(self):
        p = ClientProfile("c4", {"role": "observer"})
        assert interpret(self.selector, self.headers, p).decision is Decision.REJECT

    def test_match_selector_only(self):
        p = ClientProfile("c", {"role": "participant"})
        assert match_selector(self.selector, p)


class TestTransformChains:
    def test_two_step_chain(self):
        p = ClientProfile(
            "c",
            {"role": "x"},
            interest="modality == 'text'",
            transforms=[
                TransformRule("modality", "image", "sketch"),
                TransformRule("modality", "sketch", "text"),
            ],
        )
        r = interpret(Selector("true"), {"modality": "image"}, p)
        assert r.decision is Decision.ACCEPT_WITH_TRANSFORM
        assert len(r.transforms) == 2

    def test_chain_longer_than_limit_rejected(self):
        p = ClientProfile(
            "c",
            interest="m == 'd'",
            transforms=[
                TransformRule("m", "a", "b"),
                TransformRule("m", "b", "c"),
                TransformRule("m", "c", "d"),
            ],
        )
        r = interpret(Selector("true"), {"m": "a"}, p, max_transforms=2)
        assert r.decision is Decision.REJECT
        r3 = interpret(Selector("true"), {"m": "a"}, p, max_transforms=3)
        assert r3.decision is Decision.ACCEPT_WITH_TRANSFORM

    def test_shortest_chain_preferred(self):
        p = ClientProfile(
            "c",
            interest="m == 'text'",
            transforms=[
                TransformRule("m", "image", "sketch"),
                TransformRule("m", "sketch", "text"),
                TransformRule("m", "image", "text"),  # direct route
            ],
        )
        r = interpret(Selector("true"), {"m": "image"}, p)
        assert len(r.transforms) == 1

    def test_no_applicable_transform_rejects(self):
        p = ClientProfile(
            "c",
            interest="m == 'text'",
            transforms=[TransformRule("m", "video", "text")],
        )
        r = interpret(Selector("true"), {"m": "image"}, p)
        assert r.decision is Decision.REJECT

    def test_cycle_terminates(self):
        p = ClientProfile(
            "c",
            interest="m == 'never'",
            transforms=[
                TransformRule("m", "a", "b"),
                TransformRule("m", "b", "a"),
            ],
        )
        r = interpret(Selector("true"), {"m": "a"}, p, max_transforms=10)
        assert r.decision is Decision.REJECT
