"""Tests for the state repository and concurrency control."""

import pytest
from hypothesis import given, strategies as st

from repro.core.concurrency import Arbiter, LockError, LockManager
from repro.core.state import StateEntry, StateRepository


class TestRepository:
    def test_put_bumps_version(self):
        repo = StateRepository()
        e1 = repo.put("k", 1, timestamp=0.1, author="a")
        e2 = repo.put("k", 2, timestamp=0.2, author="a")
        assert (e1.version, e2.version) == (1, 2)

    def test_get_missing(self):
        assert StateRepository().get("nope") is None

    def test_keys_sorted_and_iter(self):
        repo = StateRepository()
        repo.put("b", 1, 0.0, "a")
        repo.put("a", 2, 0.0, "a")
        assert repo.keys() == ["a", "b"]
        assert [e.key for e in repo] == ["a", "b"]
        assert len(repo) == 2

    def test_listener_notified(self):
        repo = StateRepository()
        calls = []
        repo.subscribe(lambda new, old: calls.append((new.value, old)))
        repo.put("k", 1, 0.0, "a")
        repo.put("k", 2, 0.1, "a")
        assert calls[0] == (1, None)
        assert calls[1][0] == 2 and calls[1][1].value == 1


class TestRemoteMerge:
    def test_higher_version_wins(self):
        repo = StateRepository()
        repo.put("k", "old", 0.0, "a")  # version 1
        assert repo.apply_remote(StateEntry("k", "new", 2, 0.0, "b"))
        assert repo.get("k").value == "new"

    def test_lower_version_loses(self):
        repo = StateRepository()
        repo.put("k", "v", 0.5, "a")
        repo.put("k", "v2", 0.6, "a")  # version 2
        assert not repo.apply_remote(StateEntry("k", "stale", 1, 99.0, "b"))
        assert repo.get("k").value == "v2"
        assert repo.updates_rejected == 1

    def test_timestamp_breaks_version_tie(self):
        repo = StateRepository()
        repo.apply_remote(StateEntry("k", "early", 1, 1.0, "a"))
        assert repo.apply_remote(StateEntry("k", "late", 1, 2.0, "b"))
        assert repo.get("k").value == "late"

    def test_author_breaks_full_tie(self):
        repo = StateRepository()
        repo.apply_remote(StateEntry("k", "from-a", 1, 1.0, "alice"))
        assert repo.apply_remote(StateEntry("k", "from-b", 1, 1.0, "bob"))
        assert repo.get("k").value == "from-b"  # 'bob' > 'alice'

    @given(st.permutations([
        StateEntry("k", f"v{i}", v, t, a)
        for i, (v, t, a) in enumerate([(1, 1.0, "x"), (1, 2.0, "y"), (2, 0.5, "z")])
    ]))
    def test_merge_order_independent(self, entries):
        """LWW must converge to the same winner for any arrival order."""
        repo = StateRepository()
        for e in entries:
            repo.apply_remote(e)
        assert repo.get("k").value == "v2"  # version 2 dominates


class TestArbiter:
    def test_conflict_recorded_not_lost(self):
        repo = StateRepository()
        arb = Arbiter(repo)
        arb.submit(StateEntry("obj", "from-a", 1, 1.0, "alice"))
        arb.submit(StateEntry("obj", "from-b", 1, 1.0, "bob"))
        assert repo.get("obj").value == "from-b"
        assert len(arb.conflicts) == 1
        c = arb.conflicts[0]
        assert c.winner.value == "from-b"
        assert c.loser.value == "from-a"

    def test_non_conflicting_updates_no_record(self):
        repo = StateRepository()
        arb = Arbiter(repo)
        arb.submit(StateEntry("obj", "v1", 1, 1.0, "a"))
        arb.submit(StateEntry("obj", "v2", 2, 2.0, "a"))
        assert list(arb.conflicts) == []

    def test_conflicts_for_key(self):
        repo = StateRepository()
        arb = Arbiter(repo)
        arb.submit(StateEntry("x", "1", 1, 1.0, "a"))
        arb.submit(StateEntry("x", "2", 1, 1.0, "b"))
        arb.submit(StateEntry("y", "3", 1, 1.0, "a"))
        assert len(arb.conflicts_for("x")) == 1
        assert arb.conflicts_for("y") == []

    def test_history_bounded_with_overflow_counter(self):
        """The cap evicts oldest records but the total stays accountable."""
        repo = StateRepository()
        arb = Arbiter(repo, max_conflicts=3)
        for i in range(5):
            arb.submit(StateEntry(f"k{i}", "a", 1, 1.0, "alice"))
            arb.submit(StateEntry(f"k{i}", "b", 1, 1.0, "bob"))
        assert len(arb.conflicts) == 3
        assert arb.conflicts_dropped == 2
        assert arb.total_conflicts == 5
        # newest records survive, oldest were evicted
        assert [c.key for c in arb.conflicts] == ["k2", "k3", "k4"]

    def test_default_cap_is_generous(self):
        repo = StateRepository()
        arb = Arbiter(repo)
        assert arb.max_conflicts >= 1024
        assert arb.conflicts.maxlen == arb.max_conflicts


class TestLockManager:
    def test_acquire_free_lock(self):
        lm = LockManager()
        assert lm.acquire("wb/s1", "alice")
        assert lm.owner("wb/s1") == "alice"

    def test_reentrant(self):
        lm = LockManager()
        lm.acquire("k", "a")
        assert lm.acquire("k", "a")

    def test_contention_queues_fifo(self):
        lm = LockManager()
        lm.acquire("k", "a")
        assert not lm.acquire("k", "b")
        assert not lm.acquire("k", "c")
        assert lm.release("k", "a") == "b"
        assert lm.release("k", "b") == "c"
        assert lm.release("k", "c") is None
        assert lm.owner("k") is None

    def test_double_queue_request_ignored(self):
        lm = LockManager()
        lm.acquire("k", "a")
        lm.acquire("k", "b")
        lm.acquire("k", "b")
        assert lm.release("k", "a") == "b"
        assert lm.release("k", "b") is None

    def test_release_without_ownership_raises(self):
        lm = LockManager()
        with pytest.raises(LockError):
            lm.release("k", "nobody")

    def test_drop_client_releases_and_dequeues(self):
        lm = LockManager()
        lm.acquire("k1", "a")
        lm.acquire("k2", "a")
        lm.acquire("k1", "b")
        changed = lm.drop_client("a")
        assert ("k1", "b") in changed
        assert ("k2", None) in changed
        assert lm.owner("k1") == "b"

    def test_drop_waiting_client(self):
        lm = LockManager()
        lm.acquire("k", "a")
        lm.acquire("k", "b")
        lm.drop_client("b")
        assert lm.release("k", "a") is None


# ----------------------------------------------------------------------
# LockManager property test: arbitrary interleavings of request /
# release / leave preserve the paper's Sec. 2 lock invariants.
# ----------------------------------------------------------------------
CLIENTS = ("alice", "bob", "carol")
KEYS = ("wb/s1", "wb/s2")

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("acquire"), st.sampled_from(KEYS), st.sampled_from(CLIENTS)),
        st.tuples(st.just("release"), st.sampled_from(KEYS), st.sampled_from(CLIENTS)),
        st.tuples(st.just("leave"), st.just(""), st.sampled_from(CLIENTS)),
    ),
    max_size=40,
)


class _LockModel:
    """Reference model: owner + FIFO queue per key, pure Python lists."""

    def __init__(self):
        self.owner = {}
        self.queue = {k: [] for k in KEYS}

    def acquire(self, key, client):
        if self.owner.get(key) in (None, client):
            self.owner[key] = client
            return True
        if client not in self.queue[key]:
            self.queue[key].append(client)
        return False

    def release(self, key, client):
        assert self.owner.get(key) == client
        if self.queue[key]:
            nxt = self.queue[key].pop(0)
            self.owner[key] = nxt
            return nxt
        del self.owner[key]
        return None

    def leave(self, client):
        for key in KEYS:
            if client in self.queue[key]:
                self.queue[key].remove(client)
        for key in list(self.owner):
            if self.owner[key] == client:
                self.release(key, client)


@given(_ops)
def test_lockmanager_interleavings_match_model(ops):
    """Grants follow request order, tie-breaks deterministically, and
    leave revokes — for every interleaving, against a reference model."""
    lm = LockManager()
    model = _LockModel()
    for op, key, client in ops:
        if op == "acquire":
            assert lm.acquire(key, client) == model.acquire(key, client)
        elif op == "release":
            if model.owner.get(key) == client:
                assert lm.release(key, client) == model.release(key, client)
            else:
                with pytest.raises(LockError):
                    lm.release(key, client)
        else:
            got = dict(lm.drop_client(client))
            model.leave(client)
            for changed_key, new_owner in got.items():
                assert model.owner.get(changed_key) == new_owner
        for k in KEYS:
            assert lm.owner(k) == model.owner.get(k)


@given(_ops)
def test_lockmanager_determinism(ops):
    """Same interleaving twice -> identical grants and final owners."""
    results = []
    for _ in range(2):
        lm = LockManager()
        trace = []
        for op, key, client in ops:
            if op == "acquire":
                trace.append(lm.acquire(key, client))
            elif op == "release":
                try:
                    trace.append(lm.release(key, client))
                except LockError:
                    trace.append("error")
            else:
                trace.append(tuple(lm.drop_client(client)))
        results.append((trace, {k: lm.owner(k) for k in KEYS}))
    assert results[0] == results[1]
