"""Tests for the state repository and concurrency control."""

import pytest
from hypothesis import given, strategies as st

from repro.core.concurrency import Arbiter, LockError, LockManager
from repro.core.state import StateEntry, StateRepository


class TestRepository:
    def test_put_bumps_version(self):
        repo = StateRepository()
        e1 = repo.put("k", 1, timestamp=0.1, author="a")
        e2 = repo.put("k", 2, timestamp=0.2, author="a")
        assert (e1.version, e2.version) == (1, 2)

    def test_get_missing(self):
        assert StateRepository().get("nope") is None

    def test_keys_sorted_and_iter(self):
        repo = StateRepository()
        repo.put("b", 1, 0.0, "a")
        repo.put("a", 2, 0.0, "a")
        assert repo.keys() == ["a", "b"]
        assert [e.key for e in repo] == ["a", "b"]
        assert len(repo) == 2

    def test_listener_notified(self):
        repo = StateRepository()
        calls = []
        repo.subscribe(lambda new, old: calls.append((new.value, old)))
        repo.put("k", 1, 0.0, "a")
        repo.put("k", 2, 0.1, "a")
        assert calls[0] == (1, None)
        assert calls[1][0] == 2 and calls[1][1].value == 1


class TestRemoteMerge:
    def test_higher_version_wins(self):
        repo = StateRepository()
        repo.put("k", "old", 0.0, "a")  # version 1
        assert repo.apply_remote(StateEntry("k", "new", 2, 0.0, "b"))
        assert repo.get("k").value == "new"

    def test_lower_version_loses(self):
        repo = StateRepository()
        repo.put("k", "v", 0.5, "a")
        repo.put("k", "v2", 0.6, "a")  # version 2
        assert not repo.apply_remote(StateEntry("k", "stale", 1, 99.0, "b"))
        assert repo.get("k").value == "v2"
        assert repo.updates_rejected == 1

    def test_timestamp_breaks_version_tie(self):
        repo = StateRepository()
        repo.apply_remote(StateEntry("k", "early", 1, 1.0, "a"))
        assert repo.apply_remote(StateEntry("k", "late", 1, 2.0, "b"))
        assert repo.get("k").value == "late"

    def test_author_breaks_full_tie(self):
        repo = StateRepository()
        repo.apply_remote(StateEntry("k", "from-a", 1, 1.0, "alice"))
        assert repo.apply_remote(StateEntry("k", "from-b", 1, 1.0, "bob"))
        assert repo.get("k").value == "from-b"  # 'bob' > 'alice'

    @given(st.permutations([
        StateEntry("k", f"v{i}", v, t, a)
        for i, (v, t, a) in enumerate([(1, 1.0, "x"), (1, 2.0, "y"), (2, 0.5, "z")])
    ]))
    def test_merge_order_independent(self, entries):
        """LWW must converge to the same winner for any arrival order."""
        repo = StateRepository()
        for e in entries:
            repo.apply_remote(e)
        assert repo.get("k").value == "v2"  # version 2 dominates


class TestArbiter:
    def test_conflict_recorded_not_lost(self):
        repo = StateRepository()
        arb = Arbiter(repo)
        arb.submit(StateEntry("obj", "from-a", 1, 1.0, "alice"))
        arb.submit(StateEntry("obj", "from-b", 1, 1.0, "bob"))
        assert repo.get("obj").value == "from-b"
        assert len(arb.conflicts) == 1
        c = arb.conflicts[0]
        assert c.winner.value == "from-b"
        assert c.loser.value == "from-a"

    def test_non_conflicting_updates_no_record(self):
        repo = StateRepository()
        arb = Arbiter(repo)
        arb.submit(StateEntry("obj", "v1", 1, 1.0, "a"))
        arb.submit(StateEntry("obj", "v2", 2, 2.0, "a"))
        assert arb.conflicts == []

    def test_conflicts_for_key(self):
        repo = StateRepository()
        arb = Arbiter(repo)
        arb.submit(StateEntry("x", "1", 1, 1.0, "a"))
        arb.submit(StateEntry("x", "2", 1, 1.0, "b"))
        arb.submit(StateEntry("y", "3", 1, 1.0, "a"))
        assert len(arb.conflicts_for("x")) == 1
        assert arb.conflicts_for("y") == []


class TestLockManager:
    def test_acquire_free_lock(self):
        lm = LockManager()
        assert lm.acquire("wb/s1", "alice")
        assert lm.owner("wb/s1") == "alice"

    def test_reentrant(self):
        lm = LockManager()
        lm.acquire("k", "a")
        assert lm.acquire("k", "a")

    def test_contention_queues_fifo(self):
        lm = LockManager()
        lm.acquire("k", "a")
        assert not lm.acquire("k", "b")
        assert not lm.acquire("k", "c")
        assert lm.release("k", "a") == "b"
        assert lm.release("k", "b") == "c"
        assert lm.release("k", "c") is None
        assert lm.owner("k") is None

    def test_double_queue_request_ignored(self):
        lm = LockManager()
        lm.acquire("k", "a")
        lm.acquire("k", "b")
        lm.acquire("k", "b")
        assert lm.release("k", "a") == "b"
        assert lm.release("k", "b") is None

    def test_release_without_ownership_raises(self):
        lm = LockManager()
        with pytest.raises(LockError):
            lm.release("k", "nobody")

    def test_drop_client_releases_and_dequeues(self):
        lm = LockManager()
        lm.acquire("k1", "a")
        lm.acquire("k2", "a")
        lm.acquire("k1", "b")
        changed = lm.drop_client("a")
        assert ("k1", "b") in changed
        assert ("k2", None) in changed
        assert lm.owner("k1") == "b"

    def test_drop_waiting_client(self):
        lm = LockManager()
        lm.acquire("k", "a")
        lm.acquire("k", "b")
        lm.drop_client("b")
        assert lm.release("k", "a") is None
