"""Tests for the semantic-selector language."""

import pytest
from hypothesis import given, strategies as st

from repro.core.selectors import Selector, SelectorError, TRUE_SELECTOR, parse


class TestLexing:
    def test_bad_character_rejected(self):
        with pytest.raises(SelectorError):
            Selector("a == @b")

    def test_empty_rejected(self):
        with pytest.raises(SelectorError):
            Selector("")
        with pytest.raises(SelectorError):
            Selector("   ")

    def test_strings_both_quote_styles(self):
        assert Selector("x == 'a'").matches({"x": "a"})
        assert Selector('x == "a"').matches({"x": "a"})

    def test_numbers(self):
        assert Selector("x == 3").matches({"x": 3})
        assert Selector("x == 3.5").matches({"x": 3.5})
        assert Selector("x == -2").matches({"x": -2})


class TestComparisons:
    def test_equality_and_inequality(self):
        assert Selector("role == 'medic'").matches({"role": "medic"})
        assert not Selector("role == 'medic'").matches({"role": "clerk"})
        assert Selector("role != 'medic'").matches({"role": "clerk"})

    def test_numeric_ordering(self):
        env = {"battery": 45}
        assert Selector("battery > 40").matches(env)
        assert Selector("battery >= 45").matches(env)
        assert Selector("battery < 50").matches(env)
        assert not Selector("battery <= 44").matches(env)

    def test_int_float_equality(self):
        assert Selector("x == 1").matches({"x": 1.0})

    def test_string_number_never_equal(self):
        assert not Selector("x == 1").matches({"x": "1"})
        assert Selector("x != 1").matches({"x": "1"})

    def test_string_ordering(self):
        assert Selector("name < 'm'").matches({"name": "alpha"})

    def test_ordering_across_types_false(self):
        assert not Selector("x < 5").matches({"x": "abc"})

    def test_missing_attribute_clause_false(self):
        assert not Selector("battery > 10").matches({})
        assert not Selector("battery != 10").matches({})  # != also fails on missing

    def test_attr_to_attr_comparison(self):
        assert Selector("have >= need").matches({"have": 10, "need": 5})

    def test_in_list(self):
        s = Selector("encoding in ['mpeg2', 'jpeg']")
        assert s.matches({"encoding": "jpeg"})
        assert not s.matches({"encoding": "png"})
        assert not s.matches({})

    def test_in_mixed_list(self):
        assert Selector("x in [1, 'two', true]").matches({"x": True})

    def test_contains(self):
        s = Selector("capabilities contains 'jpeg'")
        assert s.matches({"capabilities": ["png", "jpeg"]})
        assert not s.matches({"capabilities": ["png"]})
        assert not s.matches({"capabilities": "jpeg"})  # not a list

    def test_exists(self):
        assert Selector("exists(gps)").matches({"gps": 0})
        assert not Selector("exists(gps)").matches({})
        assert Selector("not exists(gps)").matches({})


class TestBooleanLogic:
    def test_and_or_not(self):
        s = Selector("a == 1 and b == 2 or not c == 3")
        assert s.matches({"a": 1, "b": 2, "c": 3})
        assert s.matches({"c": 4})
        assert not s.matches({"a": 1, "b": 9, "c": 3})

    def test_parentheses_override_precedence(self):
        s1 = Selector("a == 1 or b == 1 and c == 1")
        s2 = Selector("(a == 1 or b == 1) and c == 1")
        env = {"a": 1, "c": 2}
        assert s1.matches(env)
        assert not s2.matches(env)

    def test_bare_boolean_attribute(self):
        assert Selector("urgent").matches({"urgent": True})
        assert not Selector("urgent").matches({"urgent": False})
        assert not Selector("urgent").matches({"urgent": 1})  # strict bool

    def test_true_false_literals(self):
        assert Selector("true").matches({})
        assert not Selector("false").matches({})
        assert TRUE_SELECTOR.matches({})

    def test_boolean_value_comparison(self):
        assert Selector("color == false").matches({"color": False})
        assert not Selector("color == false").matches({"color": True})

    def test_nested_not(self):
        assert Selector("not not a == 1").matches({"a": 1})


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "a ==",
            "== 1",
            "a == 1 and",
            "a == 1 or or b == 2",
            "(a == 1",
            "a in []",
            "a in [1,]",
            "a in 5",
            "exists()",
            "exists(a",
            "a == 1 garbage trailing ==",
            "5",
            "'lonely string'",
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(SelectorError):
            Selector(text)


class TestIntrospection:
    def test_attributes_collected(self):
        s = Selector("a == 1 and (b in [2] or exists(c)) and not d contains 'x'")
        assert s.attributes() == {"a", "b", "c", "d"}

    def test_parse_alias(self):
        assert parse("a == 1").matches({"a": 1})

    def test_repr_and_hash(self):
        s = Selector("a == 1")
        assert "a == 1" in repr(s)
        assert hash(s) == hash(Selector("a == 1"))

    def test_structural_equality(self):
        assert Selector("a == 1 and b == 2") == Selector("a == 1 and b == 2")
        assert Selector("a == 1") != Selector("a == 2")


names = st.text(alphabet="abcdefgh", min_size=1, max_size=6)
values = st.one_of(st.integers(-100, 100), st.booleans(),
                   st.text(alphabet="xyz", max_size=5))


class TestProperties:
    @given(names, st.integers(-1000, 1000))
    def test_equality_reflexive(self, name, value):
        assert Selector(f"{name} == {value}").matches({name: value})

    @given(names, st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_trichotomy(self, name, a, b):
        env = {name: a}
        lt = Selector(f"{name} < {b}").matches(env)
        eq = Selector(f"{name} == {b}").matches(env)
        gt = Selector(f"{name} > {b}").matches(env)
        assert [lt, eq, gt].count(True) == 1

    @given(names, st.integers(-100, 100))
    def test_negation_complements(self, name, v):
        env = {name: v}
        s = Selector(f"{name} >= 0")
        n = Selector(f"not {name} >= 0")
        assert s.matches(env) != n.matches(env)

    @given(st.dictionaries(names, values, max_size=4))
    def test_true_matches_everything(self, env):
        assert TRUE_SELECTOR.matches(env)


class TestErrorPositions:
    """Regression: SelectorError carries the offending token's span."""

    def test_lex_error_position(self):
        with pytest.raises(SelectorError) as ei:
            Selector("a == @b")
        err = ei.value
        assert err.pos == 5
        assert (err.line, err.column) == (1, 6)
        assert err.source == "a == @b"
        assert "line 1, column 6" in str(err)

    def test_parse_error_position(self):
        with pytest.raises(SelectorError) as ei:
            Selector("a == ) and b == 2")
        err = ei.value
        assert err.pos == 5
        assert (err.line, err.column) == (1, 6)

    def test_trailing_input_position(self):
        with pytest.raises(SelectorError) as ei:
            Selector("a == 1 b")
        assert ei.value.pos == 7
        assert ei.value.column == 8

    def test_unexpected_end_points_past_source(self):
        with pytest.raises(SelectorError) as ei:
            Selector("a ==")
        assert ei.value.pos == 4

    def test_multiline_line_column(self):
        src = "a == 1\nand b == )"
        with pytest.raises(SelectorError) as ei:
            Selector(src)
        assert (ei.value.line, ei.value.column) == (2, 10)

    def test_bare_literal_position(self):
        with pytest.raises(SelectorError) as ei:
            Selector("a == 1 and 5")
        assert ei.value.pos == 11
