"""Tests for session discovery and refinement."""

import pytest

from repro.core.discovery import DiscoveryError, SessionDirectory
from repro.core.session import SessionDescriptor


@pytest.fixture
def directory():
    d = SessionDirectory()
    d.publish(SessionDescriptor("crisis-7", "coordinate flood response in sector 7"))
    d.publish(
        SessionDescriptor(
            "peripherals", "auction surplus computer peripherals", result_space=("chat",)
        )
    )
    d.publish(
        SessionDescriptor(
            "telediag-12", "review cardiac scans for patient rounds",
            result_space=("chat", "image"),
        )
    )
    return d


class TestPublish:
    def test_publish_and_get(self, directory):
        assert directory.get("crisis-7").objective.startswith("coordinate")
        assert len(directory.sessions) == 3

    def test_empty_objective_rejected(self, directory):
        with pytest.raises(DiscoveryError):
            directory.publish(SessionDescriptor("x", "   "))

    def test_withdraw(self, directory):
        directory.withdraw("crisis-7")
        assert directory.get("crisis-7") is None
        directory.withdraw("crisis-7")  # idempotent


class TestSearch:
    def test_keyword_match_ranked(self, directory):
        hits = directory.search("flood response coordination")
        assert hits[0].descriptor.name == "crisis-7"
        assert "flood" in hits[0].matched_tokens

    def test_no_match_empty(self, directory):
        assert directory.search("quantum chromodynamics") == []

    def test_empty_query_rejected(self, directory):
        with pytest.raises(DiscoveryError):
            directory.search("   ")

    def test_capability_requirement_filters(self, directory):
        hits = directory.search("review scans", require=("image",))
        assert [h.descriptor.name for h in hits] == ["telediag-12"]
        hits2 = directory.search("auction peripherals", require=("image",))
        assert hits2 == []  # chat-only session excluded

    def test_name_match_bonus(self, directory):
        directory.publish(SessionDescriptor("flood", "generic relief chat"))
        hits = directory.search("flood")
        # the name-matching session outranks the objective-only match
        assert hits[0].descriptor.name == "flood"

    def test_limit(self, directory):
        for i in range(10):
            directory.publish(SessionDescriptor(f"s{i}", "common shared objective"))
        assert len(directory.search("common shared objective", limit=4)) == 4


class TestRefinement:
    def test_refine_coarse_group(self, directory):
        """The paper's modem-buyer example: narrow 'peripherals'."""
        refined = directory.refine(
            "peripherals", "peripherals-modems", "auction modems only"
        )
        assert refined.result_space == ("chat",)  # inherited
        assert directory.parent_of("peripherals-modems") == "peripherals"
        assert [d.name for d in directory.refinements_of("peripherals")] == [
            "peripherals-modems"
        ]
        # discoverable with higher precision
        hits = directory.search("modems")
        assert hits[0].descriptor.name == "peripherals-modems"

    def test_refinement_cannot_widen(self, directory):
        with pytest.raises(DiscoveryError):
            directory.refine(
                "peripherals", "p2", "with images", result_space=("chat", "image")
            )

    def test_refinement_can_narrow(self, directory):
        refined = directory.refine(
            "telediag-12", "telediag-text", "text-only consults", result_space=("chat",)
        )
        assert refined.result_space == ("chat",)

    def test_unknown_parent(self, directory):
        with pytest.raises(DiscoveryError):
            directory.refine("ghost", "sub", "obj")

    def test_withdraw_refinement_cleans_link(self, directory):
        directory.refine("peripherals", "sub", "narrow")
        directory.withdraw("sub")
        assert directory.refinements_of("peripherals") == []
