"""Tests for session-history replay and NACK-based image repair."""

import pytest

from repro.core.events import HistoryRequest, ImageRepairRequest, decode_event
from repro.core.framework import CollaborationFramework
from repro.media.images import collaboration_scene


@pytest.fixture
def fw():
    return CollaborationFramework("htest", objective="history test")


class TestEventCodecs:
    def test_history_request_roundtrip(self):
        e = HistoryRequest(client_id="late", since=12.5, kinds=("chat", "whiteboard"))
        assert decode_event(e.kind, e.to_body()) == e

    def test_repair_request_roundtrip(self):
        e = ImageRepairRequest(client_id="c", image_id="img", packet_indices=(3, 7, 11))
        assert decode_event(e.kind, e.to_body()) == e


class TestHistoryReplay:
    def test_late_joiner_catches_up(self, fw):
        a = fw.add_wired_client("alice")
        b = fw.add_wired_client("bob")
        a.join()
        b.join()
        fw.run_for(0.5)
        a.send_chat("early message 1")
        b.send_chat("early message 2")
        a.draw("s1", (1.0, 2.0))
        fw.run_for(0.5)

        carol = fw.add_wired_client("carol")
        carol.join()
        fw.run_for(0.5)
        assert carol.chat.transcript == []  # missed everything

        carol.request_history()
        fw.run_for(1.0)
        assert "alice: early message 1" in carol.chat.transcript
        assert "bob: early message 2" in carol.chat.transcript
        assert carol.whiteboard.objects() == {"s1": [1.0, 2.0]}

    def test_replay_is_addressed_to_requester_only(self, fw):
        a = fw.add_wired_client("alice")
        b = fw.add_wired_client("bob")
        a.join()
        b.join()
        fw.run_for(0.5)
        a.send_chat("one")
        fw.run_for(0.5)
        bob_lines = len(b.chat.transcript)
        carol = fw.add_wired_client("carol")
        carol.join()
        fw.run_for(0.2)
        carol.request_history()
        fw.run_for(1.0)
        assert len(b.chat.transcript) == bob_lines  # bob saw no duplicates

    def test_kind_filter(self, fw):
        a = fw.add_wired_client("alice")
        a.join()
        b = fw.add_wired_client("bob")
        b.join()
        fw.run_for(0.5)
        a.send_chat("chatline")
        a.draw("s1", (9.0,))
        fw.run_for(0.5)
        carol = fw.add_wired_client("carol")
        carol.join()
        fw.run_for(0.2)
        carol.request_history(kinds=("whiteboard",))
        fw.run_for(1.0)
        assert carol.chat.transcript == []
        assert "s1" in carol.whiteboard.objects()

    def test_since_filter(self, fw):
        a = fw.add_wired_client("alice")
        b = fw.add_wired_client("bob")
        a.join()
        b.join()
        fw.run_for(0.5)
        a.send_chat("old")
        fw.run_for(2.0)
        cutoff = fw.now
        a.send_chat("new")
        fw.run_for(0.5)
        carol = fw.add_wired_client("carol")
        carol.join()
        fw.run_for(0.2)
        carol.request_history(since=cutoff)
        fw.run_for(1.0)
        assert any("new" in l for l in carol.chat.transcript)
        assert not any("old" in l for l in carol.chat.transcript)

    def test_non_serving_peer_stays_silent(self, fw):
        a = fw.add_wired_client("alice")
        a.serve_history = False
        a.join()
        fw.run_for(0.2)
        a.send_chat("unarchived for others")
        fw.run_for(0.5)
        carol = fw.add_wired_client("carol")
        carol.join()
        fw.run_for(0.2)
        carol.request_history()
        fw.run_for(1.0)
        assert carol.chat.transcript == []


class TestImageRepair:
    def test_missing_packets_repaired(self, fw):
        a = fw.add_wired_client("alice")
        b = fw.add_wired_client("bob")
        a.join()
        b.join()
        fw.run_for(0.5)
        img = collaboration_scene(64, 64)
        a.share_image("map", img)
        fw.run_for(2.0)
        view = b.viewer.viewed["map"]
        # simulate loss: drop two mid-stream packets from the assembly
        del view.assembly._packets[5]
        del view.assembly._packets[9]
        assert view.assembly.usable_prefix == 5

        missing = b.request_image_repair("map")
        assert missing == (5, 9)
        fw.run_for(1.0)
        assert view.assembly.usable_prefix == 16

    def test_no_request_when_complete(self, fw):
        a = fw.add_wired_client("alice")
        b = fw.add_wired_client("bob")
        a.join()
        b.join()
        fw.run_for(0.5)
        a.share_image("map", collaboration_scene(64, 64))
        fw.run_for(2.0)
        assert b.request_image_repair("map") == ()

    def test_repair_respects_budget(self, fw):
        a = fw.add_wired_client("alice")
        b = fw.add_wired_client("bob")
        a.join()
        b.join()
        fw.run_for(0.5)
        b.viewer.set_packet_budget(4)
        a.share_image("map", collaboration_scene(64, 64))
        fw.run_for(2.0)
        view = b.viewer.viewed["map"]
        del view.assembly._packets[2]
        missing = b.request_image_repair("map")
        assert missing == (2,)  # only within the 4-packet budget
        fw.run_for(1.0)
        assert view.assembly.usable_prefix == 4

    def test_unknown_image_noop(self, fw):
        b = fw.add_wired_client("bob")
        assert b.request_image_repair("ghost") == ()

    def test_repair_unicast_semantics(self, fw):
        """Only the requester receives the repair packets."""
        a = fw.add_wired_client("alice")
        b = fw.add_wired_client("bob")
        c = fw.add_wired_client("carol")
        for x in (a, b, c):
            x.join()
        fw.run_for(0.5)
        a.share_image("map", collaboration_scene(64, 64))
        fw.run_for(2.0)
        carol_offered = c.viewer.viewed["map"].packets_offered
        view = b.viewer.viewed["map"]
        del view.assembly._packets[3]
        b.request_image_repair("map")
        fw.run_for(1.0)
        assert c.viewer.viewed["map"].packets_offered == carol_offered
