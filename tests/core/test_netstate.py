"""Tests for the network-state interface and switch agent."""

import pytest

from repro.core.framework import CollaborationFramework
from repro.core.netstate import NetworkStateInterface, Probe
from repro.core.policies import default_bandwidth_policy
from repro.hosts.workload import Constant
from repro.network.clock import Scheduler
from repro.network.simnet import Network
from repro.network.udp import DatagramSocket
from repro.snmp.manager import SnmpManager
from repro.snmp.oids import MIB2, TASSL
from repro.snmp.switch_binding import attach_switch_agent


@pytest.fixture
def fw():
    framework = CollaborationFramework("nstest")
    framework.add_wired_client(
        "alice", cpu_workload=Constant(40.0), fault_workload=Constant(35.0)
    )
    framework.switch_agent = attach_switch_agent(framework.network, "lan-switch")
    return framework


class TestSwitchAgent:
    def test_iftable_visible(self, fw):
        mgr = SnmpManager(DatagramSocket(fw.network, "alice"), fw.scheduler)
        n = mgr.get_scalar("lan-switch", MIB2.ifNumber).value
        assert n == 1  # alice's access link
        descr = mgr.get_scalar("lan-switch", MIB2.ifDescr.child(1)).text()
        assert descr == "to-alice"

    def test_ifspeed_in_bits(self, fw):
        mgr = SnmpManager(DatagramSocket(fw.network, "alice"), fw.scheduler)
        speed = mgr.get_scalar("lan-switch", MIB2.ifSpeed.child(1)).value
        link = fw.network.link("alice", "lan-switch")
        assert speed == int(link.bandwidth * 8)

    def test_octet_counters_live(self, fw):
        mgr = SnmpManager(DatagramSocket(fw.network, "alice"), fw.scheduler)
        before = mgr.get_scalar("lan-switch", MIB2.ifOutOctets.child(1)).value
        # the GET itself and its response cross the link; counters move
        after = mgr.get_scalar("lan-switch", MIB2.ifOutOctets.child(1)).value
        assert after > before

    def test_walk_interfaces(self, fw):
        fw.add_wired_client("bob")
        # rebuild the agent to pick up the new link (the MIB's interface
        # table is snapshotted at attach time)
        fw.switch_agent.close()
        attach_switch_agent(fw.network, "lan-switch", read_community="pub2")
        mgr = SnmpManager(
            DatagramSocket(fw.network, "alice"), fw.scheduler, community="pub2"
        )
        # two ifDescr rows now
        out = mgr.walk("lan-switch", MIB2.ifDescr)
        assert len(out) == 2


class TestNetworkStateInterface:
    def test_standard_host_probes(self, fw):
        ns = NetworkStateInterface(fw.network, "alice")
        ns.add_standard_host_probes("alice")
        observed = ns.poll()
        assert observed["cpu_load"] == 40.0
        assert observed["page_faults"] == 35.0
        # regression (UNI003): the TASSL gauge is bytes/s on the wire but
        # the `_bps` observation key promises bits/s — the probe converts
        link = fw.network.link("alice", "lan-switch")
        assert observed["bandwidth_bps"] == pytest.approx(link.bandwidth * 8)
        assert observed["link_latency_ms"] == pytest.approx(0.5)
        assert ns.poll_count == 1
        assert ns.probe_failures == 0

    def test_switch_probe(self, fw):
        ns = NetworkStateInterface(fw.network, "alice")
        ns.add_switch_bandwidth_probe("lan-switch", 1, parameter="path_bw")
        observed = ns.poll()
        link = fw.network.link("alice", "lan-switch")
        # regression (UNI003): MIB-II ifSpeed is already bits/s — no /8
        assert observed["path_bw"] == pytest.approx(link.bandwidth * 8)

    def test_batched_one_get_per_host(self, fw):
        ns = NetworkStateInterface(fw.network, "alice")
        ns.add_standard_host_probes("alice")
        sent_before = ns.manager.requests_sent
        ns.poll()
        assert ns.manager.requests_sent == sent_before + 1  # one batched GET

    def test_dead_agent_skipped_not_fatal(self, fw):
        ns = NetworkStateInterface(fw.network, "alice", timeout=0.05, retries=0)
        ns.add_standard_host_probes("alice")
        ns.add_probe(Probe("alice", TASSL.hostCpuLoad, "ghost", lambda v: 0.0))
        # point one probe at a host with no agent
        fw.network.add_node("silent")
        fw.network.add_link("silent", "lan-switch")
        ns.add_probe(Probe("silent", TASSL.hostCpuLoad, "nope"))
        observed = ns.poll()
        assert "cpu_load" in observed
        assert "nope" not in observed
        assert ns.probe_failures >= 1

    def test_last_observed_retained(self, fw):
        ns = NetworkStateInterface(fw.network, "alice")
        ns.add_standard_host_probes("alice")
        ns.poll()
        assert ns.last_observed["cpu_load"] == 40.0


class TestGracefulDegradation:
    """Stale-state grace and the dark-plane fallback (paper Sec. 5.5)."""

    def build(self, fw, stale_grace=3.0):
        ns = NetworkStateInterface(
            fw.network, "alice", timeout=0.1, retries=0, stale_grace=stale_grace
        )
        ns.add_standard_host_probes("alice")
        return ns

    def test_stale_values_served_within_grace(self, fw):
        ns = self.build(fw)
        assert ns.poll()["cpu_load"] == 40.0
        fw.agents["alice"].crash()
        observed = ns.poll()  # timeout advances the clock ~0.1 s
        assert observed["cpu_load"] == 40.0  # served from cache
        assert "cpu_load" in ns.stale_parameters
        assert ns.stale_served >= 1
        assert ns.is_dark and ns.dark_for() > 0.0
        assert not ns.degraded  # still inside the grace window

    def test_values_drop_and_degraded_past_grace(self, fw):
        ns = self.build(fw, stale_grace=0.5)
        ns.poll()
        fw.agents["alice"].crash()
        ns.poll()
        fw.run_for(1.0)  # let the dark window outgrow the grace
        observed = ns.poll()
        assert "cpu_load" not in observed
        assert ns.degraded

    def test_restart_clears_dark(self, fw):
        ns = self.build(fw)
        ns.poll()
        fw.agents["alice"].crash()
        ns.poll()
        assert ns.is_dark
        fw.agents["alice"].restart()
        observed = ns.poll()
        assert observed["cpu_load"] == 40.0
        assert not ns.is_dark
        assert ns.dark_for() == 0.0
        assert not ns.degraded


class TestDegradedPolicies:
    """The conservative floor applied when the management plane is dark."""

    def test_decide_packets_caps_at_conservative(self):
        from repro.core.policies import default_policy_database

        db = default_policy_database()
        # calm host: normally a generous budget...
        assert db.decide_packets({"cpu_load": 20.0}) > 1
        # ...but capped once degraded
        assert db.decide_packets({"cpu_load": 20.0}, degraded=True) == 1
        # nothing observed at all: None normally, the floor when degraded
        assert db.decide_packets({}) is None
        assert db.decide_packets({}, degraded=True) == 1

    def test_decide_tier_caps_at_conservative(self):
        from repro.core.policies import ModalityTier, default_policy_database

        db = default_policy_database()
        assert db.decide_tier(30.0) > ModalityTier.TEXT_ONLY
        assert db.decide_tier(30.0, degraded=True) == ModalityTier.TEXT_ONLY

    def test_inference_records_fallback_reason(self, fw):
        from repro.core.inference import InferenceEngine
        from repro.core.policies import default_policy_database
        from repro.core.profiles import ClientProfile

        engine = InferenceEngine(default_policy_database())
        decision = engine.infer(
            ClientProfile("c", {"role": "participant"}),
            {"cpu_load": 20.0},
            degraded=True,
        )
        assert decision.packets == 1
        assert any("conservative fallback" in r for r in decision.reasons)


class TestBandwidthPolicy:
    def test_starved_link_cuts_packets(self):
        p = default_bandwidth_policy()
        assert p.decide(512_000) == 1        # 0.5 Mb/s
        assert p.decide(4_000_000) == 4      # 4 Mb/s
        assert p.decide(100_000_000) == 16   # LAN

    def test_client_integration_bandwidth_constrains(self):
        fw = CollaborationFramework("bwtest")
        # a thin access link: 250 kB/s == 2 Mb/s
        alice = fw.add_wired_client(
            "alice",
            cpu_workload=Constant(20.0),
            fault_workload=Constant(10.0),
            link_kwargs={"bandwidth": 250_000.0},
        )
        alice.enable_network_monitoring()
        decision = alice.monitor_and_adapt()
        # host is calm, but the bandwidth policy caps the budget at 2
        assert decision.packets == 2

    def test_fat_link_does_not_constrain(self):
        fw = CollaborationFramework("bwtest2")
        alice = fw.add_wired_client(
            "alice", cpu_workload=Constant(20.0), fault_workload=Constant(10.0)
        )
        alice.enable_network_monitoring()
        assert alice.monitor_and_adapt().packets == 16

    def test_monitoring_and_host_policy_combine(self):
        fw = CollaborationFramework("bwtest3")
        alice = fw.add_wired_client(
            "alice",
            cpu_workload=Constant(20.0),
            fault_workload=Constant(95.0),     # paging: policy says 1
            link_kwargs={"bandwidth": 700_000.0},  # 5.6 Mb/s: bandwidth says 8
        )
        alice.enable_network_monitoring()
        assert alice.monitor_and_adapt().packets == 1  # most constrained wins
