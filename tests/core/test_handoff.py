"""Tests for multi-base-station handoff."""

import pytest

from repro.core.events import ChatEvent
from repro.core.framework import CollaborationFramework
from repro.core.handoff import HandoffManager, Position


@pytest.fixture
def deployment():
    """Two cells 400 m apart, one roaming client near bs-west."""
    fw = CollaborationFramework("roam", objective="handoff test")
    wired = fw.add_wired_client("wired")
    west = fw.add_base_station("bs-west")
    east = fw.add_base_station("bs-east")
    client = fw.add_wireless_client("roamer", west, distance=50.0)
    wired.join()
    fw.run_for(0.2)

    hm = HandoffManager(fw.network, hysteresis_db=3.0)
    hm.add_station(west, Position(0.0, 0.0))
    hm.add_station(east, Position(400.0, 0.0))
    hm.add_client(client, Position(50.0, 0.0), serving_bs="bs-west")
    return fw, wired, west, east, client, hm


class TestGeometry:
    def test_position_distance(self):
        assert Position(0, 0).distance_to(Position(3, 4)) == 5.0

    def test_near_field_clamp(self):
        assert Position(0, 0).distance_to(Position(0.1, 0)) == 1.0

    def test_duplicate_station_rejected(self, deployment):
        fw, _, west, _, _, hm = deployment
        with pytest.raises(ValueError):
            hm.add_station(west, Position(1, 1))

    def test_unknown_serving_bs_rejected(self, deployment):
        fw, _, _, _, client, hm = deployment
        with pytest.raises(ValueError):
            hm.add_client(client, Position(0, 0), serving_bs="bs-nowhere")


class TestEvaluation:
    def test_sir_table_shape(self, deployment):
        _, _, _, _, _, hm = deployment
        table = hm.evaluate()
        assert set(table) == {"roamer"}
        assert set(table["roamer"]) == {"bs-east", "bs-west"}

    def test_nearer_station_stronger(self, deployment):
        _, _, _, _, _, hm = deployment
        table = hm.evaluate()
        assert table["roamer"]["bs-west"] > table["roamer"]["bs-east"]

    def test_move_syncs_serving_attachment(self, deployment):
        _, _, west, _, client, hm = deployment
        hm.move_client("roamer", Position(120.0, 0.0))
        assert west.attachments["roamer"].distance == pytest.approx(120.0)
        assert client.distance == pytest.approx(120.0)


class TestHandoff:
    def test_no_handoff_when_serving_is_best(self, deployment):
        _, _, _, _, _, hm = deployment
        assert hm.step() == []
        assert hm.serving_station("roamer") == "bs-west"

    def test_handoff_when_crossing_cells(self, deployment):
        fw, _, west, east, client, hm = deployment
        hm.move_client("roamer", Position(370.0, 0.0))  # deep in east cell
        events = hm.step()
        assert len(events) == 1
        ev = events[0]
        assert (ev.from_bs, ev.to_bs) == ("bs-west", "bs-east")
        assert ev.to_sir_db > ev.from_sir_db + 3.0
        # registries migrated
        assert "roamer" not in west.attachments
        assert east.attachments["roamer"].distance == pytest.approx(30.0)
        # radio link rewired
        fw.network.link("roamer", "bs-east")
        with pytest.raises(Exception):
            fw.network.link("roamer", "bs-west")
        # client control plane re-pointed
        assert client.bs_address == east.wireless_address

    def test_hysteresis_prevents_ping_pong(self, deployment):
        _, _, _, _, _, hm = deployment
        # midpoint: east is equal (or marginally different) — no handoff
        hm.move_client("roamer", Position(200.0, 0.0))
        assert hm.step() == []
        assert hm.serving_station("roamer") == "bs-west"

    def test_traffic_flows_after_handoff(self, deployment):
        fw, wired, _, east, client, hm = deployment
        hm.move_client("roamer", Position(370.0, 0.0))
        hm.step()
        east.evaluate_qos()
        client.send_event(ChatEvent(author="roamer", text="handed off ok"))
        fw.run_for(1.0)
        assert "roamer: handed off ok" in wired.chat.transcript

    def test_periodic_loop_executes_handoffs(self, deployment):
        fw, _, _, _, _, hm = deployment
        hm.start_loop(interval=0.5)
        hm.move_client("roamer", Position(390.0, 0.0))
        fw.run_for(1.0)
        assert hm.events and hm.events[0].to_bs == "bs-east"

    def test_battery_carried_across_handoff(self, deployment):
        fw, _, west, east, client, hm = deployment
        west.update_attachment("roamer", battery=42.0)
        hm.move_client("roamer", Position(370.0, 0.0))
        hm.step()
        assert east.attachments["roamer"].battery == pytest.approx(42.0)
