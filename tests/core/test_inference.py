"""Tests for the inference engine."""

import pytest

from repro.core.contracts import Constraint, QoSContract
from repro.core.inference import InferenceEngine
from repro.core.policies import ModalityTier, default_policy_database
from repro.core.profiles import ClientProfile
from repro.media.transformers import Modality


@pytest.fixture
def engine():
    return InferenceEngine(default_policy_database())


@pytest.fixture
def profile():
    return ClientProfile("c", {"role": "participant"})


class TestPacketDecision:
    def test_no_observation_full_budget(self, engine, profile):
        d = engine.infer(profile, {})
        assert d.packets == 16
        assert d.modality is Modality.IMAGE

    def test_page_fault_policy_applied(self, engine, profile):
        assert engine.infer(profile, {"page_faults": 30}).packets == 16
        assert engine.infer(profile, {"page_faults": 60}).packets == 4
        assert engine.infer(profile, {"page_faults": 100}).packets == 1

    def test_cpu_policy_applied(self, engine, profile):
        assert engine.infer(profile, {"cpu_load": 100}).packets == 0

    def test_most_constrained_wins(self, engine, profile):
        d = engine.infer(profile, {"page_faults": 30, "cpu_load": 90})
        assert d.packets == 1

    def test_packets_snap_to_powers_of_two(self, profile):
        from repro.core.policies import PolicyDatabase, StepPolicy

        db = PolicyDatabase()
        db.add_step("odd", StepPolicy("x", "packets", [(10, 13)], floor=5))
        engine = InferenceEngine(db)
        assert engine.infer(profile, {"x": 5}).packets == 8   # 13 -> 8
        assert engine.infer(profile, {"x": 50}).packets == 4  # 5 -> 4

    def test_max_packets_ceiling(self, profile):
        engine = InferenceEngine(default_policy_database(), max_packets=8)
        assert engine.infer(profile, {"page_faults": 30}).packets == 8

    def test_decision_counter(self, engine, profile):
        engine.infer(profile, {})
        engine.infer(profile, {})
        assert engine.decisions_made == 2

    def test_reasons_populated(self, engine, profile):
        d = engine.infer(profile, {"page_faults": 70})
        assert any("policy packet budget" in r for r in d.reasons)


class TestWirelessTier:
    def test_full_tier_keeps_packets(self, engine, profile):
        d = engine.infer(profile, {"sir_db": 10.0})
        assert d.tier is ModalityTier.FULL_IMAGE
        assert d.packets == 16

    def test_sketch_tier_gates_image_packets(self, engine, profile):
        d = engine.infer(profile, {"sir_db": 2.0})
        assert d.tier is ModalityTier.TEXT_AND_SKETCH
        assert d.packets == 0
        assert d.modality is Modality.SKETCH
        assert "image-to-sketch" in d.transforms

    def test_text_tier(self, engine, profile):
        d = engine.infer(profile, {"sir_db": -3.0})
        assert d.tier is ModalityTier.TEXT_ONLY
        assert d.modality is Modality.TEXT
        assert "image-to-text" in d.transforms

    def test_dead_channel(self, engine, profile):
        d = engine.infer(profile, {"sir_db": -30.0})
        assert d.tier is ModalityTier.NOTHING
        assert d.packets == 0


class TestModalityPreference:
    def test_profile_text_preference(self, engine):
        p = ClientProfile("c", {"modality": "text"})
        d = engine.infer(p, {})
        assert d.modality is Modality.TEXT
        assert "image-to-text" in d.transforms

    def test_profile_speech_preference_chains(self, engine):
        p = ClientProfile("c", {"modality": "speech"})
        d = engine.infer(p, {})
        assert d.modality is Modality.SPEECH
        assert d.transforms == ("image-to-text", "text-to-speech")

    def test_unknown_preference_falls_back_to_image(self, engine):
        p = ClientProfile("c", {"modality": "hologram"})
        assert engine.infer(p, {}).modality is Modality.IMAGE


class TestContractEnforcement:
    def test_contract_floor_clamps(self, profile):
        contract = QoSContract("floor", [Constraint("packets", minimum=2)])
        engine = InferenceEngine(default_policy_database(), contract=contract)
        d = engine.infer(profile, {"page_faults": 100})  # policy says 1
        assert d.packets == 2

    def test_unsatisfiable_contract_reports_violation(self, profile):
        contract = QoSContract("strict", [Constraint("cpu_load", maximum=50)])
        engine = InferenceEngine(default_policy_database(), contract=contract)
        d = engine.infer(profile, {"cpu_load": 95})
        assert d.degraded
        assert d.violations[0].observed == 95

    def test_satisfied_contract_not_degraded(self, profile):
        contract = QoSContract("ok", [Constraint("packets", minimum=1)])
        engine = InferenceEngine(default_policy_database(), contract=contract)
        d = engine.infer(profile, {"page_faults": 40})
        assert not d.degraded
