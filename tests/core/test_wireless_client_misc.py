"""Additional wireless-client behaviour tests."""

import pytest

from repro.core.events import ChatEvent
from repro.core.framework import CollaborationFramework


@pytest.fixture
def cell():
    fw = CollaborationFramework("wcm")
    wired = fw.add_wired_client("wired")
    bs = fw.add_base_station("bs")
    w = fw.add_wireless_client("w", bs, distance=50.0, tx_power=1.0)
    wired.join()
    fw.run_for(0.2)
    return fw, wired, bs, w


class TestChannelReporting:
    def test_move_validation(self, cell):
        _, _, _, w = cell
        with pytest.raises(ValueError):
            w.move_to(0.0)
        with pytest.raises(ValueError):
            w.move_to(-5.0)

    def test_power_validation(self, cell):
        _, _, _, w = cell
        with pytest.raises(ValueError):
            w.set_power(0.0)

    def test_battery_drains_with_sends(self, cell):
        fw, _, _, w = cell
        start = w.battery
        for _ in range(20):
            w.send_event(ChatEvent(author="w", text="ping"))
        assert w.battery < start
        assert w.battery == pytest.approx(start - 20 * 0.05 * w.tx_power)

    def test_battery_never_negative(self, cell):
        fw, _, _, w = cell
        w.battery = 0.01
        for _ in range(10):
            w.send_event(ChatEvent(author="w", text="x"))
        assert w.battery == 0.0

    def test_battery_reported_to_bs(self, cell):
        fw, _, bs, w = cell
        w.battery = 42.0
        w.report_channel_state()
        fw.run_for(0.5)
        assert bs.attachments["w"].battery == pytest.approx(42.0)

    def test_modality_counts_shape(self, cell):
        _, _, _, w = cell
        counts = w.modality_counts()
        assert set(counts) == {"text", "sketch", "image_packets", "announces"}


class TestUplinkEventOrdering:
    def test_multiple_chats_keep_order(self, cell):
        fw, wired, bs, w = cell
        for i in range(5):
            w.send_event(ChatEvent(author="w", text=f"msg {i}"))
        fw.run_for(2.0)
        got = [l for l in wired.chat.transcript if l.startswith("w:")]
        assert got == [f"w: msg {i}" for i in range(5)]

    def test_two_wireless_clients_relay_through_bs(self, cell):
        fw, wired, bs, w = cell
        w2 = fw.add_wireless_client("w2", bs, distance=55.0)
        bs.evaluate_qos()
        w.send_event(ChatEvent(author="w", text="to everyone"))
        fw.run_for(2.0)
        kinds = [type(e).__name__ for _, e in w2.received_events]
        assert "ChatEvent" in kinds
        assert "w: to everyone" in wired.chat.transcript


class TestHarnessMisc:
    def test_experiment_len(self):
        from repro.experiments.harness import ExperimentResult

        r = ExperimentResult("X", "t", columns=("a",))
        assert len(r) == 0
        r.add_row(a=1)
        assert len(r) == 1
