"""Tests for QoS contracts and the policy database."""

import pytest
from hypothesis import given, strategies as st

from repro.core.contracts import Constraint, ContractError, QoSContract
from repro.core.policies import (
    ModalityTier,
    PolicyDatabase,
    PolicyError,
    SirTierPolicy,
    StepPolicy,
    default_cpu_load_policy,
    default_page_fault_policy,
    default_policy_database,
)


class TestConstraint:
    def test_range_check(self):
        c = Constraint("packets", minimum=1, maximum=16)
        assert c.satisfied(8)
        assert c.satisfied(1) and c.satisfied(16)
        assert not c.satisfied(0)
        assert not c.satisfied(17)

    def test_one_sided(self):
        assert Constraint("x", minimum=5).satisfied(1e9)
        assert Constraint("x", maximum=5).satisfied(-1e9)

    def test_clamp(self):
        c = Constraint("x", minimum=2, maximum=8)
        assert c.clamp(0) == 2
        assert c.clamp(10) == 8
        assert c.clamp(5) == 5

    def test_invalid(self):
        with pytest.raises(ContractError):
            Constraint("x")
        with pytest.raises(ContractError):
            Constraint("x", minimum=5, maximum=2)


class TestContract:
    def test_violations_reported(self):
        contract = QoSContract("viewer", [
            Constraint("packets", minimum=2),
            Constraint("latency_ms", maximum=100),
        ])
        v = contract.violations({"packets": 1, "latency_ms": 500})
        assert len(v) == 2
        assert {x.constraint.parameter for x in v} == {"packets", "latency_ms"}

    def test_missing_parameters_skipped(self):
        contract = QoSContract("c", [Constraint("packets", minimum=2)])
        assert contract.violations({"other": 0}) == []

    def test_clamp_unbounded_passthrough(self):
        contract = QoSContract("c")
        assert contract.clamp("anything", 42.0) == 42.0

    def test_add_replaces(self):
        contract = QoSContract("c", [Constraint("x", minimum=1)])
        contract.add(Constraint("x", minimum=5))
        assert contract.violations({"x": 3})

    def test_violation_str(self):
        contract = QoSContract("c", [Constraint("x", minimum=1, maximum=2)])
        (v,) = contract.violations({"x": 9})
        assert "x=9" in str(v)


class TestStepPolicy:
    def test_band_selection(self):
        p = StepPolicy("pf", "packets", [(44, 16), (58, 8), (72, 4), (86, 2)], floor=1)
        assert p.decide(30) == 16
        assert p.decide(44) == 8   # bound is exclusive upper edge
        assert p.decide(57.9) == 8
        assert p.decide(100) == 1

    def test_validation(self):
        with pytest.raises(PolicyError):
            StepPolicy("x", "y", [], floor=0)
        with pytest.raises(PolicyError):
            StepPolicy("x", "y", [(10, 1), (5, 2)], floor=0)
        with pytest.raises(PolicyError):
            StepPolicy("x", "y", [(10, 1), (10, 2)], floor=0)

    @given(st.floats(min_value=0, max_value=200))
    def test_monotone_non_increasing(self, x):
        p = default_page_fault_policy()
        assert p.decide(x) >= p.decide(x + 10)

    def test_paper_page_fault_anchors(self):
        p = default_page_fault_policy()
        assert p.decide(30) == 16
        assert p.decide(100) == 1
        values = {p.decide(x) for x in range(30, 101)}
        assert values == {16, 8, 4, 2, 1}  # powers of two, all visited

    def test_paper_cpu_anchors(self):
        p = default_cpu_load_policy()
        assert p.decide(30) == 16
        assert p.decide(100) == 0


class TestSirTierPolicy:
    def test_default_thresholds(self):
        p = SirTierPolicy()
        assert p.tier(10.0) is ModalityTier.FULL_IMAGE
        assert p.tier(4.0) is ModalityTier.FULL_IMAGE  # paper's 4 dB boundary
        assert p.tier(2.0) is ModalityTier.TEXT_AND_SKETCH
        assert p.tier(-3.0) is ModalityTier.TEXT_ONLY
        assert p.tier(-20.0) is ModalityTier.NOTHING

    def test_threshold_ordering_enforced(self):
        with pytest.raises(PolicyError):
            SirTierPolicy(image_db=1.0, sketch_db=5.0)

    def test_tier_is_monotone(self):
        p = SirTierPolicy()
        sirs = [-20, -6, 0, 4, 20]
        tiers = [p.tier(s) for s in sirs]
        assert tiers == sorted(tiers)


class TestPolicyDatabase:
    def test_most_constrained_wins(self):
        db = default_policy_database()
        packets = db.decide_packets({"page_faults": 30, "cpu_load": 90})
        assert packets == 1  # cpu says 1, pf says 16 -> min

    def test_no_observation_returns_none(self):
        db = default_policy_database()
        assert db.decide_packets({"unrelated": 5}) is None

    def test_partial_observation(self):
        db = default_policy_database()
        assert db.decide_packets({"page_faults": 60}) == 4

    def test_add_remove_step(self):
        db = PolicyDatabase()
        db.add_step("mem", StepPolicy("free_mem", "packets", [(1000, 2)], floor=16))
        assert db.decide_packets({"free_mem": 500}) == 2
        db.remove_step("mem")
        assert db.decide_packets({"free_mem": 500}) is None

    def test_sir_policy_swap(self):
        db = PolicyDatabase()
        db.set_sir_policy(SirTierPolicy(image_db=10.0, sketch_db=5.0, text_db=0.0))
        assert db.decide_tier(7.0) is ModalityTier.TEXT_AND_SKETCH
