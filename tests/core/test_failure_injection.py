"""Failure injection: partitions, dead agents, crashed peers.

The framework must degrade, not crash: adaptation falls back to the last
known state, the RTP layer abandons torn transfers, sessions survive
peers vanishing.
"""

import pytest

from repro.core.framework import CollaborationFramework
from repro.hosts.workload import Constant, Trace
from repro.media.images import collaboration_scene
from repro.snmp.errors import SnmpTimeout


class TestManagementPlaneFailure:
    def test_dead_agent_falls_back_to_last_observation(self):
        fw = CollaborationFramework("fi-1")
        a = fw.add_wired_client("alice", fault_workload=Constant(95.0))
        a.snmp.timeout = 0.05
        a.snmp.retries = 0
        d1 = a.monitor_and_adapt()
        assert d1.packets == 1
        # kill the agent
        fw.agents["alice"].close()
        d2 = a.monitor_and_adapt()
        assert d2.packets == 1  # stale-but-safe decision
        assert a.snmp_failures == 1

    def test_no_prior_observation_full_budget(self):
        fw = CollaborationFramework("fi-2")
        a = fw.add_wired_client("alice")
        a.snmp.timeout = 0.05
        a.snmp.retries = 0
        fw.agents["alice"].close()
        d = a.monitor_and_adapt()
        assert d.packets == 16  # no policy input at all
        assert a.snmp_failures == 1

    def test_agent_recovery_resumes_live_state(self):
        fw = CollaborationFramework("fi-3")
        a = fw.add_wired_client("alice", fault_workload=Trace([30, 100]))
        a.snmp.timeout = 0.05
        a.snmp.retries = 0
        assert a.monitor_and_adapt().packets == 16
        agent = fw.agents["alice"]
        sock = agent._sock
        node = fw.network.node("alice")
        node.unbind(161)  # partition the agent port
        fw.hosts["alice"].advance_to_tick(1)
        assert a.monitor_and_adapt().packets == 16  # stale
        node.bind(161, sock._deliver)  # heal
        assert a.monitor_and_adapt().packets == 1  # live again


class TestNetworkPartition:
    def test_partitioned_peer_misses_traffic_then_catches_up(self):
        fw = CollaborationFramework("fi-4")
        a = fw.add_wired_client("alice")
        b = fw.add_wired_client("bob")
        a.join()
        b.join()
        fw.run_for(0.3)
        fw.network.remove_link("bob", "lan-switch")
        a.send_chat("during partition")
        fw.run_for(1.0)
        assert b.chat.transcript == []
        fw.network.add_link("bob", "lan-switch", bandwidth=12_500_000.0, latency=0.0005)
        fw.run_for(0.5)
        b.request_history()
        fw.run_for(1.0)
        assert "alice: during partition" in b.chat.transcript

    def test_image_transfer_across_flapping_link(self):
        fw = CollaborationFramework("fi-5", seed=11)
        a = fw.add_wired_client("alice")
        b = fw.add_wired_client("bob", link_kwargs={"loss": 0.3})
        a.join()
        b.join()
        fw.run_for(0.3)
        img = collaboration_scene(64, 64)
        a.share_image("map", img)
        fw.run_for(3.0)
        view = b.viewer.viewed.get("map")
        if view is None or view.assembly.usable_prefix < 16:
            # repair loop: NACK until complete (bounded)
            for _ in range(10):
                missing = b.request_image_repair("map")
                fw.run_for(1.0)
                if not missing:
                    break
                if b.viewer.viewed["map"].assembly.usable_prefix == 16:
                    break
        assert "map" in b.viewer.viewed
        assert b.viewer.viewed["map"].assembly.usable_prefix == 16


class TestPeerCrash:
    def test_session_survives_peer_vanishing(self):
        fw = CollaborationFramework("fi-6")
        a = fw.add_wired_client("alice")
        b = fw.add_wired_client("bob")
        c = fw.add_wired_client("carol")
        for x in (a, b, c):
            x.join()
        fw.run_for(0.3)
        # carol crashes without a LeaveEvent
        c.close()
        a.send_chat("anyone there?")
        fw.run_for(1.0)
        assert "alice: anyone there?" in b.chat.transcript
        # membership still lists carol (no failure detector — honest)
        assert "carol" in a.membership.members

    def test_close_idempotent_and_releases_ports(self):
        fw = CollaborationFramework("fi-7")
        a = fw.add_wired_client("alice")
        a.enable_trap_listener()
        a.close()
        a.close()
        # port 162 reusable after close
        from repro.network.udp import DatagramSocket

        s = DatagramSocket(fw.network, "alice")
        s.bind(162)

    def test_base_station_detach_stops_forwarding(self):
        fw = CollaborationFramework("fi-8")
        wired = fw.add_wired_client("wired")
        bs = fw.add_base_station("bs")
        w = fw.add_wireless_client("w", bs, distance=40.0)
        wired.join()
        bs.evaluate_qos()
        bs.detach("w")  # radio association lost
        wired.send_chat("hello?")
        fw.run_for(1.0)
        assert w.received_events == []
