"""Tests for the collaboration event model and its codecs."""

import pytest
from hypothesis import given, strategies as st

from repro.core.events import (
    ChatEvent,
    EventError,
    ImagePacketEvent,
    ImageShareAnnounce,
    JoinEvent,
    LeaveEvent,
    PowerControlRequest,
    ProfileUpdateEvent,
    SketchShareEvent,
    SpeechShareEvent,
    TextShareEvent,
    WhiteboardEvent,
    decode_event,
)

ALL_EVENTS = [
    ChatEvent(author="a", text="héllo"),
    WhiteboardEvent(object_id="s1", op="draw", points=(1.0, 2.0, 3.5, -4.25), author="b"),
    WhiteboardEvent(object_id="s2", op="erase", author="c"),
    ImageShareAnnounce("img", 64, 48, 3, 16, 12345, "a scene", 4, (7, 6, 5)),
    ImagePacketEvent("img", 3, 16, b"\x00\x01payload\xff"),
    TextShareEvent(ref_id="img", text="description"),
    SketchShareEvent(ref_id="img", sketch_h=32, sketch_w=32, encoded=b"Rdata"),
    SpeechShareEvent(ref_id="img", sample_rate=8000, samples_u8=b"\x80" * 100),
    JoinEvent(client_id="c", objective="triage"),
    LeaveEvent(client_id="c"),
    ProfileUpdateEvent(client_id="c", changes=(("modality", "text"), ("battery", "20"))),
    PowerControlRequest(client_id="c", new_power=0.5, reason="sir high"),
]


class TestRoundtrip:
    @pytest.mark.parametrize("event", ALL_EVENTS, ids=lambda e: type(e).__name__)
    def test_body_roundtrip(self, event):
        assert decode_event(event.kind, event.to_body()) == event

    def test_unknown_kind(self):
        with pytest.raises(EventError):
            decode_event("no-such-kind", b"")

    def test_truncated_body(self):
        body = ChatEvent(author="abc", text="def").to_body()
        with pytest.raises(EventError):
            decode_event("chat", body[:3])


class TestHeaders:
    def test_chat_headers(self):
        h = ChatEvent(author="a", text="hi").headers()
        assert h["modality"] == "text"

    def test_image_share_headers(self):
        e = ImageShareAnnounce("img", 64, 64, 1, 16, 999, "d", 5, (7,))
        h = e.headers()
        assert h == {
            "modality": "image",
            "image_id": "img",
            "n_packets": 16,
            "size_bits": 999,
        }

    def test_sketch_headers_expose_size(self):
        e = SketchShareEvent(ref_id="x", encoded=b"12345")
        assert e.headers()["size_bytes"] == 5

    def test_whiteboard_headers(self):
        e = WhiteboardEvent(object_id="o", op="move")
        assert e.headers()["op"] == "move"


class TestPropertyRoundtrips:
    @given(st.text(max_size=50), st.text(max_size=500))
    def test_chat_property(self, author, text):
        e = ChatEvent(author=author, text=text)
        assert decode_event("chat", e.to_body()) == e

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              width=64), max_size=20))
    def test_whiteboard_points_property(self, points):
        e = WhiteboardEvent(object_id="o", points=tuple(points))
        assert decode_event("whiteboard", e.to_body()) == e

    @given(st.binary(max_size=1000), st.integers(0, 65535))
    def test_image_packet_property(self, payload, idx):
        e = ImagePacketEvent("id", idx, 65536, payload)
        assert decode_event("image-packet", e.to_body()) == e

    @given(st.lists(st.tuples(st.text(max_size=10), st.text(max_size=10)), max_size=6))
    def test_profile_update_property(self, changes):
        e = ProfileUpdateEvent(client_id="c", changes=tuple(changes))
        assert decode_event("profile-update", e.to_body()) == e
