"""Decode-safety hardening suite.

Every hand-rolled decoder in the repo must turn malformed wire bytes —
truncations, bit flips, invalid UTF-8, hostile nesting — into its
*declared* error class (``EventError``, ``ImagePacketError``,
``WireError``, ``BerError``), never an uncaught ``IndexError`` /
``struct.error`` / ``UnicodeDecodeError`` / ``RecursionError``; and the
dispatch layers must count those failures and keep running.
"""

import random
import struct

import pytest

from repro.analysis.wirefuzz import default_registry
from repro.core.events import ChatEvent, EventError, decode_event
from repro.core.framework import CollaborationFramework
from repro.core.matching import Decision, MatchResult
from repro.core.selectors import Selector
from repro.media.progressive import ImagePacket, ImagePacketError
from repro.messaging.broker import Delivery
from repro.messaging.message import MessageId, SemanticMessage
from repro.messaging.serialization import WireError, decode_message, encode_message
from repro.snmp.ber import BerError, Integer, Sequence, decode, encode

EVENT_PAIRS = [p for p in default_registry() if p.name.startswith("events.")]


class TestEventBodies:
    @pytest.mark.parametrize("pair", EVENT_PAIRS, ids=[p.name for p in EVENT_PAIRS])
    def test_truncation_at_every_offset_raises_event_error(self, pair):
        body = pair.encode(pair.sample(random.Random(7)))
        for cut in range(len(body)):
            try:
                pair.decode(body[:cut])
            except EventError:
                pass  # the declared failure mode

    def test_invalid_utf8_raises_event_error(self):
        body = ChatEvent(author="a", text="é").to_body()
        assert body.endswith(b"\xc3\xa9")
        mangled = body[:-2] + b"\xff\xff"  # same length, invalid UTF-8
        with pytest.raises(EventError):
            decode_event("chat", mangled)

    def test_unknown_kind_raises_event_error(self):
        with pytest.raises(EventError):
            decode_event("no-such-kind", b"")


class TestImagePackets:
    def test_truncation_at_every_offset_raises_image_packet_error(self):
        pkt = ImagePacket(index=1, total=4, chunks=((b"abcdef", 48), (b"xyz", 24)))
        raw = pkt.to_bytes()
        for cut in range(len(raw)):
            try:
                ImagePacket.from_bytes(raw[:cut])
            except ImagePacketError:
                pass

    def test_oversized_chunk_length_raises(self):
        pkt = ImagePacket(index=0, total=1, chunks=((b"ab", 16),))
        raw = bytearray(pkt.to_bytes())
        # chunk header is (bits u32, len u32) at offset 5; the length
        # field at offset 9 claims more bytes than exist
        struct.pack_into(">I", raw, 9, 10_000)
        with pytest.raises(ImagePacketError):
            ImagePacket.from_bytes(bytes(raw))


class TestSemanticMessages:
    @staticmethod
    def _message(selector_text="load < 50"):
        return SemanticMessage(
            MessageId("ali", 1),
            Selector(selector_text),
            {"k": "v"},
            body=b"hello",
            kind="chat",
            sender="ali",
        )

    def test_unparseable_selector_raises_wire_error(self):
        raw = encode_message(self._message())
        bad = raw.replace(b"load < 50", b"load <<< 0")
        with pytest.raises(WireError):
            decode_message(bad)

    def test_truncation_at_every_offset_raises_wire_error(self):
        raw = encode_message(self._message())
        for cut in range(len(raw)):
            try:
                decode_message(raw[:cut])
            except WireError:
                pass


def _ber_len(n: int) -> bytes:
    if n < 0x80:
        return bytes([n])
    body = n.to_bytes((n.bit_length() + 7) // 8, "big")
    return bytes([0x80 | len(body)]) + body


class TestBer:
    def test_hostile_nesting_raises_ber_error_not_recursion(self):
        blob = encode(Integer(1))
        for _ in range(200):  # 200 nested SEQUENCEs; the depth cap is 32
            blob = b"\x30" + _ber_len(len(blob)) + blob
        with pytest.raises(BerError):
            decode(blob)

    def test_legitimate_nesting_still_decodes(self):
        value = Sequence((Integer(1), Sequence((Integer(2),))))
        decoded, used = decode(encode(value))
        assert decoded == value and used > 0


class TestDispatchCounters:
    """A malformed delivery increments the counter; the loop keeps going."""

    @pytest.fixture
    def client(self):
        fw = CollaborationFramework("t", objective="decode hardening", seed=0)
        client = fw.add_wired_client("alice")
        client.join()
        fw.run_for(0.5)
        return client

    @staticmethod
    def _delivery(body):
        msg = SemanticMessage(
            MessageId("mallory", 9),
            Selector("true"),
            {},
            body=body,
            kind="chat",
            sender="mallory",
        )
        return Delivery(message=msg, result=MatchResult(decision=Decision.ACCEPT))

    def test_client_counts_and_survives(self, client):
        before = client.endpoint.decode_failures
        client._on_delivery(self._delivery(b"\x00"))
        assert client.endpoint.decode_failures == before + 1
        # the dispatch loop is still alive: a well-formed event lands
        ok = ChatEvent(author="bob", text="still here")
        client._on_delivery(self._delivery(ok.to_body()))
        assert any(
            isinstance(e, ChatEvent) and e.text == "still here"
            for _, e in client.events_received
        )
