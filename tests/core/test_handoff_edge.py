"""Handoff edge cases: empty registries, single cell, many clients."""

import pytest

from repro.core.framework import CollaborationFramework
from repro.core.handoff import HandoffManager, Position


class TestEdges:
    def test_empty_manager_evaluates_empty(self):
        fw = CollaborationFramework("he")
        hm = HandoffManager(fw.network)
        assert hm.evaluate() == {}
        assert hm.step() == []

    def test_single_station_never_hands_off(self):
        fw = CollaborationFramework("he2")
        bs = fw.add_base_station("bs")
        w = fw.add_wireless_client("w", bs, distance=50.0)
        hm = HandoffManager(fw.network)
        hm.add_station(bs, Position(0, 0))
        hm.add_client(w, Position(50, 0), "bs")
        hm.move_client("w", Position(500, 0))
        assert hm.step() == []
        assert hm.serving_station("w") == "bs"

    def test_negative_hysteresis_rejected(self):
        fw = CollaborationFramework("he3")
        with pytest.raises(ValueError):
            HandoffManager(fw.network, hysteresis_db=-1.0)

    def test_two_clients_interfere_across_cells(self):
        """Handoff evaluation accounts for inter-cell interference."""
        fw = CollaborationFramework("he4")
        west = fw.add_base_station("bs-west")
        east = fw.add_base_station("bs-east")
        wa = fw.add_wireless_client("wa", west, distance=50.0)
        wb = fw.add_wireless_client("wb", east, distance=50.0)
        hm = HandoffManager(fw.network)
        hm.add_station(west, Position(0, 0))
        hm.add_station(east, Position(400, 0))
        hm.add_client(wa, Position(50, 0), "bs-west")
        hm.add_client(wb, Position(350, 0), "bs-east")
        table = hm.evaluate()
        # each client strong at its own cell, weak at the other's
        assert table["wa"]["bs-west"] > table["wa"]["bs-east"]
        assert table["wb"]["bs-east"] > table["wb"]["bs-west"]
        # solo-cell SIR would be pure SNR; the other client's signal is
        # interference here, so the table value sits strictly below it
        import numpy as np

        solo_snr_db = 10 * np.log10(1.0 * west.pathloss.gain(50.0) / west.noise.sigma2)
        assert table["wa"]["bs-west"] < solo_snr_db

    def test_unknown_client_raises(self):
        fw = CollaborationFramework("he5")
        hm = HandoffManager(fw.network)
        with pytest.raises(KeyError):
            hm.move_client("ghost", Position(0, 0))
        with pytest.raises(KeyError):
            hm.serving_station("ghost")

    def test_handoff_back_and_forth_requires_margin(self):
        """After handing off east, coming back needs the margin again."""
        fw = CollaborationFramework("he6")
        west = fw.add_base_station("bs-west")
        east = fw.add_base_station("bs-east")
        w = fw.add_wireless_client("w", west, distance=30.0)
        hm = HandoffManager(fw.network, hysteresis_db=3.0)
        hm.add_station(west, Position(0, 0))
        hm.add_station(east, Position(400, 0))
        hm.add_client(w, Position(30, 0), "bs-west")
        hm.move_client("w", Position(380, 0))
        assert len(hm.step()) == 1
        # drift just past the midpoint toward west: inside the margin
        hm.move_client("w", Position(195, 0))
        assert hm.step() == []
        assert hm.serving_station("w") == "bs-east"
        # go clearly west: hands back
        hm.move_client("w", Position(40, 0))
        assert len(hm.step()) == 1
        assert hm.serving_station("w") == "bs-west"
        assert len(hm.events) == 2
