"""Coverage for smaller surfaces: RTCP at the endpoint, local sketch,
QoS loop with power control, switch octet probes, telemetry + netstate."""

import pytest

from repro.core.framework import CollaborationFramework
from repro.core.netstate import NetworkStateInterface
from repro.hosts.workload import Constant
from repro.media.images import collaboration_scene
from repro.snmp.switch_binding import attach_switch_agent


class TestEndpointRtcp:
    def test_reception_report_tracks_peer(self):
        fw = CollaborationFramework("rtcp")
        a = fw.add_wired_client("alice")
        b = fw.add_wired_client("bob")
        a.join()
        b.join()
        fw.run_for(0.3)
        a.share_image("img", collaboration_scene(64, 64))
        fw.run_for(2.0)
        report = b.endpoint.reception_report(a.endpoint.ssrc)
        assert report.messages_completed >= 17  # announce + 16 packets
        assert report.cumulative_lost == 0
        assert report.fraction_lost == 0.0

    def test_report_reflects_loss(self):
        fw = CollaborationFramework("rtcp2", seed=6)
        a = fw.add_wired_client("alice")
        b = fw.add_wired_client("bob", link_kwargs={"loss": 0.4})
        a.join()
        b.join()
        fw.run_for(0.3)
        for i in range(30):
            a.send_chat(f"line {i}")
        fw.run_for(3.0)
        report = b.endpoint.reception_report(a.endpoint.ssrc)
        assert report.cumulative_lost > 0
        assert 0.0 < report.fraction_lost < 1.0


class TestLocalSketch:
    def test_sketch_from_reconstruction(self):
        fw = CollaborationFramework("sk")
        a = fw.add_wired_client("alice")
        b = fw.add_wired_client("bob")
        a.join()
        b.join()
        fw.run_for(0.3)
        a.share_image("img", collaboration_scene(128, 128))
        fw.run_for(2.0)
        sketch = b.local_sketch("img")
        assert sketch.mask.any()
        assert sketch.n_bytes < 500


class TestQosLoopPowerControl:
    def test_loop_issues_power_requests(self):
        fw = CollaborationFramework("pcl")
        bs = fw.add_base_station("bs")
        w = fw.add_wireless_client("hot", bs, distance=25.0, tx_power=4.0)
        bs.start_qos_loop(interval=0.5, power_control=True)
        fw.run_for(2.0)
        assert bs.power_requests_sent
        assert w.tx_power < 4.0


class TestSwitchOctetProbes:
    def test_octet_probes_observe_traffic(self):
        fw = CollaborationFramework("oct")
        a = fw.add_wired_client(
            "alice", cpu_workload=Constant(10.0), fault_workload=Constant(5.0)
        )
        b = fw.add_wired_client("bob")
        attach_switch_agent(fw.network, "lan-switch")
        ns = NetworkStateInterface(fw.network, "alice")
        ns.add_switch_octet_probes("lan-switch", 1)
        first = ns.poll()
        a.join()
        b.join()
        a.send_chat("traffic!")
        fw.run_for(1.0)
        second = ns.poll()
        assert second["if1_in_octets"] > first["if1_in_octets"]


class TestTelemetryWithNetstate:
    def test_netstate_requests_counted(self):
        from repro.core.telemetry import deployment_report

        fw = CollaborationFramework("tns")
        a = fw.add_wired_client("alice")
        a.enable_network_monitoring()
        a.monitor_and_adapt()
        report = deployment_report(fw)
        assert report["wired_clients"]["alice"]["snmp_requests"] >= 1


class TestSubbandSlicesValidation:
    def test_bad_shape_rejected(self):
        from repro.media.wavelet import WaveletError, subband_slices

        with pytest.raises(WaveletError):
            subband_slices((6, 8), 2)
