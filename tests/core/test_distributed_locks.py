"""Tests for the distributed lock flow (session-wide concurrency control)."""

import pytest

from repro.core.events import LockGrantEvent, LockReleaseEvent, LockRequestEvent, decode_event
from repro.core.framework import CollaborationFramework


@pytest.fixture
def session():
    fw = CollaborationFramework("locks")
    coord = fw.add_wired_client("coordinator")
    coord.lock_coordinator = True
    a = fw.add_wired_client("alice")
    b = fw.add_wired_client("bob")
    for c in (coord, a, b):
        c.join()
    fw.run_for(0.5)
    return fw, coord, a, b


class TestEventCodecs:
    def test_roundtrips(self):
        for e in (
            LockRequestEvent(client_id="a", object_id="s1"),
            LockReleaseEvent(client_id="a", object_id="s1"),
            LockGrantEvent(client_id="a", object_id="s1", granted=True),
            LockGrantEvent(client_id="", object_id="s1", granted=False),
        ):
            assert decode_event(e.kind, e.to_body()) == e


class TestLockFlow:
    def test_grant_on_free_object(self, session):
        fw, coord, a, b = session
        a.request_lock("stroke-1")
        fw.run_for(0.5)
        assert "stroke-1" in a.held_locks
        # every replica learned the owner
        for c in (coord, a, b):
            assert c.lock_owners.get("stroke-1") == "alice"

    def test_contention_queues_until_release(self, session):
        fw, coord, a, b = session
        a.request_lock("s")
        fw.run_for(0.5)
        b.request_lock("s")
        fw.run_for(0.5)
        assert "s" not in b.held_locks
        assert b.lock_owners["s"] == "alice"
        a.release_lock("s")
        fw.run_for(0.5)
        assert "s" in b.held_locks
        assert "s" not in a.held_locks
        assert a.lock_owners["s"] == "bob"

    def test_release_without_waiters_frees(self, session):
        fw, coord, a, b = session
        a.request_lock("s")
        fw.run_for(0.5)
        a.release_lock("s")
        fw.run_for(0.5)
        for c in (coord, a, b):
            assert "s" not in c.lock_owners

    def test_coordinator_can_lock_its_own_objects(self, session):
        fw, coord, a, b = session
        coord.request_lock("s")
        fw.run_for(0.5)
        assert "s" in coord.held_locks
        assert a.lock_owners["s"] == "coordinator"

    def test_release_unheld_is_noop(self, session):
        fw, coord, a, b = session
        a.release_lock("never-held")
        fw.run_for(0.5)
        assert a.held_locks == set()

    def test_two_objects_independent(self, session):
        fw, coord, a, b = session
        a.request_lock("x")
        b.request_lock("y")
        fw.run_for(0.5)
        assert "x" in a.held_locks
        assert "y" in b.held_locks

    def test_fifo_ordering_across_three_clients(self, session):
        fw, coord, a, b = session
        a.request_lock("s")
        fw.run_for(0.3)
        b.request_lock("s")
        fw.run_for(0.3)
        coord.request_lock("s")
        fw.run_for(0.3)
        a.release_lock("s")
        fw.run_for(0.3)
        assert "s" in b.held_locks
        b.release_lock("s")
        fw.run_for(0.3)
        assert "s" in coord.held_locks

    def test_leave_revokes_held_lock(self, session):
        """Sec. 2: a departing client's locks are revoked session-wide."""
        fw, coord, a, b = session
        a.request_lock("s")
        fw.run_for(0.5)
        assert a.lock_owners["s"] == "alice"
        a.leave()
        fw.run_for(0.5)
        for c in (coord, b):
            assert "s" not in c.lock_owners
        # the freed object is lockable again
        b.request_lock("s")
        fw.run_for(0.5)
        assert "s" in b.held_locks

    def test_leave_hands_lock_to_waiter(self, session):
        fw, coord, a, b = session
        a.request_lock("s")
        fw.run_for(0.5)
        b.request_lock("s")
        fw.run_for(0.5)
        assert "s" not in b.held_locks
        a.leave()
        fw.run_for(0.5)
        assert "s" in b.held_locks
        for c in (coord, b):
            assert c.lock_owners["s"] == "bob"

    def test_leave_purges_queued_requests(self, session):
        fw, coord, a, b = session
        a.request_lock("s")
        fw.run_for(0.3)
        b.request_lock("s")
        fw.run_for(0.3)
        b.leave()  # waiter departs before the grant
        fw.run_for(0.3)
        a.release_lock("s")
        fw.run_for(0.5)
        for c in (coord, a):
            assert "s" not in c.lock_owners  # nobody left to hand it to

    def test_no_coordinator_no_grants(self):
        fw = CollaborationFramework("anarchic")
        a = fw.add_wired_client("alice")
        b = fw.add_wired_client("bob")
        a.join()
        b.join()
        fw.run_for(0.3)
        a.request_lock("s")
        fw.run_for(0.5)
        assert a.held_locks == set()  # nobody arbitrates
