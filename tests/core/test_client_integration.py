"""Integration tests: wired clients collaborating over the full stack."""

import numpy as np
import pytest

from repro.core.contracts import Constraint, QoSContract
from repro.core.framework import CollaborationFramework
from repro.hosts.workload import Constant, Trace
from repro.media.images import collaboration_scene


@pytest.fixture
def fw():
    framework = CollaborationFramework("itest", objective="integration")
    return framework


def two_clients(fw, **viewer_kwargs):
    a = fw.add_wired_client("alice")
    b = fw.add_wired_client("bob", **viewer_kwargs)
    a.join()
    b.join()
    fw.run_for(0.5)
    return a, b


class TestChat:
    def test_chat_replication(self, fw):
        a, b = two_clients(fw)
        a.send_chat("hello")
        b.send_chat("hi back")
        fw.run_for(1.0)
        # peers are loosely coupled: both lines reach both transcripts,
        # but local echo means per-client ordering may differ.
        assert sorted(a.chat.transcript) == ["alice: hello", "bob: hi back"]
        assert sorted(b.chat.transcript) == ["alice: hello", "bob: hi back"]

    def test_chat_from_single_sender_ordered(self, fw):
        a, b = two_clients(fw)
        for i in range(5):
            a.send_chat(f"line {i}")
        fw.run_for(1.0)
        assert b.chat.transcript == [f"alice: line {i}" for i in range(5)]

    def test_membership_tracked(self, fw):
        a, b = two_clients(fw)
        assert a.membership.members == ["alice", "bob"]
        c = fw.add_wired_client("carol")
        c.join()
        fw.run_for(0.5)
        assert a.membership.members == ["alice", "bob", "carol"]
        # late joiner doesn't know history but sees the session from now on
        a.send_chat("welcome")
        fw.run_for(0.5)
        assert c.chat.transcript == ["alice: welcome"]

    def test_leave_updates_membership(self, fw):
        a, b = two_clients(fw)
        b.leave()
        fw.run_for(0.5)
        assert a.membership.members == ["alice"]


class TestWhiteboard:
    def test_stroke_replication(self, fw):
        a, b = two_clients(fw)
        a.draw("stroke-1", (0.0, 0.0, 10.0, 10.0))
        fw.run_for(0.5)
        assert b.whiteboard.objects() == {"stroke-1": [0.0, 0.0, 10.0, 10.0]}

    def test_erase_replication(self, fw):
        a, b = two_clients(fw)
        a.draw("s", (1.0, 2.0))
        fw.run_for(0.5)
        b.erase("s")
        fw.run_for(0.5)
        assert a.whiteboard.objects() == {}

    def test_concurrent_draw_converges(self, fw):
        """Both replicas pick the same winner; loser kept as conflict."""
        a, b = two_clients(fw)
        a.draw("s", (1.0,))
        b.draw("s", (2.0,))
        fw.run_for(1.0)
        assert a.whiteboard.objects()["s"] == b.whiteboard.objects()["s"]
        assert a.whiteboard.conflicts + b.whiteboard.conflicts >= 1


class TestImageShare:
    def test_full_quality_delivery(self, fw):
        a, b = two_clients(fw)
        img = collaboration_scene(64, 64)
        a.share_image("map", img)
        fw.run_for(2.0)
        view = b.viewer.viewed["map"]
        assert view.assembly.usable_prefix == 16
        recon = b.viewer.reconstruct("map")
        from repro.media.metrics import psnr

        assert psnr(img, recon) > 35.0

    def test_budget_gates_reception(self, fw):
        a, b = two_clients(fw)
        b.viewer.set_packet_budget(2)
        a.share_image("map", collaboration_scene(64, 64))
        fw.run_for(2.0)
        assert b.viewer.viewed["map"].assembly.usable_prefix == 2

    def test_text_mode_client_gets_description_not_packets(self, fw):
        a, b = two_clients(fw)
        b.announce_profile_change(modality="text")
        fw.run_for(0.5)
        a.share_image("map", collaboration_scene(64, 64))
        fw.run_for(2.0)
        assert "map" not in b.viewer.viewed or b.viewer.viewed["map"].packets_accepted == 0
        assert any("64x64" in line for line in b.chat.transcript)

    def test_session_without_image_support_rejects_share(self):
        fw = CollaborationFramework("noimg", result_space=("chat",))
        a = fw.add_wired_client("alice")
        with pytest.raises(ValueError):
            a.share_image("x", collaboration_scene(64, 64))


class TestAdaptationLoop:
    def test_snmp_observed_state(self, fw):
        a = fw.add_wired_client("alice", cpu_workload=Constant(55.0),
                                fault_workload=Constant(77.0))
        observed = a.read_system_state()
        assert observed["cpu_load"] == 55.0
        assert observed["page_faults"] == 77.0
        assert observed["free_memory_kib"] > 0

    def test_monitor_and_adapt_sets_budget(self, fw):
        a = fw.add_wired_client("alice", fault_workload=Constant(95.0))
        d = a.monitor_and_adapt()
        assert d.packets == 1
        assert a.viewer.packet_budget == 1
        assert a.last_decision is d
        assert len(a.decision_log) == 1

    def test_adaptation_follows_workload(self, fw):
        a = fw.add_wired_client("alice", fault_workload=Trace([30, 60, 100]))
        budgets = []
        for tick in range(3):
            fw.hosts["alice"].advance_to_tick(tick)
            budgets.append(a.monitor_and_adapt().packets)
        assert budgets == [16, 4, 1]

    def test_periodic_loop_runs(self, fw):
        a = fw.add_wired_client("alice", fault_workload=Constant(50.0))
        a.start_adaptation_loop(interval=1.0)
        fw.run_for(3.5)
        assert len(a.decision_log) >= 3

    def test_contract_respected_in_loop(self, fw):
        contract = QoSContract("floor", [Constraint("packets", minimum=4)])
        a = fw.add_wired_client(
            "alice", fault_workload=Constant(100.0), contract=contract
        )
        assert a.monitor_and_adapt().packets == 4


class TestProfileDynamics:
    def test_profile_update_event_propagates(self, fw):
        a, b = two_clients(fw)
        b.announce_profile_change(modality="text", battery="15")
        fw.run_for(0.5)
        entry = a.repository.get("peer-profile/bob")
        assert entry is not None
        assert entry.value["modality"] == "text"

    def test_interest_narrowing_is_local_and_immediate(self, fw):
        a, b = two_clients(fw)
        b.profile.set_interest("kind != 'chat'")
        a.send_chat("noise")
        fw.run_for(0.5)
        assert b.chat.transcript == []
