"""Tests for base-station admission control and minimum-device assessment."""

import pytest

from repro.core.framework import CollaborationFramework
from repro.core.policies import ModalityTier


@pytest.fixture
def cell():
    fw = CollaborationFramework("adm")
    bs = fw.add_base_station("bs")
    return fw, bs


class TestAssessment:
    def test_empty_cell_strong_client(self, cell):
        _, bs = cell
        ok, sir_db, tier = bs.assess_admission(50.0, 1.0)
        assert ok
        assert tier is ModalityTier.FULL_IMAGE
        assert sir_db == pytest.approx(32.0, abs=0.2)

    def test_interference_lowers_prediction(self, cell):
        fw, bs = cell
        base = bs.assess_admission(80.0, 1.0)[1]
        fw.add_wireless_client("jammer", bs, distance=50.0)
        with_jammer = bs.assess_admission(80.0, 1.0)[1]
        assert with_jammer < base - 10.0

    def test_invalid_params(self, cell):
        _, bs = cell
        with pytest.raises(ValueError):
            bs.assess_admission(-1.0, 1.0)
        with pytest.raises(ValueError):
            bs.assess_admission(10.0, 0.0)


class TestAdmissionControl:
    def test_admission_refused_below_min_tier(self, cell):
        fw, bs = cell
        fw.add_wireless_client("near", bs, distance=40.0)
        # a far, weak device demanding full-image service is refused
        with pytest.raises(ValueError, match="admission refused"):
            bs.attach(
                "hopeless",
                ("hopeless", 1),
                distance=150.0,
                tx_power=0.5,
                min_tier=ModalityTier.FULL_IMAGE,
            )
        assert "hopeless" not in bs.attachments

    def test_admission_granted_when_tier_met(self, cell):
        _, bs = cell
        att = bs.attach(
            "fine", ("fine", 1), distance=60.0, tx_power=1.0,
            min_tier=ModalityTier.FULL_IMAGE,
        )
        assert att.client_id == "fine"

    def test_no_min_tier_admits_anything(self, cell):
        fw, bs = cell
        fw.add_wireless_client("near", bs, distance=40.0)
        att = bs.attach("weak", ("weak", 1), distance=200.0, tx_power=0.1)
        assert att.client_id == "weak"


class TestMinimumPower:
    def test_binary_search_finds_threshold(self, cell):
        _, bs = cell
        p = bs.minimum_power_for(100.0, ModalityTier.FULL_IMAGE)
        assert p is not None
        # at the found power the tier holds; slightly below it fails
        ok, _, _ = bs.assess_admission(100.0, p, ModalityTier.FULL_IMAGE)
        assert ok
        ok_below, _, _ = bs.assess_admission(100.0, p * 0.9, ModalityTier.FULL_IMAGE)
        assert not ok_below

    def test_none_when_unachievable(self, cell):
        fw, bs = cell
        # a strong interferer makes full-image impossible at long range
        fw.add_wireless_client("jammer", bs, distance=30.0, tx_power=4.0)
        assert bs.minimum_power_for(
            200.0, ModalityTier.FULL_IMAGE, max_power=10.0
        ) is None

    def test_lower_tier_needs_less_power(self, cell):
        _, bs = cell
        p_img = bs.minimum_power_for(100.0, ModalityTier.FULL_IMAGE)
        p_txt = bs.minimum_power_for(100.0, ModalityTier.TEXT_ONLY)
        assert p_txt < p_img
