"""Tests for session descriptors, membership, and archival."""

import pytest

from repro.core.session import Membership, SessionArchive, SessionDescriptor
from repro.messaging.message import SemanticMessage


class TestDescriptor:
    def test_selector_targets_session(self):
        s = SessionDescriptor("crisis-1", "flood response")
        from repro.core.selectors import Selector

        sel = Selector(s.selector_text())
        assert sel.matches({"session": "crisis-1"})
        assert not sel.matches({"session": "other"})

    def test_selector_with_extra_condition(self):
        s = SessionDescriptor("crisis-1", "flood response")
        from repro.core.selectors import Selector

        sel = Selector(s.selector_text("role == 'medic'"))
        assert sel.matches({"session": "crisis-1", "role": "medic"})
        assert not sel.matches({"session": "crisis-1", "role": "clerk"})

    def test_result_space(self):
        s = SessionDescriptor("s", "o", result_space=("chat",))
        assert s.supports("chat")
        assert not s.supports("image")


class TestMembership:
    def test_join_leave(self):
        m = Membership()
        m.join("a", 1.0)
        m.join("b", 2.0)
        m.leave("a")
        assert m.members == ["b"]
        assert "b" in m and "a" not in m
        assert (m.joins, m.leaves) == (2, 1)

    def test_rejoin_idempotent(self):
        m = Membership()
        m.join("a", 1.0)
        m.join("a", 2.0)
        assert m.joins == 1
        assert len(m) == 1

    def test_leave_unknown_noop(self):
        m = Membership()
        m.leave("ghost")
        assert m.leaves == 0


class TestArchive:
    def test_record_and_replay(self):
        a = SessionArchive()
        m1 = SemanticMessage.create("x", "true", kind="chat")
        m2 = SemanticMessage.create("x", "true", kind="image-share")
        a.record(1.0, m1)
        a.record(2.0, m2)
        assert len(a) == 2
        assert [m.kind for _, m in a.replay()] == ["chat", "image-share"]

    def test_replay_since(self):
        a = SessionArchive()
        a.record(1.0, SemanticMessage.create("x", "true", kind="old"))
        a.record(5.0, SemanticMessage.create("x", "true", kind="new"))
        assert [m.kind for _, m in a.replay(since=2.0)] == ["new"]

    def test_replay_kind_filter(self):
        a = SessionArchive()
        a.record(1.0, SemanticMessage.create("x", "true", kind="chat"))
        a.record(2.0, SemanticMessage.create("x", "true", kind="join"))
        assert len(a.replay(kinds={"chat"})) == 1

    def test_capacity_evicts_oldest(self):
        a = SessionArchive(capacity=3)
        for i in range(5):
            a.record(float(i), SemanticMessage.create("x", "true", kind=f"k{i}"))
        assert len(a) == 3
        assert [m.kind for _, m in a.replay()] == ["k2", "k3", "k4"]
        assert a.archived == 5

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SessionArchive(capacity=0)
