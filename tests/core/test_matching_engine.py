"""Tests for the indexed matching engine: cache, decomposition, index."""

import pytest

from repro.core.matching_engine import (
    MatchingEngine,
    ProfileIndex,
    SelectorCache,
    compile_selector,
    selector_cache_info,
)
from repro.core.profiles import ClientProfile
from repro.core.selectors import Predicate, Selector, SelectorError, decompose


# ----------------------------------------------------------------------
# selector cache
# ----------------------------------------------------------------------
class TestSelectorCache:
    def test_parse_once_then_hit(self):
        cache = SelectorCache(maxsize=4)
        a = cache.get("role == 'medic'")
        b = cache.get("role == 'medic'")
        assert a is b
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction_order(self):
        cache = SelectorCache(maxsize=2)
        s1 = cache.get("a == 1")
        cache.get("b == 2")
        cache.get("a == 1")  # touch s1: now b is least-recent
        cache.get("c == 3")  # evicts b
        assert cache.evictions == 1
        assert "b == 2" not in cache
        assert cache.get("a == 1") is s1  # survived

    def test_parse_errors_not_cached(self):
        cache = SelectorCache(maxsize=4)
        with pytest.raises(SelectorError):
            cache.get("role ==")
        assert len(cache) == 0
        assert cache.misses == 1

    def test_clear(self):
        cache = SelectorCache()
        cache.get("true")
        cache.clear()
        assert len(cache) == 0

    def test_maxsize_validation(self):
        with pytest.raises(ValueError):
            SelectorCache(maxsize=0)

    def test_compile_selector_global_cache(self):
        a = compile_selector("battery >= 42 and role == 'medic'")
        b = compile_selector("battery >= 42 and role == 'medic'")
        assert a is b
        info = selector_cache_info()
        assert info["hits"] >= 1
        assert info["size"] <= info["maxsize"]

    def test_compile_selector_passthrough(self):
        sel = Selector("role == 'medic'")
        assert compile_selector(sel) is sel


# ----------------------------------------------------------------------
# conjunctive decomposition
# ----------------------------------------------------------------------
class TestDecompose:
    def plan(self, text):
        return decompose(Selector(text))

    def test_simple_equality(self):
        assert self.plan("role == 'medic'") == (Predicate("==", "role", "medic"),)

    def test_flipped_literal_left(self):
        assert self.plan("'medic' == role") == (Predicate("==", "role", "medic"),)
        assert self.plan("5 < battery") == (Predicate(">", "battery", 5),)

    def test_conjunction_flattens(self):
        plan = self.plan("role == 'medic' and battery >= 30 and exists(gps)")
        assert plan == (
            Predicate("==", "role", "medic"),
            Predicate(">=", "battery", 30),
            Predicate("exists", "gps"),
        )

    def test_or_not_fall_back_to_linear(self):
        assert self.plan("role == 'a' or role == 'b'") is None
        assert self.plan("not role == 'a'") is None

    def test_nested_or_is_dropped_not_fatal(self):
        plan = self.plan("role == 'medic' and (tier == 1 or tier == 2)")
        assert plan == (Predicate("==", "role", "medic"),)

    def test_true_gives_empty_plan(self):
        assert self.plan("true") == ()

    def test_false_gives_never(self):
        assert self.plan("false") == (Predicate("never"),)
        assert self.plan("role == 'x' and false") == (
            Predicate("==", "role", "x"),
            Predicate("never"),
        )

    def test_in_and_contains(self):
        assert self.plan("enc in ['jpeg', 'png']") == (
            Predicate("in", "enc", ("jpeg", "png")),
        )
        assert self.plan("caps contains 'jpeg'") == (
            Predicate("contains", "caps", "jpeg"),
        )

    def test_not_equal_is_dropped(self):
        assert self.plan("role != 'medic'") == ()
        assert self.plan("a == 1 and b != 2") == (Predicate("==", "a", 1),)

    def test_attr_vs_attr_dropped(self):
        assert self.plan("a == b") == ()

    def test_constant_comparisons_folded(self):
        assert self.plan("1 == 1") == ()
        assert self.plan("1 == 2") == (Predicate("never"),)
        assert self.plan("'x' in ['y']") == (Predicate("never"),)

    def test_bare_bool_attr(self):
        assert self.plan("urgent") == (Predicate("==", "urgent", True),)

    def test_plan_memoised_on_selector(self):
        sel = Selector("role == 'medic'")
        assert sel.conjunctive_plan() is sel.conjunctive_plan()


# ----------------------------------------------------------------------
# profile index
# ----------------------------------------------------------------------
class TestProfileIndex:
    def test_equality_lookup(self):
        idx = ProfileIndex()
        idx.add("a", {"role": "medic"})
        idx.add("b", {"role": "clerk"})
        assert idx.satisfying(Predicate("==", "role", "medic")) == {"a"}
        assert idx.satisfying(Predicate("==", "role", "none")) == set()

    def test_numeric_cross_type_equality(self):
        idx = ProfileIndex()
        idx.add("a", {"battery": 30})
        assert idx.satisfying(Predicate("==", "battery", 30.0)) == {"a"}

    def test_bool_is_not_a_number(self):
        idx = ProfileIndex()
        idx.add("a", {"flag": True})
        idx.add("b", {"flag": 1})
        assert idx.satisfying(Predicate("==", "flag", True)) == {"a"}
        assert idx.satisfying(Predicate("==", "flag", 1)) == {"b"}
        # bools never satisfy ordered comparisons
        assert idx.satisfying(Predicate(">", "flag", 0)) == {"b"}

    def test_ordered_lookups(self):
        idx = ProfileIndex()
        for key, battery in (("a", 10), ("b", 20), ("c", 30)):
            idx.add(key, {"battery": battery})
        assert idx.satisfying(Predicate(">=", "battery", 20)) == {"b", "c"}
        assert idx.satisfying(Predicate(">", "battery", 20)) == {"c"}
        assert idx.satisfying(Predicate("<=", "battery", 20)) == {"a", "b"}
        assert idx.satisfying(Predicate("<", "battery", 20)) == {"a"}

    def test_string_ordered_lookup(self):
        idx = ProfileIndex()
        idx.add("a", {"name": "alpha"})
        idx.add("b", {"name": "zulu"})
        assert idx.satisfying(Predicate("<", "name", "mike")) == {"a"}
        # a string-literal bound never matches numeric values and vice versa
        idx.add("c", {"name": 5})
        assert idx.satisfying(Predicate("<", "name", "mike")) == {"a"}

    def test_exists_and_in_and_contains(self):
        idx = ProfileIndex()
        idx.add("a", {"gps": "yes", "caps": ["jpeg", "png"]})
        idx.add("b", {"caps": ["pcm"]})
        assert idx.satisfying(Predicate("exists", "gps")) == {"a"}
        assert idx.satisfying(Predicate("contains", "caps", "jpeg")) == {"a"}
        assert idx.satisfying(Predicate("in", "gps", ("yes", "no"))) == {"a"}
        assert idx.satisfying(Predicate("never")) == set()

    def test_remove_is_exact_and_idempotent(self):
        idx = ProfileIndex()
        idx.add("a", {"role": "medic", "battery": 30, "caps": ["jpeg"]})
        idx.add("b", {"role": "medic"})
        idx.remove("a")
        idx.remove("a")  # idempotent
        assert idx.satisfying(Predicate("==", "role", "medic")) == {"b"}
        assert idx.satisfying(Predicate(">=", "battery", 0)) == set()
        assert idx.satisfying(Predicate("contains", "caps", "jpeg")) == set()
        assert "a" not in idx
        assert len(idx) == 1

    def test_re_add_reindexes(self):
        idx = ProfileIndex()
        idx.add("a", {"role": "medic"})
        idx.add("a", {"role": "clerk"})
        assert idx.satisfying(Predicate("==", "role", "medic")) == set()
        assert idx.satisfying(Predicate("==", "role", "clerk")) == {"a"}
        assert len(idx) == 1


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
def engine_with(*attr_maps):
    eng = MatchingEngine()
    profiles = []
    for i, attrs in enumerate(attr_maps):
        p = ClientProfile(f"c{i}", attrs)
        eng.add(f"c{i}", p)
        profiles.append(p)
    return eng, profiles


class TestMatchingEngine:
    def test_counting_shortlist(self):
        eng, _ = engine_with(
            {"role": "medic", "battery": 80},
            {"role": "medic", "battery": 10},
            {"role": "clerk", "battery": 90},
        )
        sl = eng.shortlist("role == 'medic' and battery >= 50")
        assert sl.via_index
        assert sl.keys == {"c0"}

    def test_broadcast_falls_back_to_linear(self):
        eng, _ = engine_with({"role": "medic"})
        sl = eng.shortlist("true")
        assert sl.linear
        assert not sl.via_index

    def test_disjunction_falls_back_to_linear(self):
        eng, _ = engine_with({"role": "medic"})
        assert eng.shortlist("role == 'a' or role == 'b'").linear
        assert eng.linear_publishes == 1

    def test_constant_false_shortlists_nobody(self):
        eng, _ = engine_with({"role": "medic"})
        sl = eng.shortlist("false")
        assert sl.keys == set()
        assert sl.via_index

    def test_profile_update_reindexes_lazily(self):
        eng, (p0,) = engine_with({"role": "observer"})
        assert eng.shortlist("role == 'medic'").keys == set()
        p0.update(role="medic")  # watcher marks the entry dirty
        sl = eng.shortlist("role == 'medic'")
        assert sl.keys == {"c0"}
        assert eng.reindexes == 1

    def test_remove_stops_indexing_and_unwatches(self):
        eng, (p0,) = engine_with({"role": "medic"})
        eng.remove("c0")
        eng.remove("c0")  # idempotent
        assert len(eng) == 0
        p0.update(role="clerk")  # must not resurrect the entry
        assert eng.shortlist("role == 'clerk'").keys == set()
        assert eng.reindexes == 0

    def test_shortlist_is_superset_of_matches(self):
        # the 'or' conjunct is dropped, widening the shortlist — but the
        # shortlist must still contain every true match
        eng, _ = engine_with(
            {"role": "medic", "tier": 1},
            {"role": "medic", "tier": 9},
            {"role": "clerk", "tier": 1},
        )
        sl = eng.shortlist("role == 'medic' and (tier == 1 or tier == 2)")
        assert sl.via_index
        assert sl.keys == {"c0", "c1"}  # c1 is a false positive; interpret() prunes it


class TestBatchSurface:
    """The batch helpers the sharded broker builds on."""

    def test_attribute_universe_tracks_membership(self):
        eng, (p0,) = engine_with({"role": "medic", "tier": 1})
        eng.flush()
        assert eng.attribute_universe() == {"role", "tier"}
        eng.remove("c0")
        eng.flush()
        assert eng.attribute_universe() == set()

    def test_attribute_universe_follows_profile_updates(self):
        eng, (p0,) = engine_with({"role": "medic"})
        p0.update(zone="north")
        eng.flush()  # re-index the dirty profile before consulting
        assert "zone" in eng.attribute_universe()

    def test_shortlist_many_memoises_distinct_selectors(self):
        eng, _ = engine_with({"role": "medic"}, {"role": "clerk"})
        before = eng.indexed_publishes
        out = eng.shortlist_many(
            ["role == 'medic'", "role == 'medic'", "role == 'clerk'"]
        )
        assert len(out) == 3
        assert out[0] is out[1]  # repeated selector: one probe, shared result
        assert out[0].keys == {"c0"} and out[2].keys == {"c1"}
        assert eng.indexed_publishes - before == 2  # 2 distinct, not 3

    def test_shortlist_many_flushes_once_for_the_batch(self):
        eng, (p0,) = engine_with({"role": "observer"})
        p0.update(role="medic")
        out = eng.shortlist_many(["role == 'medic'"])
        assert out[0].keys == {"c0"}
        assert eng.reindexes == 1
