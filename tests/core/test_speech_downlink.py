"""Tests for BS-side speech transformation (speech-preference clients)."""

import numpy as np
import pytest

from repro.core.framework import CollaborationFramework
from repro.core.policies import ModalityTier
from repro.media.images import collaboration_scene
from repro.media.speech import dequantize_u8, quantize_u8, speech_to_text, text_to_speech


class TestQuantization:
    def test_u8_roundtrip_preserves_recognition(self):
        clip = text_to_speech("alert level four")
        wire = quantize_u8(clip)
        back = dequantize_u8(wire)
        assert speech_to_text(back) == "alert level four"

    def test_wire_size_one_byte_per_sample(self):
        clip = text_to_speech("abc")
        assert len(quantize_u8(clip)) == len(clip.samples)


@pytest.fixture
def cell():
    fw = CollaborationFramework("stest")
    wired = fw.add_wired_client("wired")
    bs = fw.add_base_station("bs")
    # geometry: w gets a degraded tier (text band) with an interferer near
    speechy = fw.add_wireless_client("speechy", bs, distance=75.0)
    fw.add_wireless_client("near", bs, distance=55.0)
    wired.join()
    fw.run_for(0.2)
    snap = bs.evaluate_qos()
    _, tier = snap.for_client("speechy")
    assert tier in (ModalityTier.TEXT_ONLY, ModalityTier.TEXT_AND_SKETCH)
    return fw, wired, bs, speechy


class TestSpeechDownlink:
    def test_text_preference_default(self, cell):
        fw, wired, bs, speechy = cell
        wired.share_image("img", collaboration_scene(64, 64))
        fw.run_for(3.0)
        counts = speechy.modality_counts()
        assert counts["text"] == 1
        assert not speechy.received_events or all(
            type(e).__name__ != "SpeechShareEvent" for _, e in speechy.received_events
        )

    def test_speech_preference_transforms_centrally(self, cell):
        fw, wired, bs, speechy = cell
        speechy.set_modality_preference("speech")
        fw.run_for(0.5)
        assert bs.attachments["speechy"].profile_attrs["modality"] == "speech"
        wired.share_image("img", collaboration_scene(64, 64))
        fw.run_for(4.0)
        counts = speechy.modality_counts()
        assert counts["text"] == 0
        assert len(speechy.received_events) > 0
        speech_events = [
            e for _, e in speechy.received_events if type(e).__name__ == "SpeechShareEvent"
        ]
        assert len(speech_events) == 1
        # the synthetic voice decodes back to the image's description
        clip = dequantize_u8(speech_events[0].samples_u8, speech_events[0].sample_rate)
        text = speech_to_text(clip)
        assert "64x64" in text

    def test_revert_to_text(self, cell):
        fw, wired, bs, speechy = cell
        speechy.set_modality_preference("speech")
        fw.run_for(0.5)
        speechy.set_modality_preference("text")
        fw.run_for(0.5)
        wired.share_image("img2", collaboration_scene(64, 64))
        fw.run_for(3.0)
        assert speechy.modality_counts()["text"] == 1


class TestWiredSpeechPreference:
    def test_wired_speech_client_synthesizes_locally(self):
        from repro.core.framework import CollaborationFramework
        from repro.media.speech import SpeechClip, speech_to_text

        fw = CollaborationFramework("wspeech")
        a = fw.add_wired_client("alice")
        b = fw.add_wired_client("bob")
        b.profile.update(modality="speech")
        a.join()
        b.join()
        fw.run_for(0.3)
        a.share_image("img", collaboration_scene(64, 64))
        fw.run_for(2.0)
        entry = b.repository.get("speech/img")
        assert entry is not None
        assert isinstance(entry.value, SpeechClip)
        assert "64x64" in speech_to_text(entry.value)
