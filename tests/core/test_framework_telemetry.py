"""Tests for the deployment facade and telemetry aggregation."""

import pytest

from repro.core.concurrency import LockError
from repro.core.framework import CollaborationFramework
from repro.core.telemetry import deployment_report, format_report
from repro.media.images import collaboration_scene


class TestFrameworkFacade:
    def test_topology_built(self):
        fw = CollaborationFramework("f")
        fw.add_wired_client("a")
        fw.add_wired_client("b")
        bs = fw.add_base_station("bs")
        fw.add_wireless_client("w", bs)
        # every endpoint has a path to every other through the switch
        assert fw.network.route("a", "b") is not None
        assert fw.network.route("w", "a") is not None
        assert set(fw.hosts) == {"a", "b", "bs"}
        assert set(fw.agents) == {"a", "b", "bs"}

    def test_duplicate_client_name_rejected(self):
        fw = CollaborationFramework("f")
        fw.add_wired_client("a")
        with pytest.raises(Exception):
            fw.add_wired_client("a")

    def test_custom_link_kwargs(self):
        fw = CollaborationFramework("f")
        fw.add_wired_client("slow", link_kwargs={"bandwidth": 1000.0, "loss": 0.1})
        link = fw.network.link("slow", "lan-switch")
        assert link.bandwidth == 1000.0
        assert link.loss == 0.1

    def test_run_advances_time(self):
        fw = CollaborationFramework("f")
        fw.run_for(3.5)
        assert fw.now == 3.5

    def test_start_hosts(self):
        from repro.hosts.workload import Ramp

        fw = CollaborationFramework("f")
        fw.add_wired_client("a", cpu_workload=Ramp(0, 100, 5))
        fw.start_hosts()
        fw.run_for(3.0)
        assert fw.hosts["a"].tick == 3


class TestLockEnforcedDraw:
    def test_draw_refused_when_locked_by_other(self):
        fw = CollaborationFramework("locks")
        coord = fw.add_wired_client("coordinator")
        coord.lock_coordinator = True
        a = fw.add_wired_client("alice")
        b = fw.add_wired_client("bob")
        for c in (coord, a, b):
            c.join()
        fw.run_for(0.3)
        a.request_lock("s")
        fw.run_for(0.5)
        with pytest.raises(LockError):
            b.draw("s", (1.0,))
        # the owner can draw; after release, bob can too
        a.draw("s", (2.0,))
        a.release_lock("s")
        fw.run_for(0.5)
        b.draw("s", (3.0,))
        fw.run_for(0.5)
        assert a.whiteboard.objects()["s"] == [3.0]


class TestLateJoinImageReplay:
    def test_late_joiner_reconstructs_replayed_image(self):
        fw = CollaborationFramework("h-img")
        a = fw.add_wired_client("alice")
        b = fw.add_wired_client("bob")
        a.join()
        b.join()
        fw.run_for(0.3)
        img = collaboration_scene(64, 64)
        a.share_image("old-map", img)
        fw.run_for(2.0)

        late = fw.add_wired_client("late")
        late.join()
        fw.run_for(0.3)
        late.request_history()
        fw.run_for(3.0)
        view = late.viewer.viewed.get("old-map")
        assert view is not None
        assert view.assembly.usable_prefix >= 16 or view.assembly.received >= 16
        from repro.media.metrics import psnr

        assert psnr(img, late.viewer.reconstruct("old-map")) > 35.0


class TestTelemetry:
    @pytest.fixture
    def busy_deployment(self):
        fw = CollaborationFramework("telem")
        a = fw.add_wired_client("alice")
        b = fw.add_wired_client("bob")
        bs = fw.add_base_station("bs")
        w = fw.add_wireless_client("w", bs, distance=50.0)
        a.join()
        b.join()
        fw.run_for(0.3)
        a.send_chat("hi")
        a.draw("s", (1.0,))
        bs.evaluate_qos()
        a.share_image("img", collaboration_scene(64, 64))
        b.monitor_and_adapt()
        fw.run_for(2.0)
        return fw

    def test_report_structure(self, busy_deployment):
        report = deployment_report(busy_deployment)
        assert set(report["wired_clients"]) == {"alice", "bob"}
        assert set(report["wireless_clients"]) == {"w"}
        assert set(report["base_stations"]) == {"bs"}
        bob = report["wired_clients"]["bob"]
        assert bob["chat_lines"] == 1
        assert bob["whiteboard_objects"] == 1
        assert bob["images_viewed"] == 1
        assert bob["decisions"] == 1
        assert bob["snmp_requests"] >= 1
        alice = report["wired_clients"]["alice"]
        assert alice["images_shared"] == 1
        assert alice["sent_messages"] >= 18  # join + chat + draw + announce + 16 pkts

    def test_wireless_and_bs_sections(self, busy_deployment):
        report = deployment_report(busy_deployment)
        w = report["wireless_clients"]["w"]
        assert w["distance_m"] == 50.0
        assert w["image_packets"] == 16
        bs = report["base_stations"]["bs"]
        assert bs["attached"] == ["w"]
        assert "w" in bs["last_tiers"]

    def test_format_renders(self, busy_deployment):
        text = format_report(deployment_report(busy_deployment))
        assert "session 'telem'" in text
        assert "alice" in text and "bs" in text and "last_tiers" in text
