"""Property test: the indexed bus is decision-identical to a linear scan.

The matching engine is only allowed to *narrow where the interpreter
looks*, never to change what it decides.  This drives randomized
profile populations and selectors through an indexed and an unindexed
:class:`~repro.messaging.broker.SemanticBus` and requires identical
deliveries, per-subscriber counters, and publish results — including
after mid-run profile mutations (exercising the watch/reindex path).
"""

from hypothesis import given, settings, strategies as st

from repro.core.matching import interpret
from repro.core.profiles import ClientProfile
from repro.core.selectors import Selector
from repro.messaging.broker import SemanticBus
from repro.messaging.message import SemanticMessage

ROLES = ["medic", "clerk", "command", "observer"]
ENCODINGS = ["jpeg", "mpeg2", "pcm"]

attr_values = st.one_of(
    st.sampled_from(ROLES),
    st.integers(-5, 5),
    st.floats(-5, 5, allow_nan=False, allow_infinity=False),
    st.booleans(),
    st.lists(st.sampled_from(ENCODINGS), max_size=3).map(tuple),
)

profile_attrs = st.dictionaries(
    st.sampled_from(["role", "battery", "tier", "urgent", "caps", "enc"]),
    attr_values,
    max_size=4,
)

# a grab-bag of selector shapes: indexable conjunctions, disjunctions and
# negations (linear fallback), constants, list ops, flipped literals
SELECTORS = [
    "true",
    "false",
    "role == 'medic'",
    "'medic' == role",
    "role != 'medic'",
    "battery >= 2",
    "3 > battery",
    "battery >= 0 and battery <= 3",
    "role == 'medic' and battery > 1",
    "role == 'medic' or role == 'clerk'",
    "not role == 'medic'",
    "urgent",
    "urgent == true",
    "exists(caps)",
    "caps contains 'jpeg'",
    "enc in ['jpeg', 'pcm']",
    "role in ['medic', 'command'] and tier <= 2",
    "role == 'medic' and (tier == 1 or tier == 2)",
    "tier == 1 and tier == 1.0",
    "battery == 2 and role == role",
]


@settings(max_examples=60, deadline=None)
@given(
    populations=st.lists(profile_attrs, min_size=0, max_size=8),
    selector=st.sampled_from(SELECTORS),
    mutate=st.one_of(st.none(), st.tuples(st.integers(0, 7), profile_attrs)),
)
def test_indexed_and_linear_buses_agree(populations, selector, mutate):
    indexed = SemanticBus(indexed=True)
    linear = SemanticBus(indexed=False)
    got_indexed, got_linear = [], []
    subs_i, subs_l = [], []
    for i, attrs in enumerate(populations):
        pi = ClientProfile(f"c{i}", dict(attrs))
        pl = ClientProfile(f"c{i}", dict(attrs))
        subs_i.append(indexed.attach(pi, lambda d, i=i: got_indexed.append((i, d.result.decision))))
        subs_l.append(linear.attach(pl, lambda d, i=i: got_linear.append((i, d.result.decision))))

    if mutate is not None and populations:
        idx, new_attrs = mutate
        idx %= len(populations)
        subs_i[idx].profile.update(**dict(new_attrs))
        subs_l[idx].profile.update(**dict(new_attrs))

    msg = SemanticMessage.create("s", selector, headers={"enc": "jpeg"})
    res_i = indexed.publish(msg)
    res_l = linear.publish(msg)

    assert got_indexed == got_linear
    assert (res_i.delivered, res_i.transformed, res_i.rejected) == (
        res_l.delivered,
        res_l.transformed,
        res_l.rejected,
    )
    for si, sl in zip(subs_i, subs_l):
        assert (si.accepted, si.transformed, si.rejected) == (
            sl.accepted,
            sl.transformed,
            sl.rejected,
        )


@settings(max_examples=60, deadline=None)
@given(
    populations=st.lists(profile_attrs, min_size=0, max_size=8),
    selector_batch=st.lists(st.sampled_from(SELECTORS), min_size=1, max_size=4),
    nshards=st.sampled_from([1, 2, 3, 5, 8]),
)
def test_sharded_batch_agrees_with_linear_bus(populations, selector_batch, nshards):
    """Sharding + batching may only re-phase the work, never the outcome.

    One ``publish_many`` on a :class:`ShardedSemanticBus` must produce
    the same decisions, the same *global delivery order*, the same
    per-message results, and the same per-subscriber counters as
    publishing the batch message-by-message on an unindexed linear bus —
    for any shard count, including shard-skipped and linear-fallback
    selectors.
    """
    from repro.messaging.sharded import ShardedSemanticBus

    linear = SemanticBus(indexed=False)
    sharded = ShardedSemanticBus(shards=nshards)
    got_linear, got_sharded = [], []
    subs_l, subs_s = [], []
    for i, attrs in enumerate(populations):
        pl = ClientProfile(f"c{i}", dict(attrs))
        ps = ClientProfile(f"c{i}", dict(attrs))
        subs_l.append(linear.attach(pl, lambda d, i=i: got_linear.append((i, d.message.msg_id, d.result.decision))))
        subs_s.append(sharded.attach(ps, lambda d, i=i: got_sharded.append((i, d.message.msg_id, d.result.decision))))

    batch = [
        SemanticMessage.create("s", text, headers={"enc": "jpeg"})
        for text in selector_batch
    ]
    res_l = [linear.publish(m) for m in batch]
    res_s = sharded.publish_many(batch)

    assert got_sharded == got_linear
    assert len(res_s.results) == len(res_l)
    for rl, rs in zip(res_l, res_s):
        assert (rl.delivered, rl.transformed, rl.rejected) == (
            rs.delivered,
            rs.transformed,
            rs.rejected,
        )
    for sl, ss in zip(subs_l, subs_s):
        assert (sl.accepted, sl.transformed, sl.rejected) == (
            ss.accepted,
            ss.transformed,
            ss.rejected,
        )


@settings(max_examples=60, deadline=None)
@given(
    attrs=profile_attrs,
    selector=st.sampled_from(SELECTORS),
)
def test_required_attributes_is_sound(attrs, selector):
    """No profile lacking a required attribute ever matches the selector."""
    from repro.core.selectors import required_attributes

    sel = Selector(selector)
    required = required_attributes(sel)
    profile = ClientProfile("c", dict(attrs))
    if required and not required <= frozenset(profile.snapshot()):
        assert not interpret(sel, {}, profile).accepted


@settings(max_examples=60, deadline=None)
@given(
    attrs=profile_attrs,
    selector=st.sampled_from(SELECTORS),
)
def test_shortlist_never_loses_a_match(attrs, selector):
    """Sound over-approximation: every interpreter match is shortlisted."""
    from repro.core.matching_engine import MatchingEngine

    profile = ClientProfile("c", dict(attrs))
    eng = MatchingEngine()
    eng.add("c", profile)
    sl = eng.shortlist(selector)
    matches = interpret(Selector(selector), {}, profile).accepted
    if matches and not sl.linear:
        assert "c" in sl.keys
