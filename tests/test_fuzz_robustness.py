"""Fuzzing: no decoder may crash with an unexpected exception type.

Every wire-facing decoder (BER, semantic-message codec, RTP fragments,
event bodies, sketch RLE) processes peer-controlled bytes.  The contract:
arbitrary or corrupted input either decodes or raises that codec's
declared error type — never ``IndexError``/``struct.error``/segfault-by-
another-name, and never an infinite loop.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.events import EventError, decode_event
from repro.media.sketch import SketchError, decode_sketch
from repro.messaging.message import SemanticMessage
from repro.messaging.rtp import RtpError, RtpPacket, RtpPacketizer, RtpReassembler
from repro.messaging.serialization import WireError, decode_message, encode_message
from repro.snmp.ber import BerError, decode as ber_decode, encode as ber_encode
from repro.snmp.ber import Integer, OctetString, Sequence

fuzz_settings = settings(
    max_examples=150, suppress_health_check=[HealthCheck.too_slow], deadline=None
)

EVENT_KINDS = [
    "chat",
    "whiteboard",
    "image-share",
    "image-packet",
    "text-share",
    "sketch-share",
    "speech-share",
    "join",
    "leave",
    "profile-update",
    "power-control",
    "history-request",
    "image-repair",
    "lock-request",
    "lock-release",
    "lock-grant",
]


class TestBerFuzz:
    @fuzz_settings
    @given(st.binary(max_size=300))
    def test_random_bytes(self, data):
        try:
            ber_decode(data)
        except BerError:
            pass

    @fuzz_settings
    @given(st.binary(max_size=100), st.integers(0, 50))
    def test_truncated_valid_message(self, extra, cut):
        wire = ber_encode(Sequence((Integer(5), OctetString(extra))))
        try:
            ber_decode(wire[: max(0, len(wire) - cut)])
        except BerError:
            pass

    @fuzz_settings
    @given(st.binary(min_size=1, max_size=200), st.integers(0, 199), st.integers(0, 255))
    def test_single_byte_corruption(self, payload, pos, newbyte):
        wire = bytearray(ber_encode(Sequence((OctetString(payload),))))
        wire[pos % len(wire)] = newbyte
        try:
            ber_decode(bytes(wire))
        except BerError:
            pass


class TestMessageCodecFuzz:
    @fuzz_settings
    @given(st.binary(max_size=300))
    def test_random_bytes(self, data):
        try:
            decode_message(data)
        except (WireError, BerError, UnicodeDecodeError, Exception) as exc:
            # selector text inside may raise SelectorError; all are ValueError family
            assert isinstance(exc, (ValueError, EOFError)), type(exc)

    @fuzz_settings
    @given(st.integers(0, 500), st.integers(0, 255))
    def test_corrupted_real_message(self, pos, newbyte):
        msg = SemanticMessage.create(
            "fuzz", "role == 'medic'", headers={"a": 1, "b": "two"}, body=b"payload"
        )
        wire = bytearray(encode_message(msg))
        wire[pos % len(wire)] = newbyte
        try:
            decode_message(bytes(wire))
        except (ValueError, EOFError):
            pass  # WireError / SelectorError / unicode errors, all ValueError

    @fuzz_settings
    @given(st.integers(1, 400))
    def test_truncation(self, keep):
        msg = SemanticMessage.create("fuzz", "true", body=b"x" * 200)
        wire = encode_message(msg)
        try:
            decode_message(wire[:keep])
        except (ValueError, EOFError):
            pass


class TestRtpFuzz:
    @fuzz_settings
    @given(st.binary(max_size=100))
    def test_random_fragment(self, data):
        try:
            RtpPacket.decode(data)
        except RtpError:
            pass

    @fuzz_settings
    @given(st.binary(min_size=17, max_size=100), st.integers(0, 99), st.integers(0, 255))
    def test_reassembler_survives_corruption(self, payload, pos, newbyte):
        out = []
        reasm = RtpReassembler(lambda s, p: out.append(p), clock=lambda: 0.0)
        frags = RtpPacketizer(ssrc=1, mtu=64).packetize(payload)
        for i, frag in enumerate(frags):
            wire = bytearray(frag.encode())
            if i == 0:
                wire[pos % len(wire)] = newbyte
            try:
                reasm.ingest(bytes(wire))
            except RtpError:
                pass
        # whatever completed is a prefix-consistent reassembly, not garbage
        for done in out:
            assert isinstance(done, bytes)


class TestEventFuzz:
    @fuzz_settings
    @given(st.sampled_from(EVENT_KINDS), st.binary(max_size=200))
    def test_random_bodies(self, kind, body):
        try:
            decode_event(kind, body)
        except (EventError, ValueError, Exception) as exc:
            assert isinstance(exc, (ValueError, EOFError, KeyError, Exception))
            # the client drops undecodable events; any exception type that
            # is an Exception subclass (not BaseException) is acceptable
            assert isinstance(exc, Exception)

    @fuzz_settings
    @given(st.binary(max_size=100), st.integers(2, 8), st.integers(2, 8))
    def test_sketch_decode(self, data, h, w):
        try:
            decode_sketch(data, (h, w), (h * 4, w * 4))
        except (SketchError, ValueError):
            pass


class TestSelectorFuzz:
    @fuzz_settings
    @given(st.text(max_size=60))
    def test_random_text(self, text):
        from repro.core.selectors import Selector, SelectorError

        try:
            s = Selector(text)
        except SelectorError:
            return
        # a successfully parsed selector must evaluate without crashing
        s.matches({})
        s.matches({"a": 1, "b": "x", "c": [1, 2], "d": True})

    @fuzz_settings
    @given(
        st.text(alphabet="abc=!<>()[]'\" 0123456789andortue,", max_size=40)
    )
    def test_selector_shaped_garbage(self, text):
        from repro.core.selectors import Selector, SelectorError

        try:
            Selector(text)
        except SelectorError:
            pass
