"""Tests for synthetic speech and the verbal-description generator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.media.describe import describe_image
from repro.media.images import collaboration_scene, gaussian_blobs, gradient, to_rgb
from repro.media.speech import (
    FRAME,
    SpeechClip,
    SpeechError,
    speech_to_text,
    text_to_speech,
)

printable = st.text(
    alphabet=" abcdefghijklmnopqrstuvwxyz0123456789.,;:!?'\"()-%/",
    min_size=1,
    max_size=60,
)


class TestSpeech:
    def test_roundtrip_simple(self):
        assert speech_to_text(text_to_speech("share image now")) == "share image now"

    @settings(max_examples=40)
    @given(printable)
    def test_roundtrip_property(self, text):
        assert speech_to_text(text_to_speech(text)) == text

    def test_case_normalised(self):
        assert speech_to_text(text_to_speech("Hello WORLD")) == "hello world"

    def test_unknown_chars_become_space(self):
        assert speech_to_text(text_to_speech("aéb")) == "a b"

    def test_duration_scales_with_length(self):
        short = text_to_speech("hi")
        long = text_to_speech("hi there friend")
        assert long.duration > short.duration
        assert short.duration == pytest.approx(2 * FRAME / short.sample_rate)

    def test_empty_text_rejected(self):
        with pytest.raises(SpeechError):
            text_to_speech("")

    def test_partial_frame_rejected(self):
        clip = SpeechClip(np.zeros(FRAME + 1, dtype=np.float32), 8000, 1)
        with pytest.raises(SpeechError):
            speech_to_text(clip)

    def test_amplitude_bounded(self):
        clip = text_to_speech("loudness test")
        assert np.abs(clip.samples).max() <= 1.0


class TestDescribe:
    def test_deterministic(self):
        img = collaboration_scene(64, 64)
        assert describe_image(img).text == describe_image(img).text

    def test_mentions_dimensions_and_kind(self):
        d = describe_image(collaboration_scene(64, 64))
        assert "64x64" in d.text
        assert "grayscale" in d.text
        d_rgb = describe_image(to_rgb(collaboration_scene(64, 64)))
        assert "color" in d_rgb.text

    def test_scene_has_regions(self):
        d = describe_image(collaboration_scene(128, 128))
        assert d.n_bright_regions + d.n_dark_regions >= 1
        assert "region" in d.text

    def test_uniform_image_reports_no_features(self):
        d = describe_image(np.full((32, 32), 128, dtype=np.uint8))
        assert d.n_bright_regions == 0
        assert "uniform" in d.text

    def test_blobs_counted(self):
        d = describe_image(gaussian_blobs(128, 128, n_blobs=3, seed=1))
        assert d.n_bright_regions >= 1

    def test_text_is_compact(self):
        d = describe_image(collaboration_scene(256, 256))
        assert d.n_bytes < 1000  # orders smaller than the image

    def test_position_words_present(self):
        d = describe_image(collaboration_scene(128, 128))
        assert any(
            word in d.text
            for word in ("top-left", "centre", "bottom-right", "middle", "top", "bottom")
        )
