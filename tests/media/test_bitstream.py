"""Tests for bit-level I/O."""

import pytest
from hypothesis import given, strategies as st

from repro.media.bitstream import BitReader, BitWriter, OutOfBits


class TestWriter:
    def test_single_bits_pack_msb_first(self):
        w = BitWriter()
        for b in (1, 0, 1, 1, 0, 0, 0, 1):
            w.write_bit(b)
        assert w.getvalue() == bytes([0b10110001])

    def test_partial_byte_zero_padded(self):
        w = BitWriter()
        w.write_bit(1)
        w.write_bit(1)
        assert w.getvalue() == bytes([0b11000000])
        assert w.bits_written == 2

    def test_write_bits_value(self):
        w = BitWriter()
        w.write_bits(0b101, 3)
        w.write_bits(0b01, 2)
        assert w.bits_written == 5
        assert w.getvalue() == bytes([0b10101000])

    def test_write_bits_overflow_rejected(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_bits(8, 3)

    def test_getvalue_idempotent(self):
        w = BitWriter()
        w.write_bits(0b1101, 4)
        assert w.getvalue() == w.getvalue()


class TestReader:
    def test_reads_back_bits(self):
        r = BitReader(bytes([0b10110001]))
        assert [r.read_bit() for _ in range(8)] == [1, 0, 1, 1, 0, 0, 0, 1]

    def test_out_of_bits(self):
        r = BitReader(b"\xff", bit_limit=3)
        for _ in range(3):
            r.read_bit()
        with pytest.raises(OutOfBits):
            r.read_bit()

    def test_bit_limit_caps_at_data(self):
        r = BitReader(b"\xff", bit_limit=100)
        assert r.bits_remaining == 8

    def test_read_bits_value(self):
        r = BitReader(bytes([0b10101000]))
        assert r.read_bits(3) == 0b101
        assert r.read_bits(2) == 0b01

    def test_position_tracking(self):
        r = BitReader(b"\x00\x00")
        r.read_bits(5)
        assert r.bits_read == 5
        assert r.bits_remaining == 11


class TestRoundtrip:
    @given(st.lists(st.integers(0, 1), max_size=200))
    def test_bit_sequence_roundtrip(self, bits):
        w = BitWriter()
        for b in bits:
            w.write_bit(b)
        r = BitReader(w.getvalue(), bit_limit=len(bits))
        assert [r.read_bit() for _ in range(len(bits))] == bits
        with pytest.raises(OutOfBits):
            r.read_bit()

    @given(st.lists(st.tuples(st.integers(0, 2**16 - 1), st.integers(16, 20)), max_size=30))
    def test_value_roundtrip(self, pairs):
        w = BitWriter()
        for value, width in pairs:
            w.write_bits(value, width)
        r = BitReader(w.getvalue())
        for value, width in pairs:
            assert r.read_bits(width) == value
