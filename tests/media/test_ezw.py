"""Tests for the embedded zerotree coder."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.media.ezw import EzwEncoded, decode_image, encode_image, ezw_decode, ezw_encode
from repro.media.images import checkerboard, collaboration_scene, gradient
from repro.media.metrics import psnr
from repro.media.wavelet import haar_dwt2


class TestLossless:
    def test_integer_image_near_lossless(self):
        img = collaboration_scene(32, 32).astype(float)
        enc = encode_image(img, 4)
        rec = decode_image(enc)
        assert np.abs(rec - img).max() < 1.0

    def test_zero_image(self):
        enc = encode_image(np.zeros((16, 16)), 3)
        assert enc.payload_bits == 0
        assert np.allclose(decode_image(enc), 0.0)

    def test_single_coefficient(self):
        c = np.zeros((8, 8))
        c[0, 0] = 100.0
        enc = ezw_encode(c, 2)
        rec = ezw_decode(enc)
        assert rec[0, 0] == pytest.approx(100.0, abs=1.0)
        assert np.allclose(rec.ravel()[1:], 0.0)

    def test_negative_coefficients(self):
        c = np.zeros((8, 8))
        c[0, 0] = -77.0
        c[4, 4] = 33.0
        rec = ezw_decode(ezw_encode(c, 2))
        assert rec[0, 0] == pytest.approx(-77.0, abs=1.0)
        assert rec[4, 4] == pytest.approx(33.0, abs=1.0)


class TestEmbedded:
    def test_any_prefix_decodes(self):
        img = collaboration_scene(32, 32)
        enc = encode_image(img, 4)
        for bits in (0, 1, 7, 100, 1000, enc.payload_bits):
            rec = decode_image(enc.truncated(bits))
            assert rec.shape == img.shape
            assert np.all(np.isfinite(rec))

    def test_quality_monotone_in_prefix_length(self):
        img = collaboration_scene(64, 64)
        enc = encode_image(img, 5)
        fracs = (0.05, 0.15, 0.4, 1.0)
        psnrs = [
            psnr(img, np.clip(decode_image(enc.truncated(int(f * enc.payload_bits))), 0, 255))
            for f in fracs
        ]
        assert all(b >= a - 0.5 for a, b in zip(psnrs, psnrs[1:]))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 5000), st.integers(0, 10000))
    def test_prefix_decode_never_crashes(self, seed, bits):
        rng = np.random.default_rng(seed)
        c = rng.normal(0, 50, (16, 16))
        enc = ezw_encode(c, 3)
        rec = ezw_decode(enc.truncated(min(bits, enc.payload_bits)))
        assert np.all(np.isfinite(rec))

    def test_truncated_bits_clamped(self):
        enc = encode_image(gradient(16, 16), 3)
        assert enc.truncated(10**9).payload_bits == enc.payload_bits
        assert enc.truncated(-5).payload_bits == 0


class TestRateControl:
    def test_max_bits_respected(self):
        img = collaboration_scene(64, 64)
        enc = encode_image(img, 5, max_bits=5000)
        # encoder may finish the current symbol, so allow small overshoot
        assert enc.payload_bits <= 5000 + 64

    def test_harder_content_costs_more(self):
        rng = np.random.default_rng(0)
        noise = rng.integers(0, 256, (64, 64)).astype(np.uint8)
        easy = encode_image(gradient(64, 64), 5)
        hard = encode_image(noise, 5)  # white noise is incompressible
        assert hard.payload_bits > easy.payload_bits

    def test_compression_beats_raw_on_natural_content(self):
        img = collaboration_scene(64, 64)
        enc = encode_image(img, 5, max_bits=None)
        # near-lossless should still undercut 16 bpp
        assert enc.payload_bits < 16 * img.size


class TestEncodedContainer:
    def test_roundtrip_through_fields(self):
        img = collaboration_scene(32, 32)
        enc = encode_image(img, 4)
        clone = EzwEncoded(enc.shape, enc.levels, enc.t0_exp, enc.payload, enc.payload_bits)
        assert np.allclose(decode_image(clone), decode_image(enc))

    def test_decoder_matches_encoder_coefficients(self):
        img = collaboration_scene(32, 32).astype(float)
        coeffs = haar_dwt2(img, 4)
        enc = ezw_encode(coeffs, 4)
        rec = ezw_decode(enc)
        assert np.abs(rec - coeffs).max() < 0.5  # within final quantizer
