"""Tests for multi-resolution reconstruction (thumbnails from the pyramid)."""

import numpy as np
import pytest

from repro.media.images import collaboration_scene, to_rgb
from repro.media.progressive import ProgressiveImage, ReceivedImage
from repro.media.wavelet import WaveletError, haar_dwt2, haar_idwt2_partial


class TestPartialInverse:
    def test_skip_zero_is_full_inverse(self):
        x = np.random.default_rng(0).uniform(0, 255, (32, 32))
        c = haar_dwt2(x, 4)
        assert np.allclose(haar_idwt2_partial(c, 4, 0), x)

    def test_shapes(self):
        x = np.zeros((64, 64))
        c = haar_dwt2(x, 4)
        for k in range(5):
            assert haar_idwt2_partial(c, 4, k).shape == (64 >> k, 64 >> k)

    def test_mean_preserved(self):
        x = collaboration_scene(64, 64).astype(float)
        c = haar_dwt2(x, 4)
        for k in (1, 2, 3):
            thumb = haar_idwt2_partial(c, 4, k)
            assert thumb.mean() == pytest.approx(x.mean(), rel=1e-9)

    def test_thumbnail_is_block_mean(self):
        """The Haar approximation at scale k equals the 2^k block mean."""
        x = collaboration_scene(32, 32).astype(float)
        c = haar_dwt2(x, 3)
        thumb = haar_idwt2_partial(c, 3, 1)
        blocks = x.reshape(16, 2, 16, 2).mean(axis=(1, 3))
        assert np.allclose(thumb, blocks)

    def test_bad_skip_rejected(self):
        c = haar_dwt2(np.zeros((16, 16)), 2)
        with pytest.raises(WaveletError):
            haar_idwt2_partial(c, 2, 3)
        with pytest.raises(WaveletError):
            haar_idwt2_partial(c, 2, -1)


class TestReceivedThumbnail:
    @pytest.fixture(scope="class")
    def received(self):
        img = collaboration_scene(64, 64)
        prog = ProgressiveImage(img, n_packets=16, target_bpp=2.2)
        rx = ReceivedImage(64, 64, 1, prog.levels, prog.t0_exps, 16)
        for p in prog.packets():
            rx.add_packet(p)
        return img, rx

    def test_thumbnail_shape_and_range(self, received):
        _, rx = received
        thumb = rx.thumbnail(scale_levels=2)
        assert thumb.shape == (16, 16)
        assert 0 <= thumb.min() and thumb.max() <= 255

    def test_thumbnail_resembles_downscaled_original(self, received):
        img, rx = received
        thumb = rx.thumbnail(scale_levels=2)
        ref = img.astype(float).reshape(16, 4, 16, 4).mean(axis=(1, 3))
        err = np.abs(thumb - ref).mean()
        assert err < 8.0  # near-lossless coding -> close block means

    def test_thumbnail_from_single_packet(self):
        """Thin clients get a usable thumbnail from just the first packet."""
        img = collaboration_scene(64, 64)
        prog = ProgressiveImage(img, n_packets=16, target_bpp=2.2)
        rx = ReceivedImage(64, 64, 1, prog.levels, prog.t0_exps, 16)
        rx.add_packet(prog.packets()[0])
        thumb = rx.thumbnail(scale_levels=3)
        ref = img.astype(float).reshape(8, 8, 8, 8).mean(axis=(1, 3))
        corr = np.corrcoef(thumb.ravel(), ref.ravel())[0, 1]
        assert corr > 0.9  # structurally faithful even at 1/16 of the bits

    def test_scale_clamped_to_levels(self, received):
        _, rx = received
        thumb = rx.thumbnail(scale_levels=99)
        assert thumb.shape == (64 >> rx.levels, 64 >> rx.levels)

    def test_color_thumbnail(self):
        img = to_rgb(collaboration_scene(64, 64))
        prog = ProgressiveImage(img, n_packets=8, target_bpp=6.0)
        rx = ReceivedImage(64, 64, 3, prog.levels, prog.t0_exps, 8)
        for p in prog.packets():
            rx.add_packet(p)
        thumb = rx.thumbnail(scale_levels=2)
        assert thumb.shape == (16, 16, 3)
