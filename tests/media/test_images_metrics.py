"""Tests for synthetic image generators and quality metrics."""

import numpy as np
import pytest

from repro.media.images import (
    ImageError,
    checkerboard,
    collaboration_scene,
    gaussian_blobs,
    gradient,
    to_rgb,
)
from repro.media.metrics import bpp, compression_ratio, mse, psnr, raw_bits


class TestGenerators:
    def test_dtypes_and_shapes(self):
        for img in (
            gradient(32, 48),
            checkerboard(32, 48),
            gaussian_blobs(32, 48),
            collaboration_scene(32, 48),
        ):
            assert img.dtype == np.uint8
            assert img.shape == (32, 48)

    def test_gradient_directions(self):
        h = gradient(32, 32, "horizontal")
        v = gradient(32, 32, "vertical")
        assert np.all(np.diff(h[0].astype(int)) >= 0)
        assert np.all(np.diff(v[:, 0].astype(int)) >= 0)
        with pytest.raises(ImageError):
            gradient(32, 32, "spiral")

    def test_checkerboard_cells(self):
        img = checkerboard(32, 32, cell=8)
        assert img[0, 0] != img[0, 8]
        assert img[0, 0] == img[8, 8]
        with pytest.raises(ImageError):
            checkerboard(32, 32, cell=0)

    def test_blobs_deterministic_by_seed(self):
        assert np.array_equal(gaussian_blobs(seed=5), gaussian_blobs(seed=5))
        assert not np.array_equal(gaussian_blobs(seed=5), gaussian_blobs(seed=6))

    def test_scene_has_structures(self):
        img = collaboration_scene(128, 128)
        assert img.max() > 200 and img.min() < 50  # disk and rectangle

    def test_too_small_rejected(self):
        with pytest.raises(ImageError):
            gradient(4, 4)

    def test_to_rgb(self):
        rgb = to_rgb(collaboration_scene(32, 32))
        assert rgb.shape == (32, 32, 3)
        assert rgb.dtype == np.uint8
        with pytest.raises(ImageError):
            to_rgb(rgb)


class TestMetrics:
    def test_mse_zero_for_identical(self):
        img = collaboration_scene(32, 32)
        assert mse(img, img) == 0.0

    def test_mse_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse(np.zeros((4, 4)), np.zeros((4, 5)))

    def test_psnr_infinite_for_identical(self):
        img = collaboration_scene(32, 32)
        assert psnr(img, img) == float("inf")

    def test_psnr_known_value(self):
        a = np.zeros((10, 10))
        b = np.full((10, 10), 255.0)
        assert psnr(a, b) == pytest.approx(0.0)

    def test_raw_bits(self):
        assert raw_bits((64, 64)) == 64 * 64 * 8
        assert raw_bits((64, 64, 3)) == 64 * 64 * 3 * 8

    def test_bpp_shares_pixel_denominator(self):
        assert bpp(6400, (64, 64)) == pytest.approx(6400 / 4096)
        # color channels don't change the denominator
        assert bpp(6400, (64, 64, 3)) == pytest.approx(6400 / 4096)

    def test_compression_ratio(self):
        assert compression_ratio(4096 * 8, (64, 64)) == pytest.approx(1.0)
        assert compression_ratio(0, (64, 64)) == float("inf")

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            bpp(100, (0, 64))
