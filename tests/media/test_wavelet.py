"""Tests for the 2-D Haar DWT."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.media.wavelet import (
    WaveletError,
    haar_dwt2,
    haar_idwt2,
    max_levels,
    subband_slices,
)


class TestShapes:
    def test_max_levels(self):
        assert max_levels((64, 64)) == 6
        assert max_levels((64, 48)) == 4
        assert max_levels((7, 8)) == 0

    def test_indivisible_shape_rejected(self):
        with pytest.raises(WaveletError):
            haar_dwt2(np.zeros((6, 8)), 2)

    def test_bad_levels_rejected(self):
        with pytest.raises(WaveletError):
            haar_dwt2(np.zeros((8, 8)), 0)

    def test_non_2d_rejected(self):
        with pytest.raises(WaveletError):
            haar_dwt2(np.zeros((8, 8, 3)), 1)


class TestTransform:
    def test_constant_image_concentrates_in_ll(self):
        x = np.full((8, 8), 5.0)
        c = haar_dwt2(x, 3)
        assert c[0, 0] == pytest.approx(5.0 * 8)  # orthonormal: mean * sqrt(N)
        assert np.allclose(c.ravel()[1:], 0.0)

    def test_energy_preserved(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(32, 32))
        c = haar_dwt2(x, 4)
        assert np.sum(c * c) == pytest.approx(np.sum(x * x))

    def test_perfect_reconstruction(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 255, (64, 64))
        for levels in (1, 2, 5):
            assert np.allclose(haar_idwt2(haar_dwt2(x, levels), levels), x)

    def test_linearity(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(16, 16))
        b = rng.normal(size=(16, 16))
        assert np.allclose(
            haar_dwt2(2 * a + 3 * b, 2),
            2 * haar_dwt2(a, 2) + 3 * haar_dwt2(b, 2),
        )

    @settings(max_examples=20)
    @given(st.integers(0, 10000))
    def test_roundtrip_property(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.uniform(-100, 100, (16, 16))
        assert np.allclose(haar_idwt2(haar_dwt2(x, 3), 3), x)

    def test_horizontal_edge_excites_lh(self):
        x = np.zeros((8, 8))
        x[:3, :] = 10.0  # boundary splits a 2x2 analysis block -> LH detail
        c = haar_dwt2(x, 1)
        bands = subband_slices((8, 8), 1)
        assert np.abs(c[bands["LH1"]]).sum() > 0
        assert np.abs(c[bands["HL1"]]).sum() == pytest.approx(0.0)


class TestSubbandSlices:
    def test_partition_covers_everything_once(self):
        shape = (32, 32)
        slices = subband_slices(shape, 3)
        cover = np.zeros(shape, dtype=int)
        for sl in slices.values():
            cover[sl] += 1
        assert np.all(cover == 1)

    def test_ll_is_smallest_corner(self):
        slices = subband_slices((64, 64), 4)
        ll = slices["LL"]
        assert ll == (slice(0, 4), slice(0, 4))
