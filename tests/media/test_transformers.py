"""Tests for the information-transformer registry."""

import numpy as np
import pytest

from repro.media.images import collaboration_scene
from repro.media.sketch import Sketch
from repro.media.speech import SpeechClip
from repro.media.transformers import (
    Modality,
    TransformError,
    Transformer,
    TransformerRegistry,
    default_registry,
)


@pytest.fixture(scope="module")
def reg():
    return default_registry()


class TestRegistry:
    def test_default_modules_present(self, reg):
        names = {t.name for t in reg.transformers}
        assert {
            "image-to-sketch",
            "image-to-text",
            "text-to-speech",
            "speech-to-text",
        } <= names

    def test_direct_edge_lookup(self, reg):
        t = reg.get(Modality.TEXT, Modality.SPEECH)
        assert t is not None and t.name == "text-to-speech"
        assert reg.get(Modality.SPEECH, Modality.IMAGE) is None

    def test_register_replaces_edge(self):
        r = TransformerRegistry()
        r.register(Transformer("a", Modality.TEXT, Modality.SPEECH, lambda x: 1))
        r.register(Transformer("b", Modality.TEXT, Modality.SPEECH, lambda x: 2))
        assert len(r.transformers) == 1
        assert r.transformers[0].name == "b"


class TestPlanning:
    def test_same_modality_empty_plan(self, reg):
        assert reg.plan(Modality.TEXT, Modality.TEXT) == []

    def test_single_hop(self, reg):
        plan = reg.plan(Modality.TEXT, Modality.SPEECH)
        assert [t.name for t in plan] == ["text-to-speech"]

    def test_multi_hop_cheapest(self, reg):
        plan = reg.plan(Modality.IMAGE, Modality.SPEECH)
        assert [t.name for t in plan] == ["image-to-text", "text-to-speech"]

    def test_no_chain_raises(self, reg):
        # nothing produces IMAGE
        with pytest.raises(TransformError):
            reg.plan(Modality.SPEECH, Modality.IMAGE)

    def test_can_transform(self, reg):
        assert reg.can_transform(Modality.IMAGE, Modality.SPEECH)
        assert not reg.can_transform(Modality.TEXT, Modality.IMAGE)

    def test_cost_steers_choice(self):
        r = TransformerRegistry()
        r.register(Transformer("direct", Modality.IMAGE, Modality.SPEECH, lambda x: "d", cost=10.0))
        r.register(Transformer("i2t", Modality.IMAGE, Modality.TEXT, lambda x: "t", cost=1.0))
        r.register(Transformer("t2s", Modality.TEXT, Modality.SPEECH, lambda x: "s", cost=1.0))
        assert [t.name for t in r.plan(Modality.IMAGE, Modality.SPEECH)] == ["i2t", "t2s"]


class TestApply:
    def test_image_to_sketch(self, reg):
        out = reg.apply(collaboration_scene(64, 64), Modality.IMAGE, Modality.SKETCH)
        assert isinstance(out, Sketch)

    def test_image_to_text(self, reg):
        out = reg.apply(collaboration_scene(64, 64), Modality.IMAGE, Modality.TEXT)
        assert isinstance(out, str) and "64x64" in out

    def test_image_to_speech_chain(self, reg):
        out = reg.apply(collaboration_scene(64, 64), Modality.IMAGE, Modality.SPEECH)
        assert isinstance(out, SpeechClip)
        assert out.duration > 0

    def test_speech_text_roundtrip_via_registry(self, reg):
        clip = reg.apply("status ok", Modality.TEXT, Modality.SPEECH)
        back = reg.apply(clip, Modality.SPEECH, Modality.TEXT)
        assert back == "status ok"

    def test_module_failure_wrapped(self):
        r = TransformerRegistry()
        r.register(
            Transformer("boom", Modality.TEXT, Modality.SPEECH, lambda x: 1 / 0)
        )
        with pytest.raises(TransformError):
            r.apply("x", Modality.TEXT, Modality.SPEECH)
