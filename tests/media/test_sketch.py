"""Tests for sketch extraction and its wire codec."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.media.images import collaboration_scene, gradient, to_rgb
from repro.media.sketch import (
    SketchError,
    _rle_decode,
    _rle_encode,
    decode_sketch,
    extract_sketch,
    sobel_magnitude,
)


class TestSobel:
    def test_flat_image_no_gradient(self):
        mag = sobel_magnitude(np.full((16, 16), 100.0))
        assert np.allclose(mag, 0.0)

    def test_vertical_edge_detected(self):
        img = np.zeros((16, 16))
        img[:, 8:] = 255.0
        mag = sobel_magnitude(img)
        assert mag[:, 7:9].max() > 0
        assert np.allclose(mag[:, :4], 0.0)

    def test_color_collapsed_to_gray(self):
        rgb = to_rgb(collaboration_scene(32, 32))
        assert sobel_magnitude(rgb).shape == (32, 32)

    def test_bad_ndim(self):
        with pytest.raises(SketchError):
            sobel_magnitude(np.zeros(10))


class TestExtract:
    def test_scene_produces_features(self):
        sk = extract_sketch(collaboration_scene(128, 128))
        assert 0.0 < sk.mask.mean() < 0.5  # sparse but non-empty

    def test_reduction_factor_2000x_regime(self):
        """The paper's 'up to 2000 times lesser data' claim."""
        sk = extract_sketch(to_rgb(collaboration_scene(256, 256)))
        assert sk.reduction_factor() > 2000.0

    def test_larger_images_reduce_more(self):
        small = extract_sketch(to_rgb(collaboration_scene(128, 128)))
        large = extract_sketch(to_rgb(collaboration_scene(512, 512)))
        assert large.reduction_factor() > small.reduction_factor()

    def test_explicit_downsample(self):
        sk = extract_sketch(collaboration_scene(64, 64), downsample=2)
        assert sk.shape == (32, 32)

    def test_downsample_too_large_rejected(self):
        with pytest.raises(SketchError):
            extract_sketch(collaboration_scene(32, 32), downsample=16)

    def test_bad_percentile(self):
        with pytest.raises(SketchError):
            extract_sketch(collaboration_scene(32, 32), edge_percentile=40.0)

    def test_to_image(self):
        sk = extract_sketch(collaboration_scene(64, 64))
        img = sk.to_image()
        assert img.dtype == np.uint8
        assert set(np.unique(img)) <= {0, 255}


class TestWireCodec:
    def test_roundtrip(self):
        sk = extract_sketch(collaboration_scene(128, 128))
        rt = decode_sketch(sk.encoded, sk.shape, sk.source_shape)
        assert np.array_equal(rt.mask, sk.mask)

    def test_empty_encoding_rejected(self):
        with pytest.raises(SketchError):
            decode_sketch(b"", (4, 4), (16, 16))

    def test_unknown_format_rejected(self):
        with pytest.raises(SketchError):
            decode_sketch(b"Zxxxx", (4, 4), (16, 16))

    @settings(max_examples=50)
    @given(st.lists(st.booleans(), min_size=1, max_size=300))
    def test_rle_roundtrip_property(self, bits):
        arr = np.array(bits, dtype=bool)
        assert np.array_equal(_rle_decode(_rle_encode(arr), arr.size), arr)

    def test_rle_truncation_detected(self):
        data = _rle_encode(np.array([True] * 10))
        with pytest.raises(SketchError):
            _rle_decode(data, 100)  # declared size exceeds stream

    def test_rle_overrun_detected(self):
        data = _rle_encode(np.array([True] * 10))
        with pytest.raises(SketchError):
            _rle_decode(data, 5)  # run exceeds declared size
