"""Tests for progressive packetization and receiver assembly."""

import numpy as np
import pytest

from repro.media.images import collaboration_scene, to_rgb
from repro.media.progressive import (
    PACKET_COUNTS,
    ImagePacket,
    ProgressiveImage,
    ReceivedImage,
)


@pytest.fixture(scope="module")
def gray_prog():
    return ProgressiveImage(collaboration_scene(64, 64), n_packets=16, target_bpp=2.2)


@pytest.fixture(scope="module")
def color_prog():
    return ProgressiveImage(
        to_rgb(collaboration_scene(64, 64)), n_packets=16, target_bpp=14.3
    )


class TestPacketization:
    def test_packet_count(self, gray_prog):
        assert len(gray_prog.packets()) == 16

    def test_bits_partition_stream(self, gray_prog):
        pkts = gray_prog.packets()
        assert sum(p.n_bits for p in pkts) == gray_prog.total_bits

    def test_color_packets_carry_three_chunks(self, color_prog):
        for p in color_prog.packets():
            assert len(p.chunks) == 3

    def test_wire_roundtrip(self, gray_prog):
        p = gray_prog.packets()[5]
        rt = ImagePacket.from_bytes(p.to_bytes())
        assert rt.index == p.index
        assert rt.total == p.total
        assert rt.chunks == p.chunks

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ProgressiveImage(collaboration_scene(64, 64), n_packets=0)
        with pytest.raises(ValueError):
            ProgressiveImage(np.zeros((2, 2, 2, 2)))


class TestReports:
    def test_bpp_scales_with_packets(self, gray_prog):
        reports = gray_prog.reports(PACKET_COUNTS)
        bpps = [r.bpp for r in reports]
        assert bpps == sorted(bpps)
        assert reports[-1].bpp == pytest.approx(2.2, rel=0.05)

    def test_compression_ratio_inverse_of_bpp(self, gray_prog):
        r = gray_prog.report(16)
        assert r.compression_ratio == pytest.approx(8.0 / r.bpp, rel=1e-6)

    def test_color_cr_uses_24bpp_raw(self, color_prog):
        r = color_prog.report(16)
        assert r.compression_ratio == pytest.approx(24.0 / r.bpp, rel=1e-6)

    def test_psnr_improves_with_packets(self, gray_prog):
        reports = gray_prog.reports((1, 4, 16))
        assert reports[0].psnr_db < reports[1].psnr_db < reports[2].psnr_db

    def test_zero_packets(self, gray_prog):
        r = gray_prog.report(0)
        assert r.bits_used == 0
        assert r.compression_ratio == float("inf")

    def test_out_of_range_clamped(self, gray_prog):
        assert gray_prog.report(99).packets_used == 16


class TestReceivedImage:
    def test_full_reception_matches_sender_reconstruction(self, gray_prog):
        rx = ReceivedImage(64, 64, 1, gray_prog.levels, gray_prog.t0_exps, 16)
        for p in gray_prog.packets():
            rx.add_packet(p)
        assert rx.usable_prefix == 16
        assert np.allclose(rx.reconstruct(), gray_prog.reconstruct(16))

    def test_gap_limits_usable_prefix(self, gray_prog):
        rx = ReceivedImage(64, 64, 1, gray_prog.levels, gray_prog.t0_exps, 16)
        pkts = gray_prog.packets()
        for i in (0, 1, 2, 5, 6):
            rx.add_packet(pkts[i])
        assert rx.received == 5
        assert rx.usable_prefix == 3

    def test_gap_fill_extends_prefix(self, gray_prog):
        rx = ReceivedImage(64, 64, 1, gray_prog.levels, gray_prog.t0_exps, 16)
        pkts = gray_prog.packets()
        for i in (0, 1, 3):
            rx.add_packet(pkts[i])
        assert rx.usable_prefix == 2
        rx.add_packet(pkts[2])
        assert rx.usable_prefix == 4

    def test_duplicates_idempotent(self, gray_prog):
        rx = ReceivedImage(64, 64, 1, gray_prog.levels, gray_prog.t0_exps, 16)
        p0 = gray_prog.packets()[0]
        rx.add_packet(p0)
        rx.add_packet(p0)
        assert rx.received == 1

    def test_mismatched_total_rejected(self, gray_prog):
        rx = ReceivedImage(64, 64, 1, gray_prog.levels, gray_prog.t0_exps, 8)
        with pytest.raises(ValueError):
            rx.add_packet(gray_prog.packets()[0])

    def test_channel_count_validation(self, gray_prog):
        with pytest.raises(ValueError):
            ReceivedImage(64, 64, 3, gray_prog.levels, gray_prog.t0_exps, 16)

    def test_color_reception(self, color_prog):
        img = color_prog.image
        rx = ReceivedImage(64, 64, 3, color_prog.levels, color_prog.t0_exps, 16)
        for p in color_prog.packets()[:8]:
            rx.add_packet(p)
        rep = rx.report(original=img)
        assert rep.packets_used == 8
        assert rep.psnr_db > 20.0

    def test_report_without_original_has_nan_psnr(self, gray_prog):
        rx = ReceivedImage(64, 64, 1, gray_prog.levels, gray_prog.t0_exps, 16)
        rx.add_packet(gray_prog.packets()[0])
        assert np.isnan(rx.report().psnr_db)
