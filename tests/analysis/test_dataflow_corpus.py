"""Golden corpus for the dataflow rules — every known-bad snippet must fire.

Mirrors :mod:`tests.analysis.test_corpus`: each entry is a minimal program
exhibiting one cross-layer bug class from the issue (mixed units, dB for
linear, mis-scaled gauges, exceptions crossing dispatch boundaries, socket
lifecycle misuse) paired with the rule code the verifier must raise.  The
flip side — clean idioms must NOT fire — is enforced alongside.
"""

import pytest

from repro.analysis import (
    build_call_graph_from_sources,
    compute_escaping_exceptions,
    compute_return_units,
    dataflow_diagnostics,
)


def codes_for(*sources):
    graph = build_call_graph_from_sources(list(sources))
    return {d.code for d in dataflow_diagnostics(graph)}


def diags_for(*sources):
    graph = build_call_graph_from_sources(list(sources))
    return dataflow_diagnostics(graph)


# ----------------------------------------------------------------------
# UNI: unit corpus
# ----------------------------------------------------------------------
BAD_UNITS = [
    (
        "cross-dimension-arithmetic",
        "def combine(delay_ms, size_bytes):\n"
        "    return delay_ms + size_bytes\n",
        "UNI001",
    ),
    (
        "db-for-linear-argument",
        # from_db (registry: wireless/sir.py) wants a dB argument; gamma
        # is conventionally a linear ratio in this tree
        "def bad(gamma):\n"
        "    return from_db(gamma)\n",
        "UNI002",
    ),
    (
        "rate-mix-bps-kbps",
        "def total(rate_bps, rate_kbps):\n"
        "    return rate_bps + rate_kbps\n",
        "UNI003",
    ),
    (
        "bandwidth-gauge-delivered-raw",
        # the TASSL linkBandwidth gauge is bytes/s on the wire: delivering
        # it under a `_bps` key without the *8 is the netstate bug class
        "def register(ns, TASSL, Probe):\n"
        '    ns.add_probe(Probe("h", TASSL.linkBandwidth, "bandwidth_bps"))\n',
        "UNI003",
    ),
    (
        "milliseconds-into-scheduler",
        "class Scheduler:\n"
        "    def call_after(self, delay, fn):\n"
        "        pass\n"
        "def arm(timeout_ms, fn):\n"
        "    sched = Scheduler()\n"
        "    sched.call_after(timeout_ms, fn)\n",
        "UNI004",
    ),
    (
        "latency-gauge-wrong-scale",
        # seconds -> microseconds needs 1e6, not 1e3
        "def bind(tree, TASSL, Gauge32, link):\n"
        "    tree.register_callable(\n"
        "        TASSL.linkLatencyUs, lambda: Gauge32(link.latency * 1000.0)\n"
        "    )\n",
        "UNI004",
    ),
    (
        "bytes-vs-bits-arithmetic",
        "def pad(header_bytes, body_bits):\n"
        "    return header_bytes - body_bits\n",
        "UNI005",
    ),
    (
        "declared-unit-vs-assigned-unit",
        "def sample(poll_interval_sec):\n"
        "    wait_ms = poll_interval_sec\n"
        "    return wait_ms\n",
        "UNI004",
    ),
]


@pytest.mark.parametrize("name,src,code", BAD_UNITS, ids=[c[0] for c in BAD_UNITS])
def test_bad_units_flagged(name, src, code):
    codes = codes_for(("corpus/units.py", src))
    assert code in codes, f"{name}: expected {code}, got {codes}"


GOOD_UNITS = [
    (
        "same-unit-arithmetic",
        "def total(first_bps, second_bps):\n"
        "    return first_bps + second_bps\n",
    ),
    (
        "explicit-conversion-through-registry",
        # to_db returns dB, and the variable says so: consistent
        "def convert(gamma):\n"
        "    sir_db = to_db(gamma)\n"
        "    return sir_db\n",
    ),
    (
        "bandwidth-gauge-with-correct-factor",
        "def register(ns, TASSL, Probe):\n"
        "    ns.add_probe(Probe(\n"
        '        "h", TASSL.linkBandwidth, "bandwidth_bps", lambda v: v * 8.0\n'
        "    ))\n",
    ),
    (
        "dimensionless-literals-mix-freely",
        "def scale(rate_bps):\n"
        "    return rate_bps + 1\n",
    ),
]


@pytest.mark.parametrize("name,src", GOOD_UNITS, ids=[c[0] for c in GOOD_UNITS])
def test_clean_units_not_flagged(name, src):
    codes = codes_for(("corpus/units.py", src))
    assert not {c for c in codes if c.startswith("UNI")}, f"{name}: {codes}"


def test_return_unit_summaries_propagate():
    graph = build_call_graph_from_sources(
        [
            (
                "corpus/units.py",
                "def headroom(margin_db):\n"
                "    return margin_db\n"
                "def floor(margin_db):\n"
                "    threshold = headroom(margin_db)\n"
                "    return threshold\n",
            )
        ]
    )
    units = compute_return_units(graph)
    assert units["units.headroom"] == "dB"
    assert units["units.floor"] == "dB"


# ----------------------------------------------------------------------
# EXC: exception-flow corpus
# ----------------------------------------------------------------------
_WIRE_PRELUDE = (
    "class WireError(Exception):\n"
    "    pass\n"
    "def parse(data):\n"
    "    if not data:\n"
    '        raise WireError("empty")\n'
    "    return data\n"
)

BAD_EXC = [
    (
        "codec-error-escapes-delivery-callback",
        _WIRE_PRELUDE
        + "def deliver(data, src):\n"
        "    parse(data)\n"
        "def attach(sock):\n"
        "    sock.on_receive = deliver\n",
        "EXC001",
    ),
    (
        "subclassed-wire-error-escapes-kwarg-callback",
        _WIRE_PRELUDE
        + "class RtpError(WireError):\n"
        "    pass\n"
        "def ingest(data):\n"
        '    raise RtpError("short fragment")\n'
        "def deliver(data, src):\n"
        "    ingest(data)\n"
        "def attach(Reassembler):\n"
        "    return Reassembler(on_payload=deliver)\n",
        "EXC001",
    ),
    (
        "scheduler-callback-raises",
        "def tick():\n"
        '    raise ValueError("boom")\n'
        "def arm(sched):\n"
        "    sched.call_after(1.0, tick)\n",
        "EXC002",
    ),
    (
        "silent-swallow-on-dispatch-path",
        "def pump(queue):\n"
        "    for item in queue:\n"
        "        try:\n"
        "            item.fire()\n"
        "        except Exception:\n"
        "            pass\n",
        "EXC003",
    ),
]


@pytest.mark.parametrize("name,src,code", BAD_EXC, ids=[c[0] for c in BAD_EXC])
def test_bad_exception_flow_flagged(name, src, code):
    # EXC003 only applies on dispatch-path files, so place the corpus there
    codes = codes_for(("corpus/messaging/pump.py", src))
    assert code in codes, f"{name}: expected {code}, got {codes}"


GOOD_EXC = [
    (
        "guarded-delivery-callback",
        _WIRE_PRELUDE
        + "def deliver(data, src):\n"
        "    try:\n"
        "        parse(data)\n"
        "    except WireError:\n"
        "        return\n"
        "def attach(sock):\n"
        "    sock.on_receive = deliver\n",
    ),
    (
        "counting-handler-is-not-a-swallow",
        "def pump(state, queue):\n"
        "    for item in queue:\n"
        "        try:\n"
        "            item.fire()\n"
        "        except Exception:\n"
        "            state.failures += 1\n",
    ),
    (
        "narrow-handler-outside-dispatch-path-may-pass",
        "def probe(item):\n"
        "    try:\n"
        "        item.fire()\n"
        "    except KeyError:\n"
        "        pass\n",
    ),
]


@pytest.mark.parametrize("name,src", GOOD_EXC, ids=[c[0] for c in GOOD_EXC])
def test_clean_exception_flow_not_flagged(name, src):
    codes = codes_for(("corpus/messaging/pump.py", src))
    assert not {c for c in codes if c.startswith("EXC")}, f"{name}: {codes}"


def test_escape_summaries_cross_try_boundaries():
    graph = build_call_graph_from_sources(
        [
            (
                "corpus/esc.py",
                _WIRE_PRELUDE
                + "def guarded(data):\n"
                "    try:\n"
                "        parse(data)\n"
                "    except WireError:\n"
                "        return None\n"
                "def unguarded(data):\n"
                "    return parse(data)\n",
            )
        ]
    )
    escapes = compute_escaping_exceptions(graph)
    assert "WireError" in escapes["esc.parse"]
    assert "WireError" in escapes["esc.unguarded"]
    assert "WireError" not in escapes["esc.guarded"]


# ----------------------------------------------------------------------
# RES: resource-lifecycle corpus
# ----------------------------------------------------------------------
BAD_RES = [
    (
        "never-closed-local",
        "def probe_once(net):\n"
        '    sock = DatagramSocket(net, "a")\n'
        "    sock.bind(7)\n",
        "RES001",
    ),
    (
        "closed-on-some-paths-only",
        "def maybe(net, flag):\n"
        '    sock = DatagramSocket(net, "a")\n'
        "    if flag:\n"
        "        sock.close()\n",
        "RES001",
    ),
    (
        "leak-if-send-raises",
        "def poll(net):\n"
        '    sock = DatagramSocket(net, "a")\n'
        '    sock.sendto(b"x", ("b", 7))\n'
        "    sock.close()\n",
        "RES001",
    ),
    (
        "double-close",
        "def twice(net):\n"
        '    sock = DatagramSocket(net, "a")\n'
        "    sock.close()\n"
        "    sock.close()\n",
        "RES002",
    ),
    (
        "leave-then-close-multicast",
        "def both(net, group):\n"
        '    sock = MulticastSocket(net, "a", group)\n'
        "    sock.leave()\n"
        "    sock.close()\n",
        "RES002",
    ),
    (
        "use-after-close",
        "def late(net):\n"
        '    sock = DatagramSocket(net, "a")\n'
        "    sock.close()\n"
        '    sock.sendto(b"x", ("b", 7))\n',
        "RES003",
    ),
]


@pytest.mark.parametrize("name,src,code", BAD_RES, ids=[c[0] for c in BAD_RES])
def test_bad_lifecycle_flagged(name, src, code):
    codes = codes_for(("corpus/res.py", src))
    assert code in codes, f"{name}: expected {code}, got {codes}"


GOOD_RES = [
    (
        "close-in-finally",
        "def poll(net):\n"
        '    sock = DatagramSocket(net, "a")\n'
        "    try:\n"
        '        sock.sendto(b"x", ("b", 7))\n'
        "    finally:\n"
        "        sock.close()\n",
    ),
    (
        "ownership-escapes-by-return",
        "def make(net):\n"
        '    sock = DatagramSocket(net, "a")\n'
        "    return sock\n",
    ),
    (
        "ownership-escapes-into-structure",
        "def pool(net, registry):\n"
        '    sock = DatagramSocket(net, "a")\n'
        "    registry.adopt(sock)\n",
    ),
    (
        "close-both-branches",
        "def either(net, flag):\n"
        '    sock = DatagramSocket(net, "a")\n'
        "    if flag:\n"
        "        sock.close()\n"
        "    else:\n"
        "        sock.close()\n",
    ),
]


@pytest.mark.parametrize("name,src", GOOD_RES, ids=[c[0] for c in GOOD_RES])
def test_clean_lifecycle_not_flagged(name, src):
    codes = codes_for(("corpus/res.py", src))
    assert not {c for c in codes if c.startswith("RES")}, f"{name}: {codes}"


# ----------------------------------------------------------------------
# suppression + severity plumbing
# ----------------------------------------------------------------------
def test_inline_suppression_silences_one_finding():
    src = (
        "def twice(net):\n"
        '    sock = DatagramSocket(net, "a")\n'
        "    sock.close()\n"
        "    sock.close()  # repro: ignore[RES002]\n"
    )
    assert "RES002" not in codes_for(("corpus/res.py", src))


def test_findings_carry_location_and_severity():
    src = (
        "def late(net):\n"
        '    sock = DatagramSocket(net, "a")\n'
        "    sock.close()\n"
        '    sock.sendto(b"x", ("b", 7))\n'
    )
    (diag,) = [d for d in diags_for(("corpus/res.py", src)) if d.code == "RES003"]
    assert diag.file == "corpus/res.py"
    assert diag.line == 4
    assert diag.severity.name == "ERROR"
