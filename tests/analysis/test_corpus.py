"""The seeded corpus of known-bad configs — every case must be flagged.

This is the analyzer's acceptance gate: each entry is a configuration
bug class named in the issue (unsatisfiable selector, tautology, type
conflict, overlapping SIR tiers, non-monotone step thresholds, transform
cycle, contract/policy contradiction, ...) paired with the rule code the
analyzer must raise for it.  The flip side is also enforced here: the
shipped defaults and examples must produce **zero error-severity**
diagnostics.
"""

import os

import pytest

from repro.analysis import (
    Severity,
    analyze_defaults,
    lint_contract_against,
    lint_policy_database,
    lint_profile,
    lint_sir_policy,
    lint_step_policy,
    run_analysis,
    selector_diagnostics,
)
from repro.core.contracts import Constraint, QoSContract
from repro.core.policies import PolicyDatabase, SirTierPolicy, StepPolicy
from repro.core.profiles import ClientProfile, TransformRule

REPO_ROOT = os.path.normpath(os.path.join(os.path.dirname(__file__), "..", ".."))


# ----------------------------------------------------------------------
# selector corpus
# ----------------------------------------------------------------------
BAD_SELECTORS = [
    # (case name, selector text, expected rule code)
    ("unsatisfiable-interval", "load > 80 and load < 20", "SEL001"),
    ("unsatisfiable-equalities", "role == 'medic' and role == 'clerk'", "SEL001"),
    ("unsatisfiable-membership", "enc in ['mpeg2', 'jpeg'] and enc == 'h261'", "SEL001"),
    ("unsatisfiable-presence", "not exists(battery) and battery > 10", "SEL001"),
    ("unsatisfiable-bool", "wireless and not wireless", "SEL001"),
    ("unsatisfiable-contains", "caps contains 'jpeg' and not caps contains 'jpeg'", "SEL001"),
    ("tautology-excluded-middle", "load >= 50 or not load >= 50", "SEL002"),
    ("tautology-constant", "x == 1 or true", "SEL002"),
    ("type-conflict-num-str", "size > 100 and size == 'large'", "SEL003"),
    ("type-conflict-list-scalar", "caps contains 'jpeg' and caps == 'jpeg'", "SEL003"),
    ("syntax-error", "role == ", "SEL006"),
    ("syntax-bad-char", "role == @medic", "SEL006"),
]


@pytest.mark.parametrize("name,text,code", BAD_SELECTORS, ids=[c[0] for c in BAD_SELECTORS])
def test_bad_selector_flagged(name, text, code):
    codes = {d.code for d in selector_diagnostics(text)}
    assert code in codes, f"{name}: expected {code}, got {codes}"


# ----------------------------------------------------------------------
# policy / contract / transform corpus
# ----------------------------------------------------------------------
def test_non_monotone_step_thresholds_flagged():
    policy = StepPolicy("cpu_load", "packets", [(44, 16), (58, 1), (72, 8)], floor=2)
    codes = {d.code for d in lint_step_policy(policy, "zigzag")}
    assert "POL001" in codes


def test_unreachable_step_threshold_flagged():
    policy = StepPolicy("cpu_load", "packets", [(44, 8), (58, 8), (72, 4)], floor=1)
    codes = {d.code for d in lint_step_policy(policy, "flat-band")}
    assert "POL002" in codes


def test_packet_value_outside_paper_set_flagged():
    policy = StepPolicy("page_faults", "packets", [(50, 12), (70, 3)], floor=1)
    diags = lint_step_policy(policy, "off-grid")
    assert any(d.code == "POL003" and d.severity is Severity.ERROR for d in diags)


def test_overlapping_sir_tiers_flagged():
    collapsed = SirTierPolicy(image_db=4.0, sketch_db=4.0, text_db=-6.0)
    diags = lint_sir_policy(collapsed)
    assert any(d.code == "POL004" and d.severity is Severity.ERROR for d in diags)
    both = SirTierPolicy(image_db=0.0, sketch_db=0.0, text_db=0.0)
    assert len([d for d in lint_sir_policy(both) if d.code == "POL004"]) == 2


def test_contract_policy_contradiction_flagged():
    db = PolicyDatabase()
    db.add_step("cpu", StepPolicy("cpu_load", "packets", [(44, 16), (58, 8)], floor=1))
    # policies can produce {16, 8, 1} (plus the 16 full budget); [3, 5] is
    # unreachable -> permanently violated contract
    contract = QoSContract("strict-viewer", [Constraint("packets", minimum=3, maximum=5)])
    diags = lint_contract_against(contract, db)
    assert any(d.code == "POL005" and d.severity is Severity.ERROR for d in diags)


def test_contract_unknown_parameter_noted():
    db = PolicyDatabase()
    db.add_step("cpu", StepPolicy("cpu_load", "packets", [(44, 16)], floor=1))
    contract = QoSContract("typo", [Constraint("packtes", minimum=1)])
    assert any(d.code == "POL006" for d in lint_contract_against(contract, db))


def test_transform_cycle_flagged():
    profile = ClientProfile(
        "looper",
        interest="kind == 'image'",
        transforms=[
            TransformRule("encoding", "mpeg2", "jpeg"),
            TransformRule("encoding", "jpeg", "mpeg2"),
        ],
    )
    assert any(d.code == "PRO001" for d in lint_profile(profile))


def test_dead_transform_rule_flagged():
    # interest only ever accepts jpeg; a rule producing 'png' that nothing
    # consumes can never make a message acceptable
    profile = ClientProfile(
        "deadend",
        interest="encoding == 'jpeg'",
        transforms=[TransformRule("encoding", "mpeg2", "png")],
    )
    assert any(d.code == "PRO002" for d in lint_profile(profile))


def test_chained_transform_rule_not_flagged_dead():
    # mpeg2 -> png -> jpeg: the first rule feeds the second, which the
    # interest accepts; neither is dead
    profile = ClientProfile(
        "chain",
        interest="encoding == 'jpeg'",
        transforms=[
            TransformRule("encoding", "mpeg2", "png"),
            TransformRule("encoding", "png", "jpeg"),
        ],
    )
    assert not any(d.code == "PRO002" for d in lint_profile(profile))


def test_noop_transform_rule_flagged():
    profile = ClientProfile(
        "noop", transforms=[TransformRule("encoding", "jpeg", "jpeg")]
    )
    assert any(d.code == "PRO003" for d in lint_profile(profile))


def test_unsatisfiable_interest_flagged_on_profile():
    profile = ClientProfile("nobody", interest="load > 80 and load < 20")
    diags = lint_profile(profile)
    assert any(d.code == "SEL001" and d.severity is Severity.ERROR for d in diags)


# ----------------------------------------------------------------------
# the corpus has at least 10 distinct bug classes
# ----------------------------------------------------------------------
def test_corpus_breadth():
    classes = {code for _, _, code in BAD_SELECTORS}
    classes.update({"POL001", "POL002", "POL003", "POL004", "POL005", "PRO001", "PRO002"})
    assert len(classes) >= 10


# ----------------------------------------------------------------------
# shipped defaults and examples are clean
# ----------------------------------------------------------------------
def test_default_policy_database_is_clean():
    assert analyze_defaults() == []


def test_shipped_tree_has_zero_error_diagnostics():
    paths = [
        os.path.join(REPO_ROOT, "src", "repro"),
        os.path.join(REPO_ROOT, "examples"),
    ]
    report = run_analysis([p for p in paths if os.path.exists(p)])
    assert report.errors == (), "\n".join(d.format() for d in report.errors)


def test_default_database_lint_method_clean():
    db = PolicyDatabase()
    from repro.core.policies import (
        default_bandwidth_policy,
        default_cpu_load_policy,
        default_page_fault_policy,
    )

    db.add_step("page-faults", default_page_fault_policy())
    db.add_step("cpu-load", default_cpu_load_policy())
    db.add_step("bandwidth", default_bandwidth_policy())
    contract = QoSContract("viewer", [Constraint("packets", minimum=1)])
    diags = db.lint(contracts=[contract])
    assert [d for d in diags if d.severity is Severity.ERROR] == []
