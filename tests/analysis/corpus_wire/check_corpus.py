"""Golden-corpus gate: the known-bad wire-format corpus must produce
exactly the expected WIRE diagnostics, and the known-good twins none at
all.

CI runs this after the main analyzer gate::

    python tests/analysis/corpus_wire/check_corpus.py

Regenerate the expectation with ``--update``.  The actual driver lives
in :mod:`tests.analysis.corpus_common`.
"""

import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(HERE, ".."))

from corpus_common import run_corpus_gate  # noqa: E402

if __name__ == "__main__":
    sys.exit(
        run_corpus_gate(
            sys.argv[1:],
            here=HERE,
            family="wire",
            analyzer_name="analyze_wireformat",
            clean_files=("wire_clean.py",),
        )
    )
