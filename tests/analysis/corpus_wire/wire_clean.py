"""Known-good twins of ``wire_bad.py``: every violation corrected.

The corpus gate insists this file stays silent — the rules must not
regress into flagging symmetric, bounds-checked, deterministic codecs.
"""

import struct

GOOD_FRAME_MAGIC = b"GF"
GOOD_TELEMETRY_MAGIC = b"GT"


class WireCleanError(ValueError):
    pass


class GoodHeader:
    """Symmetric twin of ``BadHeader``: both sides agree on ``>BH``.

    The leading field is a single byte (< the 2-byte magic width used by
    :class:`GoodFrame`), so magic dispatch cannot mis-claim a header.
    """

    def __init__(self, kind: int, flags: int) -> None:
        self.kind = kind
        self.flags = flags

    def to_bytes(self) -> bytes:
        return struct.pack(">BH", self.kind, self.flags)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "GoodHeader":
        if len(raw) < 3:
            raise WireCleanError("truncated header")
        kind, flags = struct.unpack_from(">BH", raw, 0)
        return cls(kind, flags)


def encode_beacon(kind: int, value: int) -> bytes:
    return struct.pack(">B", kind) + struct.pack(">I", value)


def decode_beacon(raw: bytes) -> tuple:
    """Guarded twin of ``decode_probe``: bounds checked before reading."""
    if len(raw) < 5:
        raise WireCleanError("truncated beacon")
    kind = raw[0]
    (value,) = struct.unpack_from(">I", raw, 1)
    return kind, value


def encode_ledger(rows: list) -> bytes:
    """The length prefix and the loop agree on ``rows`` (one-byte count
    so the leading field stays under the module's magic width)."""
    out = bytearray()
    out += struct.pack(">B", len(rows))
    for value in rows:
        out += struct.pack(">I", value)
    return bytes(out)


def decode_ledger(raw: bytes) -> list:
    if len(raw) < 1:
        raise WireCleanError("truncated ledger")
    (count,) = struct.unpack_from(">B", raw, 0)
    values = []
    pos = 1
    for _ in range(count):
        if pos + 4 > len(raw):
            raise WireCleanError("truncated row")
        (value,) = struct.unpack_from(">I", raw, pos)
        values.append(value)
        pos += 4
    return values


class GoodFrame:
    """Magic dispatch is safe here: every peer codec leads with its own
    distinct magic, not a variable field."""

    def __init__(self, seq: int) -> None:
        self.seq = seq

    def to_bytes(self) -> bytes:
        return GOOD_FRAME_MAGIC + struct.pack(">H", self.seq)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "GoodFrame":
        if len(raw) != 4:
            raise WireCleanError("bad frame length")
        if raw[:2] != GOOD_FRAME_MAGIC:
            raise WireCleanError("bad frame magic")
        (seq,) = struct.unpack_from(">H", raw, 2)
        return cls(seq)


class GoodTelemetry:
    """Twin of ``Telemetry``: a magic prefix removes the collision."""

    def __init__(self, source: int, value: int) -> None:
        self.source = source
        self.value = value

    def to_bytes(self) -> bytes:
        return GOOD_TELEMETRY_MAGIC + struct.pack(">II", self.source, self.value)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "GoodTelemetry":
        if len(raw) < 10:
            raise WireCleanError("truncated telemetry")
        if raw[:2] != GOOD_TELEMETRY_MAGIC:
            raise WireCleanError("bad telemetry magic")
        source, value = struct.unpack_from(">II", raw, 2)
        return cls(source, value)


def encode_labels(labels: list) -> bytes:
    """Deterministic twin of ``encode_tags``: sorted before iterating."""
    out = bytearray()
    for label in sorted(set(labels)):
        out += struct.pack(">H", label)
    return bytes(out)


def decode_labels(raw: bytes) -> list:
    labels = []
    pos = 0
    while pos + 2 <= len(raw):
        (label,) = struct.unpack_from(">H", raw, pos)
        labels.append(label)
        pos += 2
    return labels
