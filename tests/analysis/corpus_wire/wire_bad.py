"""Known-bad wire-format corpus: one seeded violation per WIRE rule.

Each codec pair below is minimal and self-contained; the golden set in
``expected_diagnostics.json`` pins exactly which rule fires on which
line.  The corrected twins live in ``wire_clean.py``.
"""

import struct

FRAME_MAGIC = b"FR"


class WireDemoError(ValueError):
    pass


class BadHeader:
    """WIRE001: encoder writes a u16 kind, decoder reads a u32."""

    def __init__(self, kind: int, flags: int) -> None:
        self.kind = kind
        self.flags = flags

    def to_bytes(self) -> bytes:
        return struct.pack(">HB", self.kind, self.flags)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "BadHeader":
        if len(raw) < 5:
            raise WireDemoError("truncated header")
        kind, flags = struct.unpack_from(">IB", raw, 0)
        return cls(kind, flags)


def encode_probe(kind: int, value: int) -> bytes:
    return struct.pack(">B", kind) + struct.pack(">I", value)


def decode_probe(raw: bytes) -> tuple:
    """WIRE002: raw reads with no len() bounds guard anywhere."""
    kind = raw[0]
    (value,) = struct.unpack_from(">I", raw, 1)
    return kind, value


def encode_table(rows: list, extras: list) -> bytes:
    """WIRE003: the length prefix counts ``rows`` but the loop emits
    ``extras``."""
    out = bytearray()
    out += struct.pack(">H", len(rows))
    for value in extras:
        out += struct.pack(">I", value)
    return bytes(out)


def decode_table(raw: bytes) -> list:
    if len(raw) < 2:
        raise WireDemoError("truncated table")
    (count,) = struct.unpack_from(">H", raw, 0)
    values = []
    pos = 2
    for _ in range(count):
        if pos + 4 > len(raw):
            raise WireDemoError("truncated row")
        (value,) = struct.unpack_from(">I", raw, pos)
        values.append(value)
        pos += 4
    return values


class Frame:
    """Magic-discriminated frame; its own codec is symmetric and safe."""

    def __init__(self, seq: int) -> None:
        self.seq = seq

    def to_bytes(self) -> bytes:
        return FRAME_MAGIC + struct.pack(">H", self.seq)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Frame":
        if len(raw) != 4:
            raise WireDemoError("bad frame length")
        if raw[:2] != FRAME_MAGIC:
            raise WireDemoError("bad frame magic")
        (seq,) = struct.unpack_from(">H", raw, 2)
        return cls(seq)


class Telemetry:
    """WIRE004 victim: the leading u32 can collide with FRAME_MAGIC, so
    ``Frame.from_bytes``'s 2-byte dispatch can mis-claim a telemetry
    datagram."""

    def __init__(self, source: int, value: int) -> None:
        self.source = source
        self.value = value

    def to_bytes(self) -> bytes:
        return struct.pack(">II", self.source, self.value)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Telemetry":
        if len(raw) < 8:
            raise WireDemoError("truncated telemetry")
        source, value = struct.unpack_from(">II", raw, 0)
        return cls(source, value)


def encode_tags(tags: list) -> bytes:
    """WIRE005: iterating a set into wire bytes breaks replay."""
    out = bytearray()
    chosen = set(tags)
    for tag in chosen:
        out += struct.pack(">H", tag)
    return bytes(out)


def decode_tags(raw: bytes) -> list:
    tags = []
    pos = 0
    while pos + 2 <= len(raw):
        (tag,) = struct.unpack_from(">H", raw, pos)
        tags.append(tag)
        pos += 2
    return tags
