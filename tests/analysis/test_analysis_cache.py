"""Incremental-cache suite: warm output must be byte-identical to cold,
and every correctness escape hatch (salt, corruption, edits) must
invalidate rather than mask.
"""

import json
import os

import pytest

from repro.analysis.cache import AnalysisCache, _salt
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.runner import run_analysis

REPO_ROOT = os.path.normpath(os.path.join(os.path.dirname(__file__), "..", ".."))
TREE = os.path.join(REPO_ROOT, "src", "repro", "media")


@pytest.fixture
def cache_path(tmp_path):
    return str(tmp_path / "analysis-cache.json")


class TestCacheStore:
    def test_roundtrip_persists_diagnostics(self, cache_path, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("x = 1\n")
        diag = Diagnostic(
            "WIRE002",
            Severity.ERROR,
            "unguarded read",
            subject="mod.py:f",
            file=str(target),
            line=3,
            column=7,
        )
        cache = AnalysisCache.open(cache_path)
        digest = cache.digest(str(target))
        cache.put("wire", str(target), digest, [diag])
        cache.save()

        warm = AnalysisCache.open(cache_path)
        assert warm.get("wire", str(target), digest) == [diag]
        assert warm.hits == 1

    def test_changed_content_misses(self, cache_path, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("x = 1\n")
        cache = AnalysisCache.open(cache_path)
        cache.put("wire", str(target), cache.digest(str(target)), [])
        cache.save()

        target.write_text("x = 2\n")
        warm = AnalysisCache.open(cache_path)
        assert warm.get("wire", str(target), warm.digest(str(target))) is None
        assert warm.misses == 1

    def test_wrong_salt_yields_empty_cache(self, cache_path, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("x = 1\n")
        cache = AnalysisCache.open(cache_path)
        cache.put("wire", str(target), cache.digest(str(target)), [])
        cache.save()

        # a different ignore set changes the salt: entries unreadable
        other = AnalysisCache.open(cache_path, ignore=("WIRE004",))
        assert other.get("wire", str(target), other.digest(str(target))) is None
        assert _salt(()) != _salt(("WIRE004",))

    def test_corrupt_file_degrades_to_empty(self, cache_path):
        with open(cache_path, "w", encoding="utf-8") as fh:
            fh.write("{not json")
        cache = AnalysisCache.open(cache_path)
        assert cache._files == {} and cache._graphs == {}

    def test_wrong_shape_payload_degrades_to_empty(self, cache_path):
        with open(cache_path, "w", encoding="utf-8") as fh:
            json.dump(["not", "a", "dict"], fh)
        cache = AnalysisCache.open(cache_path)
        assert cache._files == {}

    def test_save_is_atomic(self, cache_path):
        cache = AnalysisCache.open(cache_path)
        cache.put_graph("dataflow:abc", [])
        cache.save()
        assert os.path.exists(cache_path)
        assert not os.path.exists(cache_path + ".tmp")

    def test_in_memory_cache_never_touches_disk(self, tmp_path):
        cache = AnalysisCache.open(None)
        cache.put_graph("k", [])
        cache.save()  # no-op
        assert list(tmp_path.iterdir()) == []


class TestRunnerIntegration:
    def test_warm_run_identical_to_cold_and_uncached(self, cache_path):
        uncached = run_analysis([TREE])

        cold = AnalysisCache.open(cache_path)
        got_cold = run_analysis([TREE], cache=cold)
        cold.save()
        assert got_cold.diagnostics == uncached.diagnostics
        assert cold.hits == 0 and cold.misses > 0

        warm = AnalysisCache.open(cache_path)
        got_warm = run_analysis([TREE], cache=warm)
        assert got_warm.diagnostics == uncached.diagnostics
        assert warm.misses == 0 and warm.hits > 0

    def test_edit_invalidates_only_that_file(self, tmp_path):
        a = tmp_path / "a.py"
        b = tmp_path / "b.py"
        a.write_text("import struct\n")
        b.write_text("import struct\n")
        cache_path = str(tmp_path / "cache.json")

        cold = AnalysisCache.open(cache_path)
        run_analysis([str(tmp_path)], cache=cold)
        cold.save()

        a.write_text("import struct  # edited\n")
        warm = AnalysisCache.open(cache_path)
        run_analysis([str(tmp_path)], cache=warm)
        # per-file passes: b.py hits, a.py misses (for each family);
        # graph passes miss too since the tree digest changed
        assert warm.hits > 0 and warm.misses > 0
