"""Known-bad SNMP session use: TSP006."""


def request_after_close(mgr: SnmpManager):  # noqa: F821
    mgr.close()
    return mgr.get("host", ["1.3.6.1.4.1.2946.2.1.1"])
