"""Known-bad callback-context concurrency: CON001, CON002, CON003."""

EVENTS = []


class Client:
    def __init__(self, bus, sock, repo):
        self.bus = bus
        self.arbiter = Arbiter(repo)  # noqa: F821
        sock.on_receive = self._on_msg

    def _on_msg(self, msg):
        # CON001: direct shared-state mutation inside the dispatch
        self.arbiter.conflicts.clear()
        # CON002: synchronous re-entry into the bus
        self.bus.publish(msg)


def on_msg(delivery):
    EVENTS.append(delivery)


def wire_main(sock):
    sock.on_receive = on_msg


def worker(sock2):
    sock2.on_receive = on_msg


def start(sock, sock2):
    wire_main(sock)
    t = Thread(target=worker)  # noqa: F821
    t.start()
