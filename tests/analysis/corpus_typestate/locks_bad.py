"""Known-bad lock discipline: TSP001, TSP002, TSP003."""


class Session:
    def __init__(self):
        self.locks = LockManager()  # noqa: F821

    def grab(self, key, client):
        return self.locks.acquire(key, client)

    def on_event(self, event):
        # departed client's locks are never revoked
        if isinstance(event, LeaveEvent):  # noqa: F821
            self.roster_remove(event.client_id)

    def roster_remove(self, cid):
        pass


def release_unheld():
    lm = LockManager()  # noqa: F821
    lm.release("wb/s1", "alice")


def acquire_twice(lm: LockManager):  # noqa: F821
    lm.acquire("wb/s1", "alice")
    lm.acquire("wb/s1", "alice")
