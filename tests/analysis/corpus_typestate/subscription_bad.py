"""Known-bad subscription lifecycle: TSP007."""


def deliver_after_detach(bus, profile, on_msg, delivery):
    sub = bus.attach(profile, on_msg)
    sub.detach()
    sub.callback(delivery)


def stale_reattach(bus, profile, on_msg):
    sub = bus.attach(profile, on_msg)
    sub.detach()
    sub.active = True
