"""Known-bad RTP sequencing: TSP004, TSP005."""


def emit_out_of_order(out):
    out.append(RtpPacket(1, 7, 0, 3, 10, b"a"))  # noqa: F821
    out.append(RtpPacket(1, 7, 2, 3, 11, b"b"))  # noqa: F821
    out.append(RtpPacket(1, 7, 1, 3, 12, b"c"))  # noqa: F821


def assemble_early(frag_count):
    part = _PartialMessage(frag_count)  # noqa: F821
    return part.assemble()
