"""Runtime lock-order sanitizer tests.

The centrepiece is the seeded two-thread lock inversion: two threads
take the same pair of tracked locks in opposite orders, interleaved by
events so both orders genuinely execute, and the sanitizer must report
the inversion even though the run never actually deadlocks (the lockdep
property).
"""

import json
import threading

import pytest

from repro.analysis.sanitizer import (
    LockOrderSanitizer,
    TrackedLock,
    disable,
    enable,
    make_lock,
)


def tracked_pair(san):
    a = TrackedLock("A.mu", sanitizer=san)
    b = TrackedLock("B.mu", sanitizer=san)
    return a, b


class TestTrackedLock:
    def test_delegates_and_records_edges(self):
        san = LockOrderSanitizer()
        a, b = tracked_pair(san)
        with a:
            assert a.locked()
            with b:
                pass
        assert not a.locked()
        assert san.edges() == [("A.mu", "B.mu")]
        assert san.inversions() == []

    def test_reentrant_self_acquire_orders_nothing(self):
        san = LockOrderSanitizer()
        r = TrackedLock("R.mu", reentrant=True, sanitizer=san)
        with r:
            with r:
                pass
        assert san.edges() == []

    def test_non_blocking_acquire_failure_does_not_mark_held(self):
        san = LockOrderSanitizer()
        a = TrackedLock("A.mu", sanitizer=san)
        a.acquire()
        grabbed = []
        def worker():
            grabbed.append(a.acquire(blocking=False))
        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert grabbed == [False]
        a.release()


class TestSeededInversion:
    def test_two_thread_lock_inversion_is_caught(self):
        """A->B on the main thread, then B->A on a second thread.

        Events serialize the interleaving so the test is deterministic
        and can never deadlock, yet both orders are *observed* — the
        sanitizer must flag the pair.
        """
        san = LockOrderSanitizer()
        a, b = tracked_pair(san)
        first_done = threading.Event()

        def forward():
            with a:
                with b:
                    pass
            first_done.set()

        def backward():
            first_done.wait(5)
            with b:
                with a:
                    pass

        t1 = threading.Thread(target=forward, name="fwd")
        t2 = threading.Thread(target=backward, name="bwd")
        t1.start()
        t2.start()
        t1.join(5)
        t2.join(5)
        assert san.inversions() == [("A.mu", "B.mu")]
        report = san.report()
        assert report["inversions"] == [["A.mu", "B.mu"]]
        # both orders on file, each with a witness
        edges = {(e["held"], e["acquired"]): e for e in report["edges"]}
        assert ("A.mu", "B.mu") in edges and ("B.mu", "A.mu") in edges
        assert edges[("B.mu", "A.mu")]["witness"]["thread"] == "bwd"
        assert edges[("B.mu", "A.mu")]["witness"]["stack"]

    def test_consistent_order_across_threads_is_clean(self):
        san = LockOrderSanitizer()
        a, b = tracked_pair(san)

        def worker():
            with a:
                with b:
                    pass

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(5)
        assert san.inversions() == []


class TestCheckAgainst:
    def test_runtime_reversal_of_static_order(self):
        san = LockOrderSanitizer()
        a, b = tracked_pair(san)
        with b:
            with a:
                pass
        problems = san.check_against([("A.mu", "B.mu")])
        assert problems == [
            "runtime order B.mu -> A.mu inverts the statically proven order"
            " A.mu -> B.mu"
        ]

    def test_matching_order_is_clean(self):
        san = LockOrderSanitizer()
        a, b = tracked_pair(san)
        with a:
            with b:
                pass
        assert san.check_against([("A.mu", "B.mu")]) == []


class TestReportLifecycle:
    def test_write_report_round_trips(self, tmp_path):
        san = LockOrderSanitizer()
        a, b = tracked_pair(san)
        with a:
            with b:
                pass
        out = tmp_path / "sanitizer.json"
        san.write_report(str(out))
        data = json.loads(out.read_text())
        assert data["schema"] == 1
        assert data["locks"] == ["A.mu", "B.mu"]
        assert data["inversions"] == []
        assert data["edges"][0]["held"] == "A.mu"

    def test_reset_clears_observations(self):
        san = LockOrderSanitizer()
        a, b = tracked_pair(san)
        with a:
            with b:
                pass
        san.reset()
        assert san.edges() == []
        assert san.report()["locks"] == []


@pytest.fixture
def fresh_activation(monkeypatch):
    """Neutral activation state; restores the session sanitizer after.

    A sanitized session (``REPRO_SANITIZE=1``) keeps a process-wide
    sanitizer installed and the env var forces ``make_lock`` tracked;
    these tests exercise the on/off transition itself, so both have to
    be cleared — and put back — around each one.
    """
    from repro.analysis import sanitizer as mod

    prior = mod.get()
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    disable()
    yield
    if prior is not None:
        enable(prior)
    else:
        disable()


class TestActivation:
    def test_make_lock_tracked_only_while_enabled(self, fresh_activation):
        plain = make_lock("P.mu")
        assert not isinstance(plain, TrackedLock)
        san = enable(LockOrderSanitizer())
        try:
            tracked = make_lock("T.mu")
            assert isinstance(tracked, TrackedLock)
            with tracked:
                pass
            assert "T.mu" in san.report()["locks"]
        finally:
            disable()

    def test_runtime_make_lock_indirection(self, fresh_activation):
        # the import-cycle-safe constructor the runtime layers use
        from repro._locks import make_lock as runtime_make_lock

        san = enable(LockOrderSanitizer())
        try:
            lock = runtime_make_lock("Bus.mu")
            assert isinstance(lock, TrackedLock)
        finally:
            disable()
        assert not isinstance(runtime_make_lock("Bus.mu"), TrackedLock)
