"""Golden corpus for the typestate/concurrency rules — every known-bad
snippet must fire, every clean idiom must stay silent.

Mirrors :mod:`tests.analysis.test_dataflow_corpus`: each BAD entry is a
minimal program exhibiting one protocol-discipline bug class from the
issue (lock misuse, premature reassembly, closed-session SNMP, detached
subscriptions, callback-context concurrency) paired with the rule code
the verifier must raise.
"""

import pytest

from repro.analysis import build_call_graph_from_sources, typestate_diagnostics


def codes_for(*sources):
    graph = build_call_graph_from_sources(
        [(f"src/pkg/m{i}.py", src) for i, src in enumerate(sources)]
    )
    return {d.code for d in typestate_diagnostics(graph)}


# ----------------------------------------------------------------------
# TSP: protocol automata
# ----------------------------------------------------------------------
BAD_TYPESTATE = [
    (
        "release-without-acquire",
        "def bad():\n"
        "    lm = LockManager()\n"
        "    lm.release('wb/s1', 'alice')\n",
        "TSP001",
    ),
    (
        "release-twice-one-acquire",
        "def bad(lm: LockManager):\n"
        "    lm.acquire('k', 'a')\n"
        "    lm.release('k', 'a')\n"
        "    lm.release('k', 'a')\n",
        "TSP001",
    ),
    (
        "double-acquire-same-holder",
        "def bad(lm: LockManager):\n"
        "    lm.acquire('k', 'a')\n"
        "    lm.acquire('k', 'a')\n",
        "TSP002",
    ),
    (
        "leave-without-revocation",
        "class Session:\n"
        "    def __init__(self):\n"
        "        self.locks = LockManager()\n"
        "    def grab(self, key, client):\n"
        "        return self.locks.acquire(key, client)\n"
        "    def on_event(self, event):\n"
        "        if isinstance(event, LeaveEvent):\n"
        "            self.roster_remove(event.client_id)\n"
        "    def roster_remove(self, cid):\n"
        "        pass\n",
        "TSP003",
    ),
    (
        "fragments-out-of-order",
        "def send(out):\n"
        "    out.append(RtpPacket(1, 7, 0, 3, 10, b'a'))\n"
        "    out.append(RtpPacket(1, 7, 2, 3, 11, b'b'))\n"
        "    out.append(RtpPacket(1, 7, 1, 3, 12, b'c'))\n",
        "TSP004",
    ),
    (
        "assemble-before-complete",
        "def bad(frag_count):\n"
        "    part = _PartialMessage(frag_count)\n"
        "    return part.assemble()\n",
        "TSP005",
    ),
    (
        "assemble-on-incomplete-branch",
        "def bad(part: _PartialMessage):\n"
        "    if not part.complete:\n"
        "        return part.assemble()\n",
        "TSP005",
    ),
    (
        "snmp-request-after-close",
        "def bad(mgr: SnmpManager):\n"
        "    mgr.close()\n"
        "    return mgr.get('host', ['1.3.6.1'])\n",
        "TSP006",
    ),
    (
        "snmp-walk-after-close",
        "def bad(sock, sched):\n"
        "    mgr = SnmpManager(sock, sched)\n"
        "    mgr.close()\n"
        "    return mgr.walk('host', '1.3.6.1')\n",
        "TSP006",
    ),
    (
        "deliver-on-detached-subscription",
        "def bad(bus, profile, on_msg, delivery):\n"
        "    sub = bus.attach(profile, on_msg)\n"
        "    sub.detach()\n"
        "    sub.callback(delivery)\n",
        "TSP007",
    ),
    (
        "reattach-via-stale-handle",
        "def bad(bus, profile, on_msg):\n"
        "    sub = bus.attach(profile, on_msg)\n"
        "    sub.detach()\n"
        "    sub.active = True\n",
        "TSP007",
    ),
]

GOOD_TYPESTATE = [
    (
        "acquire-release-pairing",
        "def ok(lm: LockManager):\n"
        "    lm.acquire('k', 'a')\n"
        "    lm.release('k', 'a')\n"
        "    lm.acquire('k', 'a')\n",
    ),
    (
        "independent-lock-keys",
        "def ok(lm: LockManager):\n"
        "    lm.acquire('k1', 'a')\n"
        "    lm.acquire('k2', 'a')\n"
        "    lm.release('k1', 'a')\n"
        "    lm.release('k2', 'a')\n",
    ),
    (
        "leave-with-revocation",
        "class Session:\n"
        "    def __init__(self):\n"
        "        self.locks = LockManager()\n"
        "    def grab(self, key, client):\n"
        "        return self.locks.acquire(key, client)\n"
        "    def on_event(self, event):\n"
        "        if isinstance(event, LeaveEvent):\n"
        "            self.revoke(event.client_id)\n"
        "    def revoke(self, cid):\n"
        "        return self.locks.drop_client(cid)\n",
    ),
    (
        "fragments-in-order",
        "def send(out):\n"
        "    out.append(RtpPacket(1, 7, 0, 3, 10, b'a'))\n"
        "    out.append(RtpPacket(1, 7, 1, 3, 11, b'b'))\n"
        "    out.append(RtpPacket(1, 7, 2, 3, 12, b'c'))\n",
    ),
    (
        "assemble-guarded-by-complete",
        "def ok(part: _PartialMessage, pkt):\n"
        "    part.fragments[pkt.frag_index] = pkt.payload\n"
        "    if part.complete:\n"
        "        return part.assemble()\n",
    ),
    (
        "snmp-close-after-requests",
        "def ok(mgr: SnmpManager):\n"
        "    out = mgr.get('host', ['1.3.6.1'])\n"
        "    mgr.close()\n"
        "    mgr.close()\n"  # idempotent close is legal
        "    return out\n",
    ),
    (
        "subscription-used-then-detached",
        "def ok(bus, profile, on_msg, delivery):\n"
        "    sub = bus.attach(profile, on_msg)\n"
        "    sub.callback(delivery)\n"
        "    sub.detach()\n",
    ),
    (
        "detach-only-on-one-branch",
        "def ok(bus, profile, on_msg, delivery, done):\n"
        "    sub = bus.attach(profile, on_msg)\n"
        "    if done:\n"
        "        sub.detach()\n"
        "        return\n"
        "    sub.callback(delivery)\n",
    ),
]


@pytest.mark.parametrize("name,source,code", BAD_TYPESTATE, ids=[b[0] for b in BAD_TYPESTATE])
def test_bad_typestate_fires(name, source, code):
    assert code in codes_for(source)


@pytest.mark.parametrize("name,source", GOOD_TYPESTATE, ids=[g[0] for g in GOOD_TYPESTATE])
def test_good_typestate_clean(name, source):
    assert codes_for(source) == set()


# ----------------------------------------------------------------------
# CON: callback-context concurrency
# ----------------------------------------------------------------------
BAD_CONCURRENCY = [
    (
        "arbiter-mutated-from-callback",
        "class Client:\n"
        "    def __init__(self, sock, repo):\n"
        "        self.arbiter = Arbiter(repo)\n"
        "        sock.on_receive = self._on_msg\n"
        "    def _on_msg(self, msg):\n"
        "        self.arbiter.conflicts.clear()\n",
        "CON001",
    ),
    (
        "lockmanager-state-overwritten-from-callback",
        "class Client:\n"
        "    def __init__(self, sock):\n"
        "        self.locks = LockManager()\n"
        "        sock.on_receive = self._on_msg\n"
        "    def _on_msg(self, msg):\n"
        "        self.locks._owners = {}\n",
        "CON001",
    ),
    (
        "synchronous-republish-from-handler",
        "class Handler:\n"
        "    def __init__(self, bus, sock):\n"
        "        self.bus = bus\n"
        "        sock.on_receive = self._on_msg\n"
        "    def _on_msg(self, msg):\n"
        "        self.bus.publish(msg)\n",
        "CON002",
    ),
    (
        "shared-container-two-thread-roots",
        "EVENTS = []\n"
        "def on_msg(delivery):\n"
        "    EVENTS.append(delivery)\n"
        "def wire_main(sock):\n"
        "    sock.on_receive = on_msg\n"
        "def worker(sock2):\n"
        "    sock2.on_receive = on_msg\n"
        "def start(sock, sock2):\n"
        "    wire_main(sock)\n"
        "    t = Thread(target=worker)\n"
        "    t.start()\n",
        "CON003",
    ),
]

GOOD_CONCURRENCY = [
    (
        "mutation-deferred-through-event-loop",
        "class Client:\n"
        "    def __init__(self, sock, repo, sched):\n"
        "        self.arbiter = Arbiter(repo)\n"
        "        self.sched = sched\n"
        "        sock.on_receive = self._on_msg\n"
        "    def _on_msg(self, msg):\n"
        "        self.sched.call_later(0.0, lambda: self.arbiter.conflicts.clear())\n",
    ),
    (
        "republish-deferred-through-event-loop",
        "class Handler:\n"
        "    def __init__(self, bus, sock, sched):\n"
        "        self.bus = bus\n"
        "        self.sched = sched\n"
        "        sock.on_receive = self._on_msg\n"
        "    def _on_msg(self, msg):\n"
        "        self.sched.call_later(0.0, lambda: self.bus.publish(msg))\n",
    ),
    (
        "mutation-outside-callback-context",
        "class Client:\n"
        "    def __init__(self, repo):\n"
        "        self.arbiter = Arbiter(repo)\n"
        "    def reset(self):\n"
        "        self.arbiter.conflicts.clear()\n",
    ),
    (
        "single-thread-root-container",
        "EVENTS = []\n"
        "def on_msg(delivery):\n"
        "    EVENTS.append(delivery)\n"
        "def wire_main(sock):\n"
        "    sock.on_receive = on_msg\n",
    ),
]


@pytest.mark.parametrize("name,source,code", BAD_CONCURRENCY, ids=[b[0] for b in BAD_CONCURRENCY])
def test_bad_concurrency_fires(name, source, code):
    assert code in codes_for(source)


@pytest.mark.parametrize("name,source", GOOD_CONCURRENCY, ids=[g[0] for g in GOOD_CONCURRENCY])
def test_good_concurrency_clean(name, source):
    assert codes_for(source) == set()


def test_every_rule_fires_at_least_once():
    """Issue acceptance: the known-bad corpus covers the whole family."""
    fired = set()
    for _, source, _ in BAD_TYPESTATE + BAD_CONCURRENCY:
        fired |= codes_for(source)
    expected = {f"TSP00{i}" for i in range(1, 8)} | {f"CON00{i}" for i in range(1, 4)}
    assert expected <= fired


def test_suppression_comment_silences_rule():
    source = (
        "def bad():\n"
        "    lm = LockManager()\n"
        "    lm.release('k', 'a')  # repro: ignore[TSP001]\n"
    )
    assert codes_for(source) == set()


def test_shipped_tree_is_clean():
    """The real sources pass the typestate gate with no findings."""
    from repro.analysis import analyze_typestate

    assert analyze_typestate(["src/repro"]) == []
