"""Unit tests for the static lock-order/race verifier (DLK/RACE).

The golden corpus (``corpus_concurrency/``) pins whole-file behaviour;
these tests pin the analysis *mechanics*: lock identity, interprocedural
held-context propagation, scoped-fan-out vs free-thread labelling,
constructor exemption, suppressions, and the sanitizer cross-check.
The hypothesis suite at the bottom pins the determinism contract:
cycle verdicts are invariant under edge insertion order.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    build_call_graph_from_sources,
    check_sanitizer_report,
    collect_locks,
    concurrency_diagnostics,
    find_cycles,
    lock_order_edges,
)


def graph_of(*sources):
    return build_call_graph_from_sources(
        [(f"mod{i}.py", src) for i, src in enumerate(sources)]
    )


def codes(diags):
    return sorted(d.code for d in diags)


class TestCollectLocks:
    def test_instance_module_and_class_body_locks(self):
        g = graph_of(
            """
import threading

GLOBAL_MU = threading.Lock()


class Box:
    CLASS_MU = threading.Lock()

    def __init__(self):
        self.mu = threading.RLock()
"""
        )
        locks = collect_locks(g)
        assert "mod0.GLOBAL_MU" in locks
        assert "Box.CLASS_MU" in locks
        assert "Box.mu" in locks
        assert locks["Box.mu"].reentrant
        assert not locks["Box.CLASS_MU"].reentrant

    def test_make_lock_factory_recognised(self):
        g = graph_of(
            """
from repro._locks import make_lock


class Bus:
    def __init__(self):
        self.mu = make_lock("Bus.mu")
        self.rmu = make_lock("Bus.rmu", reentrant=True)
"""
        )
        locks = collect_locks(g)
        assert "Bus.mu" in locks and not locks["Bus.mu"].reentrant
        assert "Bus.rmu" in locks and locks["Bus.rmu"].reentrant


class TestLockOrderEdges:
    def test_nested_with_produces_edge(self):
        g = graph_of(
            """
import threading


class P:
    def __init__(self):
        self.a = threading.Lock()
        self.b = threading.Lock()

    def go(self):
        with self.a:
            with self.b:
                pass
"""
        )
        assert lock_order_edges(g) == [("P.a", "P.b")]

    def test_interprocedural_edge_through_helper(self):
        g = graph_of(
            """
import threading


class P:
    def __init__(self):
        self.a = threading.Lock()
        self.b = threading.Lock()

    def go(self):
        with self.a:
            self.helper()

    def helper(self):
        with self.b:
            pass
"""
        )
        assert lock_order_edges(g) == [("P.a", "P.b")]

    def test_acquire_release_pairs_tracked(self):
        g = graph_of(
            """
import threading


class P:
    def __init__(self):
        self.a = threading.Lock()
        self.b = threading.Lock()

    def go(self):
        self.a.acquire()
        self.a.release()
        with self.b:
            pass
"""
        )
        # a released before b: no edge
        assert lock_order_edges(g) == []


class TestDlkRules:
    def test_ab_ba_cycle_fires_dlk001(self):
        g = graph_of(
            """
import threading


class P:
    def __init__(self):
        self.a = threading.Lock()
        self.b = threading.Lock()

    def fwd(self):
        with self.a:
            with self.b:
                pass

    def rev(self):
        with self.b:
            with self.a:
                pass
"""
        )
        assert "DLK001" in codes(concurrency_diagnostics(g))

    def test_reentrant_self_acquire_is_clean(self):
        g = graph_of(
            """
import threading


class P:
    def __init__(self):
        self.mu = threading.RLock()

    def outer(self):
        with self.mu:
            self.inner()

    def inner(self):
        with self.mu:
            pass
"""
        )
        assert codes(concurrency_diagnostics(g)) == []

    def test_cross_class_nesting_fires_dlk002(self):
        g = graph_of(
            """
import threading


class Inner:
    def __init__(self):
        self.mu = threading.Lock()

    def touch(self):
        with self.mu:
            pass


class Outer:
    def __init__(self):
        self.mu = threading.Lock()
        self.inner = Inner()

    def go(self):
        with self.mu:
            self.inner.touch()
"""
        )
        assert "DLK002" in codes(concurrency_diagnostics(g))

    def test_partially_guarded_field_fires_dlk003(self):
        g = graph_of(
            """
import threading


class C:
    def __init__(self):
        self.mu = threading.Lock()
        self.n = 0

    def add(self):
        with self.mu:
            self.n += 1

    def reset(self):
        self.n = 0
"""
        )
        diags = concurrency_diagnostics(g)
        assert codes(diags) == ["DLK003"]
        assert diags[0].subject.endswith("reset")

    def test_constructor_writes_exempt(self):
        g = graph_of(
            """
import threading


class C:
    def __init__(self):
        self.mu = threading.Lock()
        self.n = 0
        self._init_more()

    def _init_more(self):
        self.n = 1

    def add(self):
        with self.mu:
            self.n += 1
"""
        )
        assert codes(concurrency_diagnostics(g)) == []


class TestRaceRules:
    THREADED_WRITER = """
import threading


class T:
    def __init__(self):
        self.n = 0

    def worker(self):
        self.n += 1

    def start(self):
        threading.Thread(target=self.worker).start()

    def reset(self):
        self.n = 0
"""

    def test_thread_plus_main_write_fires_race001(self):
        g = graph_of(self.THREADED_WRITER)
        assert "RACE001" in codes(concurrency_diagnostics(g))

    def test_scoped_fanout_does_not_fire_race001(self):
        # submit target only ever dispatched with the submitter holding
        # the lock and blocking on the future: serialized, not a race
        g = graph_of(
            """
import threading
from concurrent.futures import ThreadPoolExecutor


class B:
    def __init__(self):
        self.mu = threading.Lock()
        self.pool = ThreadPoolExecutor(2)
        self.n = 0

    def worker(self):
        self.n += 1

    def publish(self):
        with self.mu:
            f = self.pool.submit(self.worker)
            f.result()

    def reset(self):
        with self.mu:
            self.n = 0
"""
        )
        assert "RACE001" not in codes(concurrency_diagnostics(g))

    def test_unguarded_lazy_init_fires_race002(self):
        g = graph_of(
            """
import threading


class H:
    def __init__(self):
        self.mu = threading.Lock()
        self.pool = None

    def ensure(self):
        if self.pool is None:
            self.pool = object()
        return self.pool
"""
        )
        assert "RACE002" in codes(concurrency_diagnostics(g))

    def test_double_checked_lazy_init_is_clean(self):
        g = graph_of(
            """
import threading


class H:
    def __init__(self):
        self.mu = threading.Lock()
        self.pool = None

    def ensure(self):
        with self.mu:
            if self.pool is None:
                self.pool = object()
            return self.pool
"""
        )
        assert codes(concurrency_diagnostics(g)) == []

    def test_check_then_act_fires_race003(self):
        g = graph_of(
            """
import threading


class R:
    def __init__(self):
        self.mu = threading.Lock()
        self.d = {}

    def claim(self, k):
        if k in self.d:
            return self.d.pop(k)
        return None
"""
        )
        assert "RACE003" in codes(concurrency_diagnostics(g))

    def test_suppression_comment_silences(self):
        g = graph_of(
            """
import threading


class R:
    def __init__(self):
        self.mu = threading.Lock()
        self.d = {}

    def claim(self, k):
        if k in self.d:  # repro: ignore[RACE003]
            return self.d.pop(k)
        return None
"""
        )
        assert "RACE003" not in codes(concurrency_diagnostics(g))


class TestSanitizerCrossCheck:
    def test_runtime_inversion_becomes_dlk001(self):
        g = graph_of("")
        report = {"inversions": [["A.mu", "B.mu"]], "edges": []}
        diags = check_sanitizer_report(g, report)
        assert codes(diags) == ["DLK001"]

    def test_runtime_edge_closing_static_half_cycle(self):
        g = graph_of(
            """
import threading


class P:
    def __init__(self):
        self.a = threading.Lock()
        self.b = threading.Lock()

    def fwd(self):
        with self.a:
            with self.b:
                pass
"""
        )
        report = {
            "inversions": [],
            "edges": [{"held": "P.b", "acquired": "P.a"}],
        }
        diags = check_sanitizer_report(g, report)
        assert codes(diags) == ["DLK001"]

    def test_consistent_runtime_order_is_clean(self):
        g = graph_of("")
        report = {"inversions": [], "edges": [{"held": "A.mu", "acquired": "B.mu"}]}
        assert check_sanitizer_report(g, report) == []


# ----------------------------------------------------------------------
# determinism property: find_cycles is invariant under edge insertion
# order (the merged-report ordering contract rides on this)
# ----------------------------------------------------------------------
_nodes = st.sampled_from(["a", "b", "c", "d", "e"])
_edges = st.lists(st.tuples(_nodes, _nodes), min_size=0, max_size=12)


class TestFindCyclesProperty:
    @given(edges=_edges, seed=st.randoms(use_true_random=False))
    @settings(max_examples=200, deadline=None)
    def test_verdict_invariant_under_insertion_order(self, edges, seed):
        shuffled = list(edges)
        seed.shuffle(shuffled)
        assert find_cycles(shuffled) == find_cycles(edges)

    @given(edges=_edges)
    @settings(max_examples=200, deadline=None)
    def test_every_reported_cycle_is_cyclic(self, edges):
        adj = {}
        for a, b in edges:
            adj.setdefault(a, set()).add(b)
        for cycle in find_cycles(edges):
            members = set(cycle)
            if len(cycle) == 1:
                assert cycle[0] in adj.get(cycle[0], set()) or (
                    cycle[0],
                    cycle[0],
                ) in edges
                continue
            # within the SCC every member reaches every other
            for start in members:
                seen = set()
                frontier = [start]
                while frontier:
                    v = frontier.pop()
                    for w in adj.get(v, ()):  # noqa: B007
                        if w in members and w not in seen:
                            seen.add(w)
                            frontier.append(w)
                assert members <= seen | {start}

    def test_duplicate_edges_collapse(self):
        assert find_cycles([("a", "b"), ("a", "b"), ("b", "a")]) == [("a", "b")]
