"""Shared driver for the golden-corpus gates.

Each corpus directory (``corpus_perf``, ``corpus_det``,
``corpus_typestate``, ``corpus_concurrency``) keeps a thin
``check_corpus.py`` entrypoint that delegates here: run one analyzer
family over the corpus, compare against the checked-in
``expected_diagnostics.json``, and insist the known-good twin files stay
silent.  Regenerate an expectation after intentionally changing a rule
or the corpus with ``--update``.
"""

import json
import os
import sys


def _current(analyzer_name, here):
    import repro.analysis

    analyze = getattr(repro.analysis, analyzer_name)
    diags = analyze([here])
    entries = [
        {
            "code": d.code,
            "file": os.path.basename(d.file or ""),
            "line": d.line,
            "subject": d.subject.rsplit(".", 2)[-1],
        }
        for d in diags
    ]
    return sorted(entries, key=lambda e: (e["file"], e["line"] or 0, e["code"]))


def run_corpus_gate(argv, *, here, family, analyzer_name, clean_files=()):
    """Gate one corpus directory; returns a process exit status.

    Parameters
    ----------
    argv:
        Command-line arguments (``--update`` rewrites the golden set).
    here:
        The corpus directory (holds ``expected_diagnostics.json``).
    family:
        Short label used in messages (``"perf"``, ``"det"``, ...).
    analyzer_name:
        Attribute of :mod:`repro.analysis` mapping paths to diagnostics.
    clean_files:
        Basenames of known-good twins that must produce zero findings.
    """
    sys.path.insert(0, os.path.join(here, "..", "..", "..", "src"))
    expected = os.path.join(here, "expected_diagnostics.json")
    got = _current(analyzer_name, here)
    if "--update" in argv:
        with open(expected, "w", encoding="utf-8") as fh:
            json.dump(got, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {len(got)} expected diagnostic(s)")
        return 0
    with open(expected, encoding="utf-8") as fh:
        want = json.load(fh)
    problems = []
    if got != want:
        problems.append(f"{family} corpus diagnostics drifted from the golden set:")
        for entry in want:
            if entry not in got:
                problems.append(f"  missing: {entry}")
        for entry in got:
            if entry not in want:
                problems.append(f"  unexpected: {entry}")
    clean_hits = [e for e in got if e["file"] in set(clean_files)]
    if clean_hits:
        problems.append("known-good corpus file produced findings:")
        problems.extend(f"  {entry}" for entry in clean_hits)
    if problems:
        print("\n".join(problems), file=sys.stderr)
        return 1
    print(f"{family} corpus OK: {len(got)} diagnostic(s) match the golden set")
    return 0
