"""Unit suite for the wire-format symmetry & decode-safety verifier.

The golden corpus (``corpus_wire/``) pins whole-file behaviour; these
tests pin the individual rule mechanics on minimal inline codecs —
pair discovery, the abstract layout interpreter, each WIRE rule's
trigger and non-trigger, suppressions, and parallel-run identity.
"""

import os
import textwrap

import pytest

from repro.analysis import Severity
from repro.analysis.wireformat import (
    PAIR_METHOD_NAMES,
    analyze_wireformat,
    wire_paths,
    wire_source,
)

REPO_ROOT = os.path.normpath(os.path.join(os.path.dirname(__file__), "..", ".."))


def diags(source, **kw):
    return wire_source(textwrap.dedent(source), "mem.py", **kw)


def codes(source, **kw):
    return [d.code for d in diags(source, **kw)]


SYMMETRIC = """
    import struct

    class Err(ValueError):
        pass

    class Header:
        def to_bytes(self):
            return struct.pack(">HB", self.kind, self.flags)

        @classmethod
        def from_bytes(cls, raw: bytes):
            if len(raw) < 3:
                raise Err("truncated")
            kind, flags = struct.unpack_from(">HB", raw, 0)
            return cls(kind, flags)
"""


class TestPairDiscovery:
    def test_method_pair_names_cover_repo_conventions(self):
        assert ("to_bytes", "from_bytes") in PAIR_METHOD_NAMES
        assert ("to_body", "from_body") in PAIR_METHOD_NAMES
        assert ("encode", "decode") in PAIR_METHOD_NAMES

    def test_module_function_pairs_are_discovered(self):
        found = codes(
            """
            import struct

            def encode_ping(seq):
                return struct.pack(">H", seq)

            def decode_ping(raw: bytes):
                (seq,) = struct.unpack_from(">I", raw, 0)
                return seq
            """
        )
        assert "WIRE001" in found

    def test_explicit_wire_pairs_table(self):
        found = codes(
            """
            import struct

            WIRE_PAIRS = (("pack_kv", "unpack_kv"),)

            def pack_kv(key, value):
                return struct.pack(">B", key) + struct.pack(">H", value)

            def unpack_kv(raw: bytes):
                if len(raw) < 3:
                    raise ValueError("short")
                key = raw[0]
                (value,) = struct.unpack_from(">I", raw, 1)
                return key, value
            """
        )
        assert "WIRE001" in found

    def test_unpaired_functions_are_not_analyzed(self):
        assert codes(
            """
            def decode_orphan(raw: bytes):
                return raw[0]
            """
        ) == []


class TestWire001Symmetry:
    def test_symmetric_codec_is_clean(self):
        assert codes(SYMMETRIC) == []

    def test_width_mismatch_flagged(self):
        found = diags(SYMMETRIC.replace('">HB", raw', '">IB", raw'))
        assert [d.code for d in found] == ["WIRE001"]
        assert found[0].severity is Severity.ERROR
        assert "u16(be)" in found[0].message and "u32(be)" in found[0].message

    def test_endianness_mismatch_flagged(self):
        assert codes(SYMMETRIC.replace('"<HB", raw', '">HB", raw')) == []
        assert "WIRE001" in codes(SYMMETRIC.replace('">HB", raw', '"<HB", raw'))

    def test_field_order_mismatch_flagged(self):
        assert "WIRE001" in codes(SYMMETRIC.replace('">HB", raw', '">BH", raw'))

    def test_opaque_constructs_stop_comparison_without_flagging(self):
        # the encoder tail is unmodellable; nothing definite => silence
        assert codes(
            """
            import struct

            def encode_blob(kind, payload):
                return struct.pack(">B", kind) + transform(payload)

            def decode_blob(raw: bytes):
                if len(raw) < 1:
                    raise ValueError("short")
                return raw[0], raw[1:]
            """
        ) == []


class TestWire002DecodeSafety:
    def test_unguarded_subscript_flagged(self):
        found = diags(
            """
            import struct

            def encode_probe(kind):
                return struct.pack(">B", kind)

            def decode_probe(raw: bytes):
                return raw[0]
            """
        )
        assert [d.code for d in found] == ["WIRE002"]
        assert "decode_probe" in found[0].message

    def test_len_guard_suppresses(self):
        assert codes(
            """
            import struct

            def encode_probe(kind):
                return struct.pack(">B", kind)

            def decode_probe(raw: bytes):
                if len(raw) < 1:
                    raise ValueError("short")
                return raw[0]
            """
        ) == []

    def test_truthiness_guard_suppresses(self):
        assert codes(
            """
            import struct

            def encode_probe(kind):
                return struct.pack(">B", kind)

            def decode_probe(raw: bytes):
                if not raw:
                    raise ValueError("empty")
                return raw[0]
            """
        ) == []

    def test_while_len_condition_counts_as_guard(self):
        assert codes(
            """
            import struct

            def encode_tags(tags):
                out = bytearray()
                for tag in sorted(tags):
                    out += struct.pack(">H", tag)
                return bytes(out)

            def decode_tags(raw: bytes):
                tags = []
                pos = 0
                while pos + 2 <= len(raw):
                    (tag,) = struct.unpack_from(">H", raw, pos)
                    tags.append(tag)
                    pos += 2
                return tags
            """
        ) == []

    def test_reader_helper_is_scanned_transitively(self):
        found = codes(
            """
            import struct

            def _read_u32(raw, pos):
                (v,) = struct.unpack_from(">I", raw, pos)
                return v

            def encode_frame(a, b):
                return struct.pack(">II", a, b)

            def decode_frame(raw: bytes):
                if len(raw) < 8:
                    raise ValueError("short")
                return _read_u32(raw, 0), _read_u32(raw, 4)
            """
        )
        assert "WIRE002" in found  # the helper itself has no guard


class TestWire003CountConsistency:
    def test_encoder_prefix_loop_mismatch_flagged(self):
        found = diags(
            """
            import struct

            def encode_table(rows, extras):
                out = bytearray()
                out += struct.pack(">H", len(rows))
                for value in extras:
                    out += struct.pack(">I", value)
                return bytes(out)

            def decode_table(raw: bytes):
                if len(raw) < 2:
                    raise ValueError("short")
                (count,) = struct.unpack_from(">H", raw, 0)
                values = []
                pos = 2
                for _ in range(count):
                    if pos + 4 > len(raw):
                        raise ValueError("short row")
                    (value,) = struct.unpack_from(">I", raw, pos)
                    values.append(value)
                    pos += 4
                return values
            """
        )
        assert [d.code for d in found] == ["WIRE003"]
        assert "'rows'" in found[0].message and "'extras'" in found[0].message

    def test_consistent_prefix_is_clean(self):
        assert codes(
            """
            import struct

            def encode_table(rows):
                out = bytearray()
                out += struct.pack(">H", len(rows))
                for value in rows:
                    out += struct.pack(">I", value)
                return bytes(out)

            def decode_table(raw: bytes):
                if len(raw) < 2:
                    raise ValueError("short")
                (count,) = struct.unpack_from(">H", raw, 0)
                values = []
                pos = 2
                for _ in range(count):
                    if pos + 4 > len(raw):
                        raise ValueError("short row")
                    (value,) = struct.unpack_from(">I", raw, pos)
                    values.append(value)
                    pos += 4
                return values
            """
        ) == []


MAGIC_MODULE = """
    import struct

    MAGIC = b"MG"

    class Err(ValueError):
        pass

    class Frame:
        def to_bytes(self):
            return MAGIC + struct.pack(">H", self.seq)

        @classmethod
        def from_bytes(cls, raw: bytes):
            if len(raw) != 4:
                raise Err("length")
            if raw[:2] != MAGIC:
                raise Err("magic")
            (seq,) = struct.unpack_from(">H", raw, 2)
            return cls(seq)

    class Telemetry:
        def to_bytes(self):
            return struct.pack(">II", self.source, self.value)

        @classmethod
        def from_bytes(cls, raw: bytes):
            if len(raw) < 8:
                raise Err("short")
            source, value = struct.unpack_from(">II", raw, 0)
            return cls(source, value)
"""


class TestWire004MagicCollision:
    def test_variable_leading_field_collides_with_magic(self):
        found = diags(MAGIC_MODULE)
        assert [d.code for d in found] == ["WIRE004"]
        assert found[0].severity is Severity.WARNING
        assert "mis-dispatches" in found[0].message

    def test_magic_prefixed_peer_is_clean(self):
        clean = MAGIC_MODULE.replace(
            'return struct.pack(">II", self.source, self.value)',
            'return b"TL" + struct.pack(">II", self.source, self.value)',
        ).replace(
            'source, value = struct.unpack_from(">II", raw, 0)',
            'if raw[:2] != b"TL":\n'
            '                raise Err("magic")\n'
            '            source, value = struct.unpack_from(">II", raw, 2)',
        )
        assert codes(clean) == []

    def test_inline_suppression_respected(self):
        suppressed = MAGIC_MODULE.replace(
            'if raw[:2] != MAGIC:',
            'if raw[:2] != MAGIC:  # repro: ignore[WIRE004]',
        )
        assert codes(suppressed) == []


class TestWire005UnorderedIteration:
    def test_set_iteration_flagged(self):
        found = diags(
            """
            import struct

            def encode_tags(tags):
                out = bytearray()
                for tag in set(tags):
                    out += struct.pack(">H", tag)
                return bytes(out)

            def decode_tags(raw: bytes):
                tags = []
                pos = 0
                while pos + 2 <= len(raw):
                    (tag,) = struct.unpack_from(">H", raw, pos)
                    tags.append(tag)
                    pos += 2
                return tags
            """
        )
        assert [d.code for d in found] == ["WIRE005"]

    def test_sorted_iteration_is_clean(self):
        assert codes(
            """
            import struct

            def encode_tags(tags):
                out = bytearray()
                for tag in sorted(set(tags)):
                    out += struct.pack(">H", tag)
                return bytes(out)

            def decode_tags(raw: bytes):
                tags = []
                pos = 0
                while pos + 2 <= len(raw):
                    (tag,) = struct.unpack_from(">H", raw, pos)
                    tags.append(tag)
                    pos += 2
                return tags
            """
        ) == []


class TestEntryPoints:
    def test_ignore_filters_codes(self):
        assert diags(MAGIC_MODULE, ignore=("WIRE004",)) == []

    def test_syntax_error_produces_no_diagnostics(self):
        assert wire_source("def broken(:", "mem.py") == []

    def test_parallel_run_is_identical_to_serial(self):
        paths = [os.path.join(REPO_ROOT, "src", "repro", "core")]
        assert wire_paths(paths, jobs=2) == wire_paths(paths, jobs=1)

    def test_shipped_tree_is_wire_clean(self):
        paths = [
            os.path.join(REPO_ROOT, "src", "repro"),
            os.path.join(REPO_ROOT, "examples"),
        ]
        assert analyze_wireformat([p for p in paths if os.path.exists(p)]) == []
