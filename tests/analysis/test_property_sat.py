"""Property test: analyzer verdicts agree with brute-force evaluation.

Random selectors are generated from the full grammar; for each one the
analyzer's verdict is checked against exhaustive evaluation over the
product of the per-attribute candidate domains that
:func:`repro.analysis.interesting_values` infers (every literal, the
numeric/string neighbours around it, both booleans, list candidates, and
MISSING — enough to land in every truth-relevant region):

* SAT must come with a witness that actually matches;
* UNSAT means **no** sampled profile may match;
* a tautology verdict means **every** sampled profile matches.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import Verdict, analyze_selector, interesting_values
from repro.core.attributes import MISSING
from repro.core.selectors import Selector

ATTRS = ["x", "y"]
SCALARS = ["0", "1", "5", "5.5", "'a'", "'b'", "true"]

_atoms = st.one_of(
    st.sampled_from(["true", "false"]),
    st.sampled_from(ATTRS),
    st.sampled_from(ATTRS).map(lambda a: f"exists({a})"),
    st.builds(
        lambda a, op, v: f"{a} {op} {v}",
        st.sampled_from(ATTRS),
        st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
        st.sampled_from(SCALARS),
    ),
    st.builds(
        lambda a, v: f"{a} contains {v}",
        st.sampled_from(ATTRS),
        st.sampled_from(["'a'", "1"]),
    ),
    st.builds(
        lambda a, vs: f"{a} in [{vs}]",
        st.sampled_from(ATTRS),
        st.sampled_from(["1, 2", "'a', 'b'", "1, 'a'", "0"]),
    ),
)

_selectors = st.recursive(
    _atoms,
    lambda inner: st.one_of(
        st.builds(lambda a, b: f"({a} and {b})", inner, inner),
        st.builds(lambda a, b: f"({a} or {b})", inner, inner),
        inner.map(lambda a: f"not ({a})"),
    ),
    max_leaves=6,
)


def _sampled_profiles(text):
    domains = interesting_values(text)
    names = sorted(domains)
    for combo in itertools.product(*(domains[n] for n in names)):
        yield {n: v for n, v in zip(names, combo) if v is not MISSING}


@given(_selectors)
@settings(max_examples=300, deadline=None)
def test_verdict_agrees_with_brute_force(text):
    report = analyze_selector(text)
    sel = Selector(text)

    if report.verdict is Verdict.SAT:
        assert report.witness is not None
        assert sel.matches(report.witness), (
            f"{text!r}: claimed witness {report.witness!r} does not match"
        )
    elif report.verdict is Verdict.UNSAT:
        for env in _sampled_profiles(text):
            assert not sel.matches(env), (
                f"{text!r}: UNSAT verdict but {env!r} matches"
            )

    if report.tautology is True:
        for env in _sampled_profiles(text):
            assert sel.matches(env), (
                f"{text!r}: tautology verdict but {env!r} does not match"
            )


@given(_selectors)
@settings(max_examples=150, deadline=None)
def test_unknown_only_outside_exact_fragment(text):
    # the exact fragment has no attr-vs-attr comparisons; within it the
    # analyzer must always decide (modulo witness-sampling bad luck,
    # which this grammar's literal-only atoms do not trigger)
    report = analyze_selector(text)
    assert report.verdict in (Verdict.SAT, Verdict.UNSAT)
