"""Unit tests for the project call graph the dataflow passes run over."""

from repro.analysis import build_call_graph_from_sources
from repro.analysis.callgraph import module_name_for_path


def graph_of(*sources):
    return build_call_graph_from_sources(list(sources))


class TestModuleNames:
    def test_src_rooted_path_becomes_dotted(self):
        assert (
            module_name_for_path("src/repro/wireless/sir.py") == "repro.wireless.sir"
        )

    def test_repro_rooted_path_without_src(self):
        assert module_name_for_path("repro/core/netstate.py") == "repro.core.netstate"

    def test_loose_file_uses_stem(self):
        assert module_name_for_path("corpus/snippet.py") == "snippet"

    def test_package_init_maps_to_package(self):
        assert module_name_for_path("src/repro/analysis/__init__.py") == "repro.analysis"


class TestDeclarations:
    def test_functions_and_methods_get_qualnames(self):
        g = graph_of(
            (
                "mod.py",
                "def free():\n"
                "    pass\n"
                "class Box:\n"
                "    def get(self):\n"
                "        pass\n",
            )
        )
        assert "mod.free" in g.functions
        assert "mod.Box.get" in g.functions
        assert g.functions["mod.Box.get"].cls == "Box"

    def test_params_exclude_self(self):
        g = graph_of(
            ("mod.py", "class Box:\n    def put(self, item, *, late=False):\n        pass\n")
        )
        assert g.functions["mod.Box.put"].params == ("item", "late")

    def test_class_bases_recorded(self):
        g = graph_of(
            (
                "mod.py",
                "class WireError(Exception):\n    pass\n"
                "class RtpError(WireError):\n    pass\n",
            )
        )
        assert g.class_bases["RtpError"] == ("WireError",)
        assert "WireError" in g.ancestors("RtpError")

    def test_self_attr_ctor_types_recorded(self):
        g = graph_of(
            (
                "mod.py",
                "class Sock:\n"
                "    def send(self, b):\n"
                "        pass\n"
                "class Host:\n"
                "    def __init__(self):\n"
                "        self.sock = Sock()\n",
            )
        )
        assert g.attr_types[("Host", "sock")] == "Sock"


class TestCallResolution:
    def test_module_level_lexical_call(self):
        g = graph_of(
            ("mod.py", "def helper():\n    pass\ndef entry():\n    helper()\n")
        )
        assert g.callees_of("mod.entry") == {"mod.helper"}
        assert g.callers_of("mod.helper") == {"mod.entry"}

    def test_self_dispatch_resolves_to_method(self):
        g = graph_of(
            (
                "mod.py",
                "class Box:\n"
                "    def get(self):\n"
                "        return self.check()\n"
                "    def check(self):\n"
                "        pass\n",
            )
        )
        assert g.callees_of("mod.Box.get") == {"mod.Box.check"}

    def test_ctor_assigned_local_receiver_is_typed(self):
        g = graph_of(
            (
                "mod.py",
                "class Sched:\n"
                "    def call_after(self, delay, fn):\n"
                "        pass\n"
                "def arm(fn):\n"
                "    s = Sched()\n"
                "    s.call_after(1.0, fn)\n",
            )
        )
        (site,) = [s for s in g.calls_from("mod.arm") if s.method == "call_after"]
        assert site.recv_type == "Sched"
        assert site.callee == "mod.Sched.call_after"

    def test_annotated_parameter_receiver_is_typed(self):
        g = graph_of(
            (
                "mod.py",
                "class Sched:\n"
                "    def cancel(self):\n"
                "        pass\n"
                "def stop(s: Sched):\n"
                "    s.cancel()\n",
            )
        )
        (site,) = g.calls_from("mod.stop")
        assert site.recv_type == "Sched"

    def test_self_attr_receiver_resolved_across_methods(self):
        g = graph_of(
            (
                "mod.py",
                "class Sock:\n"
                "    def send(self, b):\n"
                "        pass\n"
                "class Host:\n"
                "    def __init__(self):\n"
                "        self.sock = Sock()\n"
                "    def tx(self):\n"
                "        self.sock.send(b'x')\n",
            )
        )
        (site,) = g.calls_from("mod.Host.tx")
        assert site.recv_type == "Sock"
        assert site.callee == "mod.Sock.send"

    def test_cross_module_import_resolution(self):
        g = graph_of(
            ("src/pkg/util.py", "def helper():\n    pass\n"),
            (
                "src/pkg/app.py",
                "from pkg.util import helper\n\ndef entry():\n    helper()\n",
            ),
        )
        assert g.callees_of("pkg.app.entry") == {"pkg.util.helper"}

    def test_unresolved_call_still_recorded_as_site(self):
        g = graph_of(("mod.py", "def entry(x):\n    x.mystery()\n"))
        (site,) = g.calls_from("mod.entry")
        assert site.callee is None
        assert site.method == "mystery"

    def test_syntax_error_file_is_skipped(self):
        g = graph_of(("bad.py", "def broken(:\n"), ("ok.py", "def fine():\n    pass\n"))
        assert "fine" in {f.name for f in g.functions.values()}
        assert "bad.py" not in g.sources

    def test_function_by_suffix(self):
        g = graph_of(("src/pkg/util.py", "def helper():\n    pass\n"))
        assert g.function_by_suffix("util.helper").qualname == "pkg.util.helper"
        assert g.function_by_suffix("nope.missing") is None
