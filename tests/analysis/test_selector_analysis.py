"""Unit tests for the selector analyzer (SAT, vacuity, subsumption)."""

import pytest

from repro.analysis import (
    Verdict,
    analyze_selector,
    analyze_selector_set,
    implies,
    interesting_values,
    overlaps,
)
from repro.core.attributes import MISSING
from repro.core.selectors import Selector


class TestSatisfiability:
    @pytest.mark.parametrize(
        "text",
        [
            "role == 'medic'",
            "x > 5 and x < 6",
            "x >= 5 and x <= 5",
            "caps contains 'jpeg' and caps contains 'png'",
            "x in [1, 2, 'a'] and x >= 2",
            "not x == 1",
            "exists(x) and x != 1",
            "a == 1 and b == 2 and c == 'z'",
            "x < 'b' and x > 'a'",
        ],
    )
    def test_sat_with_verified_witness(self, text):
        report = analyze_selector(text)
        assert report.verdict is Verdict.SAT
        assert report.witness is not None
        assert Selector(text).matches(report.witness)

    @pytest.mark.parametrize(
        "text",
        [
            "x > 5 and x < 5",
            "x >= 5 and x < 5",
            "x == 1 and x == 2",
            "x == 1 and not x == 1",
            "x in [1, 2] and not x in [1, 2, 3]",
            "false",
            "x == true and not x",
            "not exists(x) and caps contains 'a' and caps == x or false",
        ],
    )
    def test_unsat(self, text):
        assert analyze_selector(text).verdict is Verdict.UNSAT

    def test_missing_semantics_not_a_tautology(self):
        # x >= 0 or x < 0 fails when x is absent: NOT vacuous
        report = analyze_selector("x >= 0 or x < 0")
        assert report.verdict is Verdict.SAT
        assert report.tautology is False

    def test_excluded_middle_on_equality_is_tautology(self):
        report = analyze_selector("x == 1 or not x == 1")
        assert report.tautology is True

    def test_attr_attr_comparison_degrades_to_unknown(self):
        report = analyze_selector("a == 1 and a < b and b < a")
        assert report.verdict is Verdict.UNKNOWN

    def test_same_attr_comparison_stays_exact(self):
        assert analyze_selector("x < x").verdict is Verdict.UNSAT
        assert analyze_selector("x <= x and x == 2").verdict is Verdict.SAT
        assert analyze_selector("x == x and not exists(x)").verdict is Verdict.UNSAT

    def test_clause_budget_truncates_to_unknown(self):
        clause = " or ".join(f"(a{i} == 1 and b{i} == 2)" for i in range(6))
        text = " and ".join(f"({clause})" for _ in range(5))
        report = analyze_selector(text, max_clauses=16)
        assert report.verdict is Verdict.UNKNOWN
        assert report.truncated


class TestImplicationOverlap:
    def test_interval_implication(self):
        assert implies("x > 5", "x > 3") is True
        assert implies("x > 3", "x > 5") is False

    def test_equality_implies_membership(self):
        assert implies("enc == 'jpeg'", "enc in ['jpeg', 'mpeg2']") is True
        assert implies("enc in ['jpeg', 'mpeg2']", "enc == 'jpeg'") is False

    def test_conjunction_implies_conjunct(self):
        assert implies("a == 1 and b == 2", "a == 1") is True

    def test_everything_implies_tautology(self):
        assert implies("x == 1", "true") is True

    def test_overlap(self):
        assert overlaps("x > 5", "x < 7") is True
        assert overlaps("x > 5", "x < 3") is False
        assert overlaps("role == 'medic'", "role == 'clerk'") is False

    def test_selector_set_reports_subsumption_and_equivalence(self):
        diags = analyze_selector_set(
            [
                ("narrow", "x > 5 and x < 7"),
                ("wide", "x > 3"),
                ("wide-again", "3 < x"),
            ]
        )
        messages = " | ".join(d.message for d in diags)
        assert all(d.code == "SEL005" for d in diags)
        assert "narrow is subsumed by wide" in messages
        assert "equivalent" in messages


class TestInterestingValues:
    def test_covers_constants_and_boundaries(self):
        domains = interesting_values("x > 5 and enc == 'jpeg'")
        assert MISSING in domains["x"]
        assert any(v == 5 for v in domains["x"] if not isinstance(v, bool))
        assert any(v == 6 for v in domains["x"] if not isinstance(v, bool))
        assert "jpeg" in domains["enc"]

    def test_contains_produces_list_candidates(self):
        domains = interesting_values("caps contains 'jpeg'")
        assert ["jpeg"] in domains["caps"]
        assert [] in domains["caps"]
