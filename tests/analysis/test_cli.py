"""The ``python -m repro.analysis`` CLI: output formats and exit codes."""

import json

from repro.analysis.__main__ import main

UNSAT = "load > 80 and load < 20"


class TestExitCodes:
    def test_clean_run_exits_zero(self, capsys):
        assert main(["--selector", "load > 80"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_error_diagnostic_fails_gate(self, capsys):
        assert main(["--selector", UNSAT]) == 1
        assert "SEL001" in capsys.readouterr().out

    def test_fail_on_never_always_exits_zero(self, capsys):
        assert main(["--selector", UNSAT, "--fail-on", "never"]) == 0

    def test_fail_on_warning_catches_tautology(self, capsys):
        # vacuous selector is only a warning: passes the default gate,
        # fails the stricter one
        assert main(["--selector", "x == 1 or not x == 1"]) == 0
        assert main(["--selector", "x == 1 or not x == 1", "--fail-on", "warning"]) == 1

    def test_ignore_drops_the_rule(self, capsys):
        assert main(["--selector", UNSAT, "--ignore", "SEL001"]) == 0


class TestOutput:
    def test_text_output_has_summary_line(self, capsys):
        main(["--selector", UNSAT, "--fail-on", "never"])
        out = capsys.readouterr().out
        assert "error: SEL001" in out
        assert "analysis: 1 error(s)" in out

    def test_json_output_is_machine_readable(self, capsys):
        main(["--selector", UNSAT, "--json", "--fail-on", "never"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["error"] == 1
        assert payload["worst"] == "error"
        assert payload["diagnostics"][0]["code"] == "SEL001"

    def test_json_clean_run(self, capsys):
        main(["--selector", "load > 80", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"error": 0, "warning": 0, "info": 0}
        assert payload["worst"] is None


class TestPaths:
    def test_explicit_path_is_linted(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text('sel = Selector("role == \'a\' and role == \'b\'")\n')
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "SEL001" in out and "bad.py" in out

    def test_clean_path_passes(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text('sel = Selector("role == \'medic\'")\n')
        assert main([str(good)]) == 0

    def test_no_defaults_skips_policy_lint(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert main([str(good), "--no-defaults"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s), 0 warning(s), 0 info(s)" in out


BAD_TYPESTATE = (
    "def bad():\n"
    "    lm = LockManager()\n"
    "    lm.release('k', 'a')\n"
)


class TestTypestate:
    def test_typestate_finding_gates(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_TYPESTATE)
        assert main([str(bad), "--no-defaults"]) == 1
        assert "TSP001" in capsys.readouterr().out

    def test_no_typestate_skips_the_pass(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_TYPESTATE)
        assert main([str(bad), "--no-defaults", "--no-typestate"]) == 0
        assert "TSP001" not in capsys.readouterr().out

    def test_typestate_findings_reach_sarif(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_TYPESTATE)
        main([str(bad), "--no-defaults", "--format", "sarif", "--fail-on", "never"])
        sarif = json.loads(capsys.readouterr().out)
        results = sarif["runs"][0]["results"]
        assert any(r["ruleId"] == "TSP001" for r in results)
        rules = sarif["runs"][0]["tool"]["driver"]["rules"]
        assert any(r["id"] == "TSP001" for r in rules)


class TestExplain:
    def test_explain_all_lists_every_rule(self, capsys):
        assert main(["--explain"]) == 0
        out = capsys.readouterr().out
        for code in ("SEL001", "RES003", "TSP001", "TSP007", "CON003"):
            assert code in out

    def test_explain_specific_codes(self, capsys):
        assert main(["--explain", "TSP001", "CON002"]) == 0
        out = capsys.readouterr().out
        assert "TSP001" in out and "CON002" in out
        assert "SEL001" not in out

    def test_explain_unknown_code_fails(self, capsys):
        assert main(["--explain", "NOPE99"]) == 2
        assert "unknown rule code" in capsys.readouterr().err
