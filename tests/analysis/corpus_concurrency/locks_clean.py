"""Known-good twin of ``locks_bad.py`` — must produce zero findings.

Same shapes, done right: one global acquisition order, a re-entrant
lock for the recursive path, no cross-layer nesting, every write of the
guarded field under its lock.
"""

import threading


# the Channel scenario with one consistent order: no cycle
class OrderedChannel:
    def __init__(self):
        self.rx_mu = threading.Lock()
        self.tx_mu = threading.Lock()

    def send(self):
        with self.rx_mu:
            with self.tx_mu:
                pass

    def recv(self):
        with self.rx_mu:
            with self.tx_mu:
                pass


# the Recurse scenario on an RLock: self-acquire is legal
class Reenter:
    def __init__(self):
        self.mu = threading.RLock()

    def outer(self):
        with self.mu:
            self.inner()

    def inner(self):
        with self.mu:
            pass


# the Endpoint scenario without nesting: snapshot under the lock,
# call the inner layer after releasing
class FlatEndpoint:
    def __init__(self):
        self.mu = threading.Lock()
        self.pending = []

    def register(self, cb):
        with self.mu:
            self.pending.append(cb)

    def flush(self, bus_attach):
        with self.mu:
            batch = list(self.pending)
            self.pending = []
        for cb in batch:
            bus_attach(cb)


# the Counter scenario with every write guarded
class GuardedCounter:
    def __init__(self):
        self.mu = threading.Lock()
        self.total = 0

    def add(self, n):
        with self.mu:
            self.total += n

    def reset(self):
        with self.mu:
            self.total = 0
