"""Known-good twin of ``races_bad.py`` — must produce zero findings.

Same shapes, synchronized: every cross-thread write under one lock,
lazy init double-checked under the lock, check-then-act collapsed into
one atomic locked operation.
"""

import threading


class GuardedTelemetry:
    def __init__(self):
        self.mu = threading.Lock()
        self.samples = 0

    def on_sample(self):
        with self.mu:
            self.samples += 1

    def start(self):
        threading.Thread(target=self.on_sample).start()

    def reset(self):
        with self.mu:
            self.samples = 0


class GuardedPoolHolder:
    def __init__(self):
        self.mu = threading.Lock()
        self.pool = None

    def ensure(self):
        with self.mu:
            if self.pool is None:
                self.pool = object()
            return self.pool


class GuardedRegistry:
    def __init__(self):
        self.mu = threading.Lock()
        self.entries = {}

    def publish(self, key, value):
        with self.mu:
            self.entries[key] = value

    def claim(self, key):
        with self.mu:
            return self.entries.pop(key, None)
