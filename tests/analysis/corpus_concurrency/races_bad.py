"""Known-bad shared-state race corpus — every marked line must be
flagged.  The clean twin (``races_clean.py``) must stay silent.
"""

import threading


# ----------------------------------------------------------------------
# RACE001 — field written from a spawned thread AND the main surface,
# with no lock anywhere
# ----------------------------------------------------------------------
class Telemetry:
    def __init__(self):
        self.samples = 0

    def on_sample(self):
        self.samples += 1  # RACE001: thread-root write, no lock

    def start(self):
        threading.Thread(target=self.on_sample).start()

    def reset(self):
        self.samples = 0


# ----------------------------------------------------------------------
# RACE002 — unsynchronized lazy initialisation in a lock-owning class
# ----------------------------------------------------------------------
class PoolHolder:
    def __init__(self):
        self.mu = threading.Lock()
        self.pool = None

    def ensure(self):
        if self.pool is None:  # RACE002: two threads can both see None
            self.pool = object()
        return self.pool


# ----------------------------------------------------------------------
# RACE003 — non-atomic check-then-act on a shared container
# ----------------------------------------------------------------------
class Registry:
    def __init__(self):
        self.mu = threading.Lock()
        self.entries = {}

    def publish(self, key, value):
        with self.mu:
            self.entries[key] = value

    def claim(self, key):
        if key in self.entries:  # RACE003: test and pop are two steps
            return self.entries.pop(key)
        return None
