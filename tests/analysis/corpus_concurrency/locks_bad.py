"""Known-bad lock-discipline corpus — every marked line must be flagged.

Each scenario is the smallest program exhibiting one DLK rule; the
clean twin (``locks_clean.py``) does the same work correctly and must
stay silent.
"""

import threading


# ----------------------------------------------------------------------
# DLK001 — two-lock order cycle (classic AB/BA deadlock)
# ----------------------------------------------------------------------
class Channel:
    def __init__(self):
        self.rx_mu = threading.Lock()
        self.tx_mu = threading.Lock()

    def send(self):
        with self.tx_mu:
            with self.rx_mu:  # DLK001: tx->rx here, rx->tx in recv
                pass

    def recv(self):
        with self.rx_mu:
            with self.tx_mu:
                pass


# ----------------------------------------------------------------------
# DLK001 — non-reentrant self-acquire through a helper (1-cycle)
# ----------------------------------------------------------------------
class Recurse:
    def __init__(self):
        self.mu = threading.Lock()

    def outer(self):
        with self.mu:
            self.inner()

    def inner(self):
        with self.mu:  # DLK001: plain Lock re-acquired while held
            pass


# ----------------------------------------------------------------------
# DLK002 — cross-backend nesting: outer layer's lock held while the
# inner layer takes its own
# ----------------------------------------------------------------------
class InnerBus:
    def __init__(self):
        self.mu = threading.Lock()
        self.subs = []

    def attach(self, cb):
        with self.mu:  # DLK002: acquired while Endpoint.mu is held
            self.subs.append(cb)


class Endpoint:
    def __init__(self):
        self.mu = threading.Lock()
        self.bus = InnerBus()

    def register(self, cb):
        with self.mu:
            self.bus.attach(cb)


# ----------------------------------------------------------------------
# DLK003 — field guarded on one path, bare on another
# ----------------------------------------------------------------------
class Counter:
    def __init__(self):
        self.mu = threading.Lock()
        self.total = 0

    def add(self, n):
        with self.mu:
            self.total += n

    def reset(self):
        self.total = 0  # DLK003: written without Counter.mu
