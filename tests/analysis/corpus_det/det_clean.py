"""Known-good determinism corpus: the sanctioned twin of every DET rule.

``CollaborationFramework.run`` is a simulation root, so this code is in
scope for every DET rule — and must produce zero findings: a seeded
instance RNG (DET001), the simulation's own clock (DET002), sorted
iteration before an order-sensitive sink (DET003), and stable sequence
numbers as heap keys (DET004).  This file is analyzed, never imported.
"""


class CollaborationFramework:
    def __init__(self, seed):
        # seeded instance generator: clean DET001
        self.rng = random.Random(seed)
        self._heap = []
        self.trace = []

    def run(self, events):
        jitter = self.rng.random()
        # simulation clock, not the wall: clean DET002
        started = self.clock.now
        ready = {event.key for event in events}
        # sorted before the sink, order is reproducible: clean DET003
        for key in sorted(ready):
            self.trace.append(key)
        for event in events:
            # value-stable ordering key: clean DET004
            heappush(self._heap, (event.seq, started, jitter, event))
