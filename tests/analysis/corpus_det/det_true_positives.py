"""Known-bad determinism corpus: every DET rule must fire here.

``Scheduler.step`` is a simulation root, so everything below is
replay-relevant.  Each marked line breaks run-to-run reproducibility in
a distinct way; the golden expectation file pins exactly these
findings.  This file is analyzed, never imported.
"""


class Scheduler:
    def __init__(self):
        self._heap = []
        self.trace = []

    def step(self, events):
        # DET001: global RNG draw — hidden process-wide state
        jitter = random.random()
        # DET001: unseeded generator — fresh OS entropy every run
        rng = default_rng()
        # DET002: wall-clock read inside simulation logic
        started = time.time()
        ready = {event.key for event in events}
        # DET003: set iteration feeding an order-sensitive sink
        for key in ready:
            self.trace.append(key)
        # DET004: id() in an ordering key — allocation-address order
        heappush(self._heap, (id(jitter), started, rng))
