"""Baseline multiset semantics, SARIF rendering, and the CLI plumbing."""

import json

from repro.analysis import (
    Severity,
    apply_baseline,
    dump_baseline,
    fingerprint,
    load_baseline,
    render_sarif,
)
from repro.analysis.baseline import stale_entries
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.__main__ import main


def diag(code="RES002", file="src/a.py", line=10, msg="double close", sev=Severity.WARNING):
    return Diagnostic(code, sev, msg, subject="f", file=file, line=line, column=3)


class TestFingerprint:
    def test_excludes_line_and_column(self):
        assert fingerprint(diag(line=10)) == fingerprint(diag(line=99))

    def test_distinguishes_file_and_message(self):
        assert fingerprint(diag(file="src/a.py")) != fingerprint(diag(file="src/b.py"))
        assert fingerprint(diag(msg="x")) != fingerprint(diag(msg="y"))

    def test_normalizes_path_separators(self):
        assert fingerprint(diag(file="src\\a.py")) == fingerprint(diag(file="src/a.py"))


class TestBaselineRoundTrip:
    def test_dump_then_load(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(dump_baseline([diag(), diag(), diag(code="UNI003")]))
        loaded = load_baseline(str(path))
        assert loaded[fingerprint(diag())] == 2
        assert loaded[fingerprint(diag(code="UNI003"))] == 1

    def test_apply_is_a_multiset(self):
        baseline = {fingerprint(diag()): 1}
        # two instances of the same baselined finding: one is new debt
        remaining = apply_baseline([diag(line=10), diag(line=20)], baseline)
        assert len(remaining) == 1

    def test_apply_keeps_unknown_findings(self):
        remaining = apply_baseline([diag(code="UNI001")], {fingerprint(diag()): 5})
        assert [d.code for d in remaining] == ["UNI001"]

    def test_stale_entries_report_paid_down_debt(self):
        baseline = {fingerprint(diag()): 2, fingerprint(diag(code="UNI003")): 1}
        stale = stale_entries([diag()], baseline)
        assert stale == {
            fingerprint(diag()): 1,
            fingerprint(diag(code="UNI003")): 1,
        }

    def test_load_rejects_non_baseline_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("[1, 2, 3]")
        try:
            load_baseline(str(path))
        except ValueError as exc:
            assert "not a baseline file" in str(exc)
        else:
            raise AssertionError("expected ValueError")


class TestSarif:
    def test_log_structure(self):
        log = json.loads(render_sarif([diag()]))
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-analysis"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"UNI001", "EXC001", "RES003", "SEL001"} <= rule_ids

    def test_result_levels_and_location(self):
        log = json.loads(
            render_sarif([diag(sev=Severity.ERROR), diag(code="LNT001", sev=Severity.INFO)])
        )
        results = log["runs"][0]["results"]
        assert [r["level"] for r in results] == ["error", "note"]
        loc = results[0]["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "src/a.py"
        assert loc["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
        assert loc["region"] == {"startLine": 10, "startColumn": 3}

    def test_diagnostic_without_file_still_renders(self):
        d = Diagnostic("SEL001", Severity.ERROR, "unsatisfiable", subject="sel")
        results = json.loads(render_sarif([d]))["runs"][0]["results"]
        assert "locations" not in results[0]
        assert "[sel]" in results[0]["message"]["text"]


BAD_SOURCE = (
    "def late(net):\n"
    '    sock = DatagramSocket(net, "a")\n'
    "    sock.close()\n"
    '    sock.sendto(b"x", ("b", 7))\n'
)


class TestCli:
    def test_sarif_format_emits_valid_json(self, tmp_path, capsys):
        bad = tmp_path / "late.py"
        bad.write_text(BAD_SOURCE)
        main([str(bad), "--no-defaults", "--format", "sarif", "--fail-on", "never"])
        log = json.loads(capsys.readouterr().out)
        assert {r["ruleId"] for r in log["runs"][0]["results"]} >= {"RES003"}

    def test_write_then_apply_baseline_gates_only_new_findings(self, tmp_path, capsys):
        bad = tmp_path / "late.py"
        bad.write_text(BAD_SOURCE)
        baseline = tmp_path / "baseline.json"
        assert main([str(bad), "--no-defaults", "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        # baselined: the gate passes even at the strictest threshold
        assert (
            main([str(bad), "--no-defaults", "--baseline", str(baseline), "--fail-on", "info"])
            == 0
        )
        # without the baseline the same tree fails
        assert main([str(bad), "--no-defaults"]) == 1

    def test_missing_baseline_treated_as_empty(self, tmp_path, capsys):
        bad = tmp_path / "late.py"
        bad.write_text(BAD_SOURCE)
        code = main([str(bad), "--no-defaults", "--baseline", str(tmp_path / "nope.json")])
        assert code == 1
        assert "treating as empty" in capsys.readouterr().err

    def test_stale_baseline_entries_noted(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        baseline = tmp_path / "baseline.json"
        baseline.write_text(dump_baseline([diag()]))
        assert main([str(good), "--no-defaults", "--baseline", str(baseline)]) == 0
        assert "no longer match" in capsys.readouterr().err

    def test_no_dataflow_skips_the_passes(self, tmp_path, capsys):
        bad = tmp_path / "late.py"
        bad.write_text(BAD_SOURCE)
        assert main([str(bad), "--no-defaults", "--no-dataflow"]) == 0

    def test_shipped_tree_is_clean_at_warning(self, capsys):
        # the acceptance gate: all UNI/EXC/RES true positives in the tree
        # are fixed, so the analyzer passes with an empty baseline
        assert main(["src/repro", "--fail-on", "warning"]) == 0
