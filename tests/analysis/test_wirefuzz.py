"""Differential fuzz harness suite.

Pins three layers: the registry itself (every shipped codec is
registered with its declared error class), the harness mechanics (a
deliberately broken codec IS caught; runs are seed-deterministic), and
the hypothesis-driven round-trip property for every registered pair.
"""

import random
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.wirefuzz import (
    FuzzCodecPair,
    default_registry,
    fuzz_pair,
    fuzz_registry,
    main,
)

REGISTRY = default_registry()


class TestRegistry:
    def test_covers_every_shipped_codec_family(self):
        names = {p.name for p in REGISTRY}
        assert len(names) == len(REGISTRY), "duplicate pair names"
        for needle in (
            "events.",
            "rtp.RtpPacket",
            "rtp.nack",
            "progressive.ImagePacket",
            "serialization.SemanticMessage",
            "ber.BerValue",
        ):
            assert any(n.startswith(needle) or n == needle for n in names), needle

    def test_every_event_class_is_registered(self):
        from repro.core import events as ev

        event_classes = {
            name
            for name, obj in vars(ev).items()
            if isinstance(obj, type)
            and obj is not ev.Event
            and issubclass(obj, ev.Event)
        }
        registered = {
            p.name.split(".", 1)[1] for p in REGISTRY if p.name.startswith("events.")
        }
        assert registered == event_classes

    def test_expected_errors_are_declared_classes_not_valueerror(self):
        for pair in REGISTRY:
            for err in pair.expected_errors:
                assert issubclass(err, Exception)
                assert err is not ValueError, (
                    f"{pair.name}: catching bare ValueError would mask"
                    " UnicodeDecodeError-style crashes"
                )

    def test_static_files_exist(self):
        import os

        for pair in REGISTRY:
            assert os.path.exists(pair.static_file), pair.name


class TestHarnessMechanics:
    @staticmethod
    def _broken_pair():
        # decoder unpacks without any bounds check: truncation crashes
        return FuzzCodecPair(
            name="test.broken",
            encode=lambda v: struct.pack(">I", v),
            decode=lambda raw: struct.unpack(">I", raw)[0],
            sample=lambda rng: rng.randrange(2**32),
            expected_errors=(KeyError,),  # struct.error is NOT declared
            static_file="does-not-matter.py",
        )

    def test_broken_codec_is_caught(self):
        report = fuzz_pair(self._broken_pair(), seed=1, rounds=2)
        assert report.failures
        assert {f.property for f in report.failures} <= {
            "round-trip",
            "truncation",
            "bit-flip",
        }
        assert any(f.property == "truncation" for f in report.failures)

    def test_asymmetric_codec_fails_round_trip(self):
        pair = FuzzCodecPair(
            name="test.lossy",
            encode=lambda v: struct.pack(">I", v),
            decode=lambda raw: struct.unpack(">H", raw[:2])[0],  # drops half
            sample=lambda rng: rng.randrange(2**32),
            expected_errors=(KeyError,),
            static_file="does-not-matter.py",
        )
        report = fuzz_pair(pair, seed=1, rounds=2)
        assert any(f.property == "round-trip" for f in report.failures)

    def test_same_seed_is_deterministic(self):
        a = fuzz_pair(self._broken_pair(), seed=42, rounds=3)
        b = fuzz_pair(self._broken_pair(), seed=42, rounds=3)
        assert [str(f) for f in a.failures] == [str(f) for f in b.failures]
        assert (a.rounds, a.truncations, a.flips) == (b.rounds, b.truncations, b.flips)

    def test_registry_survives_fixed_seed(self):
        report = fuzz_registry(rounds=2, seed=1337)
        assert report.failures == []
        assert report.rounds == 2 * len(REGISTRY)
        assert report.truncations > 0 and report.flips > 0

    def test_main_exit_status(self, capsys):
        assert main(["--seed", "1337", "--rounds", "1"]) == 0
        out = capsys.readouterr().out
        assert "no uncaught decoder exception" in out


@pytest.mark.parametrize("pair", REGISTRY, ids=[p.name for p in REGISTRY])
@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=10, deadline=None)
def test_round_trip_property(pair, seed):
    """decode(encode(x)) == x for every registered codec, any sample."""
    rng = random.Random(seed)
    value = pair.sample(rng)
    decoded = pair.decode(pair.encode(value))
    assert pair.equal(value, decoded), pair.name
