"""Opt-in runtime hooks: diagnostics surface as warnings, never behaviour."""

import warnings

import pytest

from repro.analysis import DiagnosticWarning
from repro.core.policies import PolicyDatabase, SirTierPolicy, StepPolicy
from repro.core.profiles import ClientProfile
from repro.messaging.broker import SemanticBus

ZIGZAG = StepPolicy("cpu_load", "packets", [(44, 16), (58, 1), (72, 8)], floor=2)


class TestPolicyDatabaseHook:
    def test_validating_database_warns_on_bad_policy(self):
        db = PolicyDatabase(validate=True)
        with pytest.warns(DiagnosticWarning, match="POL001"):
            db.add_step("zigzag", ZIGZAG)
        # behaviour unchanged: the policy still registered
        assert "zigzag" in db.step_policies

    def test_validating_database_warns_on_collapsed_tiers(self):
        db = PolicyDatabase(validate=True)
        with pytest.warns(DiagnosticWarning, match="POL004"):
            db.set_sir_policy(SirTierPolicy(image_db=4.0, sketch_db=4.0, text_db=-6.0))

    def test_default_database_is_silent(self):
        db = PolicyDatabase()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DiagnosticWarning)
            db.add_step("zigzag", ZIGZAG)
        assert "zigzag" in db.step_policies

    def test_clean_policy_emits_nothing(self):
        db = PolicyDatabase(validate=True)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DiagnosticWarning)
            db.add_step("cpu", StepPolicy("cpu_load", "packets", [(44, 16), (58, 8)], floor=1))


class TestSemanticBusHook:
    def test_validating_bus_warns_on_unsat_interest(self):
        bus = SemanticBus(validate_profiles=True)
        profile = ClientProfile("nobody", interest="load > 80 and load < 20")
        with pytest.warns(DiagnosticWarning, match="SEL001"):
            bus.attach(profile, lambda delivery: None)

    def test_default_bus_is_silent(self):
        bus = SemanticBus()
        profile = ClientProfile("nobody", interest="load > 80 and load < 20")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DiagnosticWarning)
            bus.attach(profile, lambda delivery: None)

    def test_default_accept_everything_interest_not_flagged(self):
        bus = SemanticBus(validate_profiles=True)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DiagnosticWarning)
            bus.attach(ClientProfile("quiet"), lambda delivery: None)

    def test_warning_does_not_block_attachment(self):
        bus = SemanticBus(validate_profiles=True)
        profile = ClientProfile("nobody", interest="load > 80 and load < 20")
        with pytest.warns(DiagnosticWarning):
            sub = bus.attach(profile, lambda delivery: None)
        assert sub is not None
