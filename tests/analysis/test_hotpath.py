"""Unit and property tests for the PERF/DET hot-path analyzer.

The golden corpora under ``corpus_perf``/``corpus_det`` pin the rules'
end-to-end behaviour on realistic files; the tests here exercise the
machinery at a finer grain — loop-context propagation across calls, the
exemptions each rule promises (iterable position, cache layer, exempt
paths, suppressions), and the headline determinism property: DET
verdicts must not depend on the order modules are fed to the analyzer.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    build_call_graph_from_sources,
    det_diagnostics,
    hot_contexts,
    perf_diagnostics,
)
from repro.core.selectors import parse


def graph_for(*named_sources):
    return build_call_graph_from_sources(list(named_sources))


def perf_codes(*named_sources):
    return {d.code for d in perf_diagnostics(graph_for(*named_sources))}


def det_codes(*named_sources):
    return {d.code for d in det_diagnostics(graph_for(*named_sources))}


# ----------------------------------------------------------------------
# loop-context propagation
# ----------------------------------------------------------------------
def test_hot_context_propagates_through_calls():
    graph = graph_for(
        (
            "src/pkg/bus.py",
            "def deliver(sub, msg):\n"
            "    sub.push(msg)\n"
            "class SemanticBus:\n"
            "    def publish(self, msg):\n"
            "        for sub in self.shortlist(msg):\n"
            "            deliver(sub, msg)\n",
        ),
    )
    contexts = hot_contexts(graph)
    publishers = {q: d for q, d in contexts.items() if q.endswith("publish")}
    delivers = {q: d for q, d in contexts.items() if q.endswith("deliver")}
    assert set(publishers.values()) == {0}
    # deliver() is called from inside publish's loop: one loop deeper
    assert set(delivers.values()) == {1}


def test_cold_functions_have_no_context():
    graph = graph_for(
        ("src/pkg/m.py", "def helper(xs):\n    for x in xs:\n        use(x)\n")
    )
    assert "helper" not in {q.rsplit(".", 1)[-1] for q in hot_contexts(graph)}


# ----------------------------------------------------------------------
# PERF exemptions the rules promise
# ----------------------------------------------------------------------
def test_perf001_fires_on_population_scan_and_respects_suppression():
    src = (
        "class SemanticBus:\n"
        "    def publish(self, msg):\n"
        "        for sub in self._subs:\n"
        "            sub.push(msg)\n"
    )
    assert "PERF001" in perf_codes(("src/pkg/bus.py", src))
    suppressed = src.replace(
        "for sub in self._subs:", "for sub in self._subs:  # repro: ignore[PERF001]"
    )
    assert "PERF001" not in perf_codes(("src/pkg/bus.py", suppressed))


def test_perf002_ignores_copies_in_iterable_position():
    # tuple(...) in the for-iterable is evaluated once, not per iteration
    src = (
        "class SemanticBus:\n"
        "    def publish(self, msg):\n"
        "        for cb in tuple(msg.watchers):\n"
        "            cb(msg)\n"
    )
    assert "PERF002" not in perf_codes(("src/pkg/bus.py", src))


def test_perf004_exempts_the_cache_layer():
    src = (
        "class SemanticBus:\n"
        "    def publish(self, msg):\n"
        "        return Selector(msg.text)\n"
    )
    assert "PERF004" in perf_codes(("src/pkg/bus.py", src))
    # the same construction inside the cache layer itself is the fix, not a bug
    assert "PERF004" not in perf_codes(("src/repro/core/selectors.py", src))


# ----------------------------------------------------------------------
# DET exemptions the rules promise
# ----------------------------------------------------------------------
def test_det002_exempt_paths_registry():
    src = (
        "class Scheduler:\n"
        "    def step(self):\n"
        "        return time.time()\n"
    )
    assert "DET002" in det_codes(("src/pkg/sched.py", src))
    # benchmark harnesses time the wall on purpose
    assert "DET002" not in det_codes(("src/repro/experiments/broker_scale.py", src))


def test_det_rules_only_apply_to_sim_reachable_code():
    src = "def offline_report(rows):\n    import random\n    return random.random()\n"
    assert det_codes(("src/pkg/report.py", src)) == set()


# ----------------------------------------------------------------------
# determinism of the analyzer itself
# ----------------------------------------------------------------------
_MODULES = [
    (
        "src/pkg/sched.py",
        "class Scheduler:\n"
        "    def step(self, events):\n"
        "        jitter = random.random()\n"
        "        for key in {e.key for e in events}:\n"
        "            self.trace.append(key)\n",
    ),
    (
        "src/pkg/net.py",
        "class Network:\n"
        "    def send(self, pkt):\n"
        "        stamp = time.time()\n"
        "        self.wire.write((stamp, pkt))\n",
    ),
    (
        "src/pkg/frame.py",
        "class CollaborationFramework:\n"
        "    def run(self, events):\n"
        "        for event in sorted(events):\n"
        "            heappush(self._heap, (event.seq, event))\n",
    ),
    ("src/pkg/util.py", "def shuffle_free(xs):\n    return sorted(xs)\n"),
]


@settings(max_examples=25, deadline=None)
@given(order=st.permutations(_MODULES))
def test_det_verdicts_invariant_under_module_order(order):
    """The DET finding multiset must not depend on analysis input order."""
    baseline = sorted(
        (d.code, d.file, d.line) for d in det_diagnostics(graph_for(*_MODULES))
    )
    permuted = sorted(
        (d.code, d.file, d.line) for d in det_diagnostics(graph_for(*order))
    )
    assert permuted == baseline


# ----------------------------------------------------------------------
# the analyzer-driven fix: cached selector parsing
# ----------------------------------------------------------------------
def test_parse_is_cached_by_text():
    parse.cache_clear()
    a = parse("role == 'medic' and tier >= 2")
    b = parse("role == 'medic' and tier >= 2")
    assert a is b
    assert parse("role == 'scout'") is not a
