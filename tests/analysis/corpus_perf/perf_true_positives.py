"""Known-bad hot-path corpus: every PERF rule must fire here.

``SemanticBus.publish`` matches the hot-entry registry, so everything
below runs "once per packet" as far as the analyzer is concerned.  Each
marked line is a deliberate violation; the golden expectation file pins
exactly these findings.  This file is analyzed, never imported.
"""


class SemanticBus:
    def __init__(self):
        self._subs = []
        self.default_filter = "role == 'medic'"

    def publish(self, message):
        # PERF004 (b): uncached selector construction from variable text
        fallback = Selector(self.default_filter)
        blob = b""
        for frag in message.frags:
            # PERF003: quadratic immutable-bytes accumulation
            blob += frag
        # PERF001: O(population) scan once per published message
        for sub in self._subs:
            # PERF002: same-source copy re-made per candidate
            headers = dict(message.headers)
            # PERF004 (a): loop-invariant pure call, hoistable
            plan = compile_selector(message.selector_text)
            # PERF005: eager f-string formatting per candidate
            print(f"delivering {message.key} via {plan}")
            sub.deliver(blob, headers, fallback)
