"""Known-good hot-path corpus: the sanctioned twin of every PERF rule.

``RtpReassembler.ingest`` is a registered hot entry, so this code is in
scope for every PERF rule — and must produce zero findings: shortlists
instead of population scans (PERF001), per-item copies instead of
same-source churn (PERF002), ``bytearray`` accumulation (PERF003),
hoisted / cache-layer selector compilation (PERF004), and lazy
%-style logging (PERF005).  This file is analyzed, never imported.
"""


class RtpReassembler:
    def __init__(self):
        self._index = {}
        self.default_filter = "role == 'medic'"

    def ingest(self, message):
        # parse once per call, through the cache layer: clean PERF004
        fallback = compile_selector(self.default_filter)
        # hoisted out of the loop: clean PERF004 (a)
        plan = compile_selector(message.selector_text)
        buf = bytearray()
        for frag in message.frags:
            # amortized accumulation: clean PERF003
            buf.extend(frag)
        blob = bytes(buf)
        # index shortlist, not the population: clean PERF001
        shortlist = self._index.get(message.key, ())
        for sub in shortlist:
            # per-item copy (source varies per iteration): clean PERF002
            headers = dict(sub.overrides)
            # lazy formatting, renders only if the sink wants it: clean PERF005
            log.debug("delivering %s", message.key)
            sub.deliver(blob, headers, plan, fallback)
