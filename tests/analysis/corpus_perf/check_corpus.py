"""Golden-corpus gate: the known-bad PERF corpus must produce exactly
the expected diagnostics, and the known-good twin none at all.

CI runs this after the main analyzer gate::

    python tests/analysis/corpus_perf/check_corpus.py

Regenerate the expectation after intentionally changing a rule or the
corpus with ``--update``.
"""

import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
EXPECTED = os.path.join(HERE, "expected_diagnostics.json")


def current():
    from repro.analysis import analyze_hotpath

    diags = analyze_hotpath([HERE])
    entries = [
        {
            "code": d.code,
            "file": os.path.basename(d.file or ""),
            "line": d.line,
            "subject": d.subject.rsplit(".", 2)[-1],
        }
        for d in diags
    ]
    return sorted(entries, key=lambda e: (e["file"], e["line"] or 0, e["code"]))


def main(argv):
    sys.path.insert(0, os.path.join(HERE, "..", "..", "..", "src"))
    got = current()
    if "--update" in argv:
        with open(EXPECTED, "w", encoding="utf-8") as fh:
            json.dump(got, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {len(got)} expected diagnostic(s)")
        return 0
    with open(EXPECTED, encoding="utf-8") as fh:
        want = json.load(fh)
    problems = []
    if got != want:
        problems.append("perf corpus diagnostics drifted from the golden set:")
        for entry in want:
            if entry not in got:
                problems.append(f"  missing: {entry}")
        for entry in got:
            if entry not in want:
                problems.append(f"  unexpected: {entry}")
    clean_hits = [e for e in got if e["file"] == "perf_clean.py"]
    if clean_hits:
        problems.append("known-good corpus file produced findings:")
        problems.extend(f"  {entry}" for entry in clean_hits)
    if problems:
        print("\n".join(problems), file=sys.stderr)
        return 1
    print(f"perf corpus OK: {len(got)} diagnostic(s) match the golden set")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
