"""Repo lint rules (LNT00x), selector extraction, and inline suppression."""

import os

from repro.analysis import (
    Severity,
    extract_selector_literals,
    lint_paths,
    lint_source,
)

BARE_EXCEPT = (
    "try:\n"
    "    dispatch()\n"
    "except:\n"
    "    pass\n"
)

MUTABLE_DEFAULT = (
    "def handler(queue=[]):\n"
    "    queue.append(1)\n"
)

TRANSPORT_CONSTRUCTION = (
    "from repro.messaging.transport import SimTransport\n"
    "\n"
    "transport = SimTransport()\n"
)


class TestBareExcept:
    def test_error_on_dispatch_path(self):
        diags = lint_source(BARE_EXCEPT, "src/repro/messaging/broker.py")
        assert [(d.code, d.severity) for d in diags] == [("LNT001", Severity.ERROR)]
        assert diags[0].line == 3

    def test_warning_elsewhere(self):
        diags = lint_source(BARE_EXCEPT, "tools/util.py")
        assert [(d.code, d.severity) for d in diags] == [("LNT001", Severity.WARNING)]


class TestMutableDefault:
    def test_error_in_core(self):
        diags = lint_source(MUTABLE_DEFAULT, "src/repro/core/profiles.py")
        assert [(d.code, d.severity) for d in diags] == [("LNT002", Severity.ERROR)]

    def test_warning_outside_core(self):
        diags = lint_source(MUTABLE_DEFAULT, "examples/demo.py")
        assert [(d.code, d.severity) for d in diags] == [("LNT002", Severity.WARNING)]

    def test_keyword_only_defaults_checked(self):
        source = "def f(*, cache={}):\n    return cache\n"
        diags = lint_source(source, "src/repro/core/x.py")
        assert [d.code for d in diags] == ["LNT002"]

    def test_call_constructors_flagged(self):
        source = "def f(seen=set()):\n    return seen\n"
        assert [d.code for d in lint_source(source, "a.py")] == ["LNT002"]

    def test_immutable_defaults_pass(self):
        source = "def f(n=3, name='x', pair=(1, 2)):\n    return n\n"
        assert lint_source(source, "src/repro/core/x.py") == []


class TestTransportInjection:
    def test_construction_outside_transport_modules_flagged(self):
        diags = lint_source(TRANSPORT_CONSTRUCTION, "examples/demo.py")
        assert [d.code for d in diags] == ["LNT003"]

    def test_transport_modules_are_exempt(self):
        assert lint_source(TRANSPORT_CONSTRUCTION, "src/repro/messaging/transport.py") == []

    def test_attribute_call_flagged_too(self):
        source = "import repro.network.udp as udp\nt = udp.RealUdpTransport()\n"
        assert [d.code for d in lint_source(source, "examples/demo.py")] == ["LNT003"]


class TestSelectorExtraction:
    def test_unsat_selector_literal_located(self):
        source = 'from repro.core.selectors import Selector\n\nsel = Selector("load > 80 and load < 20")\n'
        diags = lint_source(source, "examples/demo.py")
        assert any(d.code == "SEL001" and d.line == 3 for d in diags)

    def test_interest_keyword_extracted(self):
        source = 'profile = ClientProfile("c", interest="x == 1 and x == 2")\n'
        assert any(d.code == "SEL001" for d in lint_source(source, "a.py"))

    def test_message_create_second_arg_extracted(self):
        source = 'msg = SemanticMessage.create("me", "role == \'medic\' and role == \'clerk\'", {})\n'
        assert any(d.code == "SEL001" for d in lint_source(source, "a.py"))

    def test_non_constant_arguments_skipped(self):
        source = "sel = Selector(build_text())\nother = Selector(text)\n"
        assert lint_source(source, "a.py") == []

    def test_extraction_helper_yields_positions(self):
        import ast

        tree = ast.parse('x = Selector("true")\n')
        assert list(extract_selector_literals(tree)) == [("true", 1, 14)]

    def test_analyze_selectors_flag_disables_pass(self):
        source = 'sel = Selector("load > 80 and load < 20")\n'
        assert lint_source(source, "a.py", analyze_selectors=False) == []


class TestSuppression:
    def test_named_code_suppressed_on_line(self):
        source = 'sel = Selector("true")  # repro: ignore[SEL002]\n'
        assert lint_source(source, "a.py") == []

    def test_bare_ignore_suppresses_everything(self):
        source = "transport = SimTransport()  # repro: ignore\n"
        assert lint_source(source, "examples/demo.py") == []

    def test_other_codes_still_reported(self):
        source = 'sel = Selector("x == 1 and x == 2")  # repro: ignore[SEL002]\n'
        assert any(d.code == "SEL001" for d in lint_source(source, "a.py"))

    def test_programmatic_ignore(self):
        diags = lint_source(BARE_EXCEPT, "src/repro/messaging/b.py", ignore=["LNT001"])
        assert diags == []


class TestFileWalk:
    def test_syntax_error_reported_not_raised(self):
        diags = lint_source("def broken(:\n", "a.py")
        assert len(diags) == 1
        assert diags[0].code == "LNT001"
        assert "does not parse" in diags[0].message

    def test_lint_paths_walks_directories(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "bad.py").write_text('s = Selector("load > 80 and load < 20")\n')
        (pkg / "good.py").write_text("x = 1\n")
        (pkg / "__pycache__").mkdir()
        (pkg / "__pycache__" / "junk.py").write_text("def broken(:\n")
        diags = lint_paths([str(tmp_path)])
        assert any(d.code == "SEL001" for d in diags)
        assert not any("__pycache__" in (d.file or "") for d in diags)

    def test_lint_paths_accepts_single_file(self, tmp_path):
        f = tmp_path / "one.py"
        f.write_text("def f(x=[]):\n    return x\n")
        diags = lint_paths([str(f)])
        assert [d.code for d in diags] == ["LNT002"]
        assert diags[0].file == str(f)


def test_shipped_source_tree_is_lint_clean():
    root = os.path.normpath(os.path.join(os.path.dirname(__file__), "..", ".."))
    diags = lint_paths([os.path.join(root, "src", "repro")])
    assert [d for d in diags if d.severity is Severity.ERROR] == []
