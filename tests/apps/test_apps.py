"""Tests for the headless applications (chat, whiteboard, image viewer)."""

import numpy as np
import pytest

from repro.apps.chat import ChatArea
from repro.apps.imageviewer import ImageViewer
from repro.apps.whiteboard import Whiteboard
from repro.core.events import ChatEvent, TextShareEvent, WhiteboardEvent
from repro.media.images import collaboration_scene, to_rgb
from repro.media.metrics import psnr


class TestChatArea:
    def test_compose_does_not_render(self):
        chat = ChatArea("alice")
        chat.compose("draft")
        assert len(chat) == 0

    def test_on_chat_renders(self):
        chat = ChatArea("alice")
        chat.on_chat(ChatEvent(author="bob", text="hi"), time=1.0)
        assert chat.transcript == ["bob: hi"]

    def test_text_share_rendered_with_ref(self):
        chat = ChatArea("alice")
        chat.on_text_share(TextShareEvent(ref_id="img-1", text="a scene"), time=1.0)
        assert chat.transcript == ["[img-1]: a scene"]

    def test_lines_keep_time(self):
        chat = ChatArea("a")
        line = chat.on_chat(ChatEvent(author="b", text="x"), time=3.5)
        assert line.time == 3.5


class TestWhiteboard:
    def test_draw_then_objects(self):
        wb = Whiteboard("alice")
        wb.draw("s1", (0.0, 1.0), time=0.1)
        assert wb.objects() == {"s1": [0.0, 1.0]}

    def test_erase_removes(self):
        wb = Whiteboard("alice")
        wb.draw("s1", (0.0,), time=0.1)
        wb.erase("s1", time=0.2)
        assert wb.objects() == {}

    def test_remote_event_applied(self):
        wb = Whiteboard("alice")
        ev = WhiteboardEvent(object_id="s9", op="draw", points=(5.0,),
                             author="bob", version=1, timestamp=0.5)
        assert wb.on_event(ev, time=0.6)
        assert wb.objects() == {"s9": [5.0]}

    def test_replica_convergence_symmetric(self):
        """Two replicas exchanging concurrent events converge."""
        wa, wb = Whiteboard("alice"), Whiteboard("bob")
        ev_a = wa.draw("s", (1.0,), time=1.0)
        ev_b = wb.draw("s", (2.0,), time=1.0)
        wa.on_event(ev_b, time=1.1)
        wb.on_event(ev_a, time=1.1)
        assert wa.objects()["s"] == wb.objects()["s"] == [2.0]  # bob wins tie
        assert wa.conflicts == 1

    def test_stale_remote_loses(self):
        wb = Whiteboard("alice")
        wb.draw("s", (1.0,), time=5.0)
        wb.draw("s", (2.0,), time=6.0)  # version 2
        stale = WhiteboardEvent(object_id="s", op="draw", points=(9.0,),
                                author="bob", version=1, timestamp=9.0)
        assert not wb.on_event(stale, time=9.1)
        assert wb.objects()["s"] == [2.0]


class TestImageViewerSender:
    def test_share_produces_announce_and_packets(self):
        viewer = ImageViewer("alice", n_packets=16, target_bpp=2.2)
        announce, packets = viewer.share("img", collaboration_scene(64, 64))
        assert announce.n_packets == 16
        assert announce.channels == 1
        assert len(announce.t0_exps) == 1
        assert announce.description
        assert len(packets) == 16
        assert all(p.image_id == "img" for p in packets)

    def test_color_share(self):
        viewer = ImageViewer("alice", target_bpp=14.3)
        announce, _ = viewer.share("img", to_rgb(collaboration_scene(64, 64)))
        assert announce.channels == 3
        assert len(announce.t0_exps) == 3


class TestImageViewerReceiver:
    @pytest.fixture
    def shared(self):
        sender = ImageViewer("alice", n_packets=16, target_bpp=2.2)
        img = collaboration_scene(64, 64)
        announce, packets = sender.share("img", img)
        return img, announce, packets

    def test_full_budget_reception(self, shared):
        img, announce, packets = shared
        rx = ImageViewer("bob")
        rx.on_announce(announce)
        accepted = sum(rx.on_packet(p) for p in packets)
        assert accepted == 16
        assert psnr(img, rx.reconstruct("img")) > 35.0

    def test_budget_rejects_excess(self, shared):
        _, announce, packets = shared
        rx = ImageViewer("bob")
        rx.set_packet_budget(4)
        rx.on_announce(announce)
        accepted = sum(rx.on_packet(p) for p in packets)
        assert accepted == 4
        assert rx.report("img").packets_used == 4

    def test_budget_clamped_to_range(self):
        rx = ImageViewer("bob", n_packets=16)
        rx.set_packet_budget(99)
        assert rx.packet_budget == 16
        rx.set_packet_budget(-1)
        assert rx.packet_budget == 0

    def test_packets_before_announce_buffered(self, shared):
        img, announce, packets = shared
        rx = ImageViewer("bob")
        for p in packets[:5]:
            rx.on_packet(p)  # announce not yet seen
        rx.on_announce(announce)
        assert rx.viewed["img"].assembly.usable_prefix == 5

    def test_duplicate_announce_idempotent(self, shared):
        _, announce, packets = shared
        rx = ImageViewer("bob")
        v1 = rx.on_announce(announce)
        rx.on_packet(packets[0])
        v2 = rx.on_announce(announce)
        assert v1 is v2
        assert v2.assembly.usable_prefix == 1

    def test_offered_vs_accepted_counters(self, shared):
        _, announce, packets = shared
        rx = ImageViewer("bob")
        rx.set_packet_budget(2)
        rx.on_announce(announce)
        for p in packets:
            rx.on_packet(p)
        view = rx.viewed["img"]
        assert view.packets_offered == 16
        assert view.packets_accepted == 2
