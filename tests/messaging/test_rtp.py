"""Tests for the RTP-thin layer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.messaging.rtp import (
    DEFAULT_MTU,
    HEADER_SIZE,
    RtpError,
    RtpPacket,
    RtpPacketizer,
    RtpReassembler,
)


def pipe(mtu=200):
    """A packetizer feeding a reassembler; returns (pktzr, reasm, out)."""
    out = []
    packetizer = RtpPacketizer(ssrc=7, mtu=mtu)
    reassembler = RtpReassembler(
        lambda ssrc, payload: out.append((ssrc, payload)), clock=lambda: 0.0
    )
    return packetizer, reassembler, out


class TestPacketizer:
    def test_small_payload_single_fragment(self):
        p, _, _ = pipe()
        frags = p.packetize(b"short")
        assert len(frags) == 1
        assert frags[0].frag_count == 1

    def test_large_payload_fragments(self):
        p, _, _ = pipe(mtu=100)
        payload = bytes(1000)
        frags = p.packetize(payload)
        budget = 100 - HEADER_SIZE
        assert len(frags) == -(-1000 // budget)
        assert b"".join(f.payload for f in frags) == payload

    def test_empty_payload_one_fragment(self):
        p, _, _ = pipe()
        frags = p.packetize(b"")
        assert len(frags) == 1
        assert frags[0].payload == b""

    def test_seq_numbers_global_and_increasing(self):
        p, _, _ = pipe(mtu=100)
        seqs = [f.seq for f in p.packetize(bytes(500)) + p.packetize(bytes(500))]
        assert seqs == list(range(len(seqs)))

    def test_msg_seq_per_message(self):
        p, _, _ = pipe()
        a = p.packetize(b"1")[0]
        b = p.packetize(b"2")[0]
        assert b.msg_seq == a.msg_seq + 1

    def test_tiny_mtu_rejected(self):
        with pytest.raises(RtpError):
            RtpPacketizer(1, mtu=HEADER_SIZE)

    def test_header_roundtrip(self):
        pkt = RtpPacket(0xDEADBEEF, 42, 3, 9, 1000, b"chunk")
        rt = RtpPacket.decode(pkt.encode())
        assert rt == pkt

    def test_malformed_fragment_rejected(self):
        with pytest.raises(RtpError):
            RtpPacket.decode(b"short")
        bad = RtpPacket(1, 1, 5, 3, 1, b"")  # index >= count
        with pytest.raises(RtpError):
            RtpPacket.decode(bad.encode())


class TestReassembly:
    def test_in_order_delivery(self):
        p, r, out = pipe(mtu=100)
        payload = bytes(range(256)) * 4
        for f in p.packetize(payload):
            r.ingest(f.encode())
        assert out == [(7, payload)]

    def test_out_of_order_reassembly(self):
        p, r, out = pipe(mtu=100)
        payload = b"abcdefgh" * 100
        frags = p.packetize(payload)
        rng = np.random.default_rng(0)
        for i in rng.permutation(len(frags)):
            r.ingest(frags[i].encode())
        assert out == [(7, payload)]

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=1, max_size=2000), st.integers(0, 1000))
    def test_permutation_roundtrip_property(self, payload, seed):
        p, r, out = pipe(mtu=64)
        frags = p.packetize(payload)
        rng = np.random.default_rng(seed)
        for i in rng.permutation(len(frags)):
            r.ingest(frags[i].encode())
        assert out == [(7, payload)]

    def test_duplicate_fragments_ignored(self):
        p, r, out = pipe(mtu=100)
        frags = p.packetize(bytes(300))
        for f in frags:
            r.ingest(f.encode())
            r.ingest(f.encode())  # dup
        assert len(out) == 1

    def test_duplicate_after_completion_ignored(self):
        p, r, out = pipe()
        f = p.packetize(b"x")[0]
        r.ingest(f.encode())
        r.ingest(f.encode())
        assert len(out) == 1

    def test_interleaved_messages(self):
        p, r, out = pipe(mtu=100)
        f1 = p.packetize(b"1" * 300)
        f2 = p.packetize(b"2" * 300)
        for a, b in zip(f1, f2):
            r.ingest(a.encode())
            r.ingest(b.encode())
        assert [payload for _, payload in out] == [b"1" * 300, b"2" * 300]

    def test_two_sources_independent(self):
        out = []
        r = RtpReassembler(lambda ssrc, payload: out.append(ssrc), clock=lambda: 0.0)
        pa = RtpPacketizer(ssrc=1, mtu=100)
        pb = RtpPacketizer(ssrc=2, mtu=100)
        for f in pa.packetize(b"a" * 150) + pb.packetize(b"b" * 150):
            r.ingest(f.encode())
        assert sorted(out) == [1, 2]

    def test_inconsistent_frag_count_rejected(self):
        _, r, _ = pipe()
        r.ingest(RtpPacket(7, 0, 0, 3, 0, b"x").encode())
        with pytest.raises(RtpError):
            r.ingest(RtpPacket(7, 0, 1, 4, 1, b"y").encode())


class TestLossAccounting:
    def test_report_counts_loss(self):
        p, r, _ = pipe(mtu=100)
        frags = p.packetize(bytes(1000))
        for f in frags[::2]:  # drop every other fragment
            r.ingest(f.encode())
        rep = r.report(7)
        assert rep.cumulative_lost > 0
        assert 0.0 < rep.fraction_lost < 1.0

    def test_expire_abandons_old_messages(self):
        gaps = []
        p = RtpPacketizer(ssrc=7, mtu=100)
        r = RtpReassembler(
            lambda s, payload: None,
            on_gap=lambda s, mseq, missing: gaps.append((mseq, tuple(missing))),
            reorder_window=2,
            clock=lambda: 0.0,
        )
        incomplete = p.packetize(bytes(500))
        r.ingest(incomplete[0].encode())  # fragment 0 only of msg 0
        for _ in range(5):                # advance the msg_seq horizon
            for f in p.packetize(b"ok"):
                r.ingest(f.encode())
        assert r.expire() == 1
        assert gaps and gaps[0][0] == 0
        assert len(gaps[0][1]) == len(incomplete) - 1
        assert r.report(7).messages_abandoned == 1

    def test_pending_lists_missing(self):
        p, r, _ = pipe(mtu=100)
        frags = p.packetize(bytes(500))
        r.ingest(frags[1].encode())
        pending = r.pending(7)
        assert len(pending) == 1
        msg_seq, missing = pending[0]
        assert 0 in missing and 1 not in missing

    def test_clean_report(self):
        p, r, _ = pipe()
        for f in p.packetize(b"all good"):
            r.ingest(f.encode())
        rep = r.report(7)
        assert rep.cumulative_lost == 0
        assert rep.fraction_lost == 0.0
        assert rep.messages_completed == 1
