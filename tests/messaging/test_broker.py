"""Tests for the in-process semantic bus."""

import pytest

from repro.core.matching import Decision
from repro.core.profiles import ClientProfile, TransformRule
from repro.messaging.broker import SemanticBus
from repro.messaging.message import SemanticMessage


@pytest.fixture
def bus():
    return SemanticBus()


def attach(bus, name, sink, **profile_kwargs):
    profile = ClientProfile(name, profile_kwargs.pop("attrs", {}), **profile_kwargs)
    sub = bus.attach(profile, lambda d: sink.append((name, d)))
    return profile, sub


class TestDispatch:
    def test_selector_routes_by_profile(self, bus):
        got = []
        attach(bus, "medic", got, attrs={"role": "medic"})
        attach(bus, "clerk", got, attrs={"role": "clerk"})
        n = bus.publish(SemanticMessage.create("hq", "role == 'medic'", kind="alert"))
        assert n == 1
        assert [name for name, _ in got] == ["medic"]

    def test_broadcast_true_selector(self, bus):
        got = []
        for name in ("a", "b", "c"):
            attach(bus, name, got)
        assert bus.publish(SemanticMessage.create("x", "true")) == 3

    def test_sender_excluded(self, bus):
        got = []
        profile, _ = attach(bus, "self", got)
        bus.publish(SemanticMessage.create("self", "true"), exclude=profile)
        assert got == []

    def test_interest_filters_content(self, bus):
        got = []
        attach(bus, "textonly", got, interest="modality == 'text'")
        bus.publish(SemanticMessage.create("s", "true", headers={"modality": "image"}))
        assert got == []
        bus.publish(SemanticMessage.create("s", "true", headers={"modality": "text"}))
        assert len(got) == 1

    def test_transform_mediated_delivery(self, bus):
        got = []
        attach(
            bus,
            "jpeg-client",
            got,
            interest="encoding == 'jpeg'",
            transforms=[TransformRule("encoding", "mpeg2", "jpeg")],
        )
        bus.publish(SemanticMessage.create("s", "true", headers={"encoding": "mpeg2"}))
        assert len(got) == 1
        _, delivery = got[0]
        assert delivery.result.decision is Decision.ACCEPT_WITH_TRANSFORM
        assert delivery.result.effective_headers["encoding"] == "jpeg"

    def test_profile_change_takes_effect_immediately(self, bus):
        """The run-time binding the paper emphasizes: no re-registration."""
        got = []
        profile, _ = attach(bus, "c", got, attrs={"role": "observer"})
        bus.publish(SemanticMessage.create("s", "role == 'medic'"))
        assert got == []
        profile.update(role="medic")  # local profile edit only
        bus.publish(SemanticMessage.create("s", "role == 'medic'"))
        assert len(got) == 1


class TestSubscriptions:
    def test_detach_stops_delivery(self, bus):
        got = []
        _, sub = attach(bus, "c", got)
        sub.detach()
        bus.publish(SemanticMessage.create("s", "true"))
        assert got == []
        assert bus.subscribers == 0

    def test_detach_idempotent(self, bus):
        got = []
        _, sub = attach(bus, "c", got)
        sub.detach()
        sub.detach()

    def test_counters(self, bus):
        got = []
        _, sub = attach(bus, "c", got, interest="modality == 'text'",
                        transforms=[TransformRule("modality", "image", "text")])
        bus.publish(SemanticMessage.create("s", "true", headers={"modality": "text"}))
        bus.publish(SemanticMessage.create("s", "true", headers={"modality": "image"}))
        bus.publish(SemanticMessage.create("s", "true", headers={"modality": "audio"}))
        assert sub.accepted == 1
        assert sub.transformed == 1
        assert sub.rejected == 1
        assert bus.published == 3

    def test_kind_header_visible_to_interest(self, bus):
        got = []
        attach(bus, "c", got, interest="kind == 'chat'")
        bus.publish(SemanticMessage.create("s", "true", kind="chat"))
        bus.publish(SemanticMessage.create("s", "true", kind="image-share"))
        assert len(got) == 1
