"""Tests for the in-process semantic bus."""

import pytest

from repro.core.matching import Decision
from repro.core.profiles import ClientProfile, TransformRule
from repro.messaging.broker import PublishResult, SemanticBus
from repro.messaging.message import SemanticMessage


@pytest.fixture
def bus():
    return SemanticBus()


def attach(bus, name, sink, **profile_kwargs):
    profile = ClientProfile(name, profile_kwargs.pop("attrs", {}), **profile_kwargs)
    sub = bus.attach(profile, lambda d: sink.append((name, d)))
    return profile, sub


class TestDispatch:
    def test_selector_routes_by_profile(self, bus):
        got = []
        attach(bus, "medic", got, attrs={"role": "medic"})
        attach(bus, "clerk", got, attrs={"role": "clerk"})
        res = bus.publish(SemanticMessage.create("hq", "role == 'medic'", kind="alert"))
        assert res.delivered == 1
        assert res.rejected == 1
        assert [name for name, _ in got] == ["medic"]

    def test_broadcast_true_selector(self, bus):
        got = []
        for name in ("a", "b", "c"):
            attach(bus, name, got)
        assert bus.publish(SemanticMessage.create("x", "true")).delivered == 3

    def test_sender_excluded(self, bus):
        got = []
        profile, _ = attach(bus, "self", got)
        bus.publish(SemanticMessage.create("self", "true"), exclude=profile)
        assert got == []

    def test_interest_filters_content(self, bus):
        got = []
        attach(bus, "textonly", got, interest="modality == 'text'")
        bus.publish(SemanticMessage.create("s", "true", headers={"modality": "image"}))
        assert got == []
        bus.publish(SemanticMessage.create("s", "true", headers={"modality": "text"}))
        assert len(got) == 1

    def test_transform_mediated_delivery(self, bus):
        got = []
        attach(
            bus,
            "jpeg-client",
            got,
            interest="encoding == 'jpeg'",
            transforms=[TransformRule("encoding", "mpeg2", "jpeg")],
        )
        bus.publish(SemanticMessage.create("s", "true", headers={"encoding": "mpeg2"}))
        assert len(got) == 1
        _, delivery = got[0]
        assert delivery.result.decision is Decision.ACCEPT_WITH_TRANSFORM
        assert delivery.result.effective_headers["encoding"] == "jpeg"

    def test_profile_change_takes_effect_immediately(self, bus):
        """The run-time binding the paper emphasizes: no re-registration."""
        got = []
        profile, _ = attach(bus, "c", got, attrs={"role": "observer"})
        bus.publish(SemanticMessage.create("s", "role == 'medic'"))
        assert got == []
        profile.update(role="medic")  # local profile edit only
        bus.publish(SemanticMessage.create("s", "role == 'medic'"))
        assert len(got) == 1


class TestSubscriptions:
    def test_detach_stops_delivery(self, bus):
        got = []
        _, sub = attach(bus, "c", got)
        sub.detach()
        bus.publish(SemanticMessage.create("s", "true"))
        assert got == []
        assert bus.subscribers == 0

    def test_detach_idempotent(self, bus):
        got = []
        _, sub = attach(bus, "c", got)
        sub.detach()
        sub.detach()
        assert sub.active is False
        assert bus.subscribers == 0

    def test_detach_idempotent_via_bus_internal(self, bus):
        """Even calling the bus-side removal twice must not raise."""
        got = []
        _, sub = attach(bus, "c", got)
        bus._detach(sub)
        bus._detach(sub)  # regression: used to raise ValueError
        assert bus.subscribers == 0
        sub.detach()  # still a no-op after the bus already removed it

    def test_stale_handle_cannot_reattach(self, bus):
        """Flipping .active on a detached handle must not restore routing."""
        got = []
        _, sub = attach(bus, "c", got)
        sub.detach()
        sub.active = True  # the stale-handle abuse TSP007 flags statically
        bus.publish(SemanticMessage.create("s", "true"))
        assert got == []
        assert bus.subscribers == 0

    def test_detach_prunes_index_shortlist(self, bus):
        """The matching engine must drop the subscription from its index."""
        got = []
        _, sub = attach(bus, "medic", got, attrs={"role": "medic"})
        msg = SemanticMessage.create("s", "role == 'medic'")
        before = bus.engine.shortlist(msg.selector)
        assert before.via_index and sub in before.keys
        sub.detach()
        after = bus.engine.shortlist(msg.selector)
        assert after.keys is not None and sub not in after.keys
        assert bus.publish(msg).delivered == 0

    def test_detach_during_other_subscriptions(self, bus):
        got = []
        _, sub1 = attach(bus, "a", got)
        attach(bus, "b", got)
        sub1.detach()
        sub1.detach()
        assert bus.publish(SemanticMessage.create("s", "true")).delivered == 1

    def test_counters(self, bus):
        got = []
        _, sub = attach(bus, "c", got, interest="modality == 'text'",
                        transforms=[TransformRule("modality", "image", "text")])
        bus.publish(SemanticMessage.create("s", "true", headers={"modality": "text"}))
        bus.publish(SemanticMessage.create("s", "true", headers={"modality": "image"}))
        bus.publish(SemanticMessage.create("s", "true", headers={"modality": "audio"}))
        assert sub.accepted == 1
        assert sub.transformed == 1
        assert sub.rejected == 1
        assert bus.published == 3

    def test_kind_header_visible_to_interest(self, bus):
        got = []
        attach(bus, "c", got, interest="kind == 'chat'")
        bus.publish(SemanticMessage.create("s", "true", kind="chat"))
        bus.publish(SemanticMessage.create("s", "true", kind="image-share"))
        assert len(got) == 1


class TestPublishResult:
    def test_backward_compatible_with_int(self, bus):
        got = []
        attach(bus, "medic", got, attrs={"role": "medic"})
        attach(bus, "clerk", got, attrs={"role": "clerk"})
        res = bus.publish(SemanticMessage.create("hq", "role == 'medic'"))
        # historical callers compared the return value to a bare int
        assert res == 1
        assert int(res) == 1
        assert bool(res) is True
        assert res != 2
        assert hash(res) == hash(1)
        assert list(range(3))[res] == 1  # __index__

    def test_field_breakdown(self, bus):
        got = []
        attach(bus, "jpeg", got,
               interest="encoding == 'jpeg'",
               transforms=[TransformRule("encoding", "mpeg2", "jpeg")])
        attach(bus, "deaf", got, interest="encoding == 'pcm'")
        res = bus.publish(
            SemanticMessage.create("s", "true", headers={"encoding": "mpeg2"})
        )
        assert res.delivered == 1
        assert res.transformed == 1
        assert res.rejected == 1
        assert res.candidates_checked == 2  # broadcast: nothing indexable

    def test_zero_deliveries_is_falsy(self, bus):
        res = bus.publish(SemanticMessage.create("s", "true"))
        assert not res
        assert res == 0

    def test_equality_between_results(self, bus):
        a = PublishResult(1, 0, 2, 3, True)
        b = PublishResult(1, 0, 2, 3, True)
        c = PublishResult(1, 0, 2, 3, False)
        assert a == b
        assert a != c
        assert a == 1  # still int-comparable

    def test_index_serves_selective_publish(self, bus):
        got = []
        attach(bus, "medic", got, attrs={"role": "medic"})
        for i in range(5):
            attach(bus, f"clerk{i}", got, attrs={"role": "clerk"})
        res = bus.publish(SemanticMessage.create("hq", "role == 'medic'"))
        assert res.matched_via_index is True
        assert res.candidates_checked == 1  # only the medic ran interpret()
        assert res.delivered == 1
        assert res.rejected == 5  # counter parity with the linear path

    def test_linear_bus_same_decisions(self):
        linear = SemanticBus(indexed=False)
        got = []
        attach(linear, "medic", got, attrs={"role": "medic"})
        attach(linear, "clerk", got, attrs={"role": "clerk"})
        res = linear.publish(SemanticMessage.create("hq", "role == 'medic'"))
        assert res.matched_via_index is False
        assert res.candidates_checked == 2
        assert res.delivered == 1
        assert res.rejected == 1


class TestAttachOrdinals:
    """Regression: ``Subscription`` used a *class-level* seq counter, so
    attaches on independent buses (or racing threads) interleaved their
    ordinals.  The counter now lives on each bus, under a lock."""

    def test_independent_buses_get_independent_seqs(self):
        a, b = SemanticBus(), SemanticBus()
        _, sub_a1 = attach(a, "a1", [])
        _, sub_b1 = attach(b, "b1", [])
        _, sub_a2 = attach(a, "a2", [])
        assert (sub_a1._seq, sub_a2._seq) == (1, 2)
        assert sub_b1._seq == 1  # bus b starts its own count

    def test_threaded_attach_ordinals_unique(self, bus):
        import threading

        subs = []
        lock = threading.Lock()

        def worker():
            for i in range(50):
                sub = bus.attach(ClientProfile(f"p{i}", {}), lambda d: None)
                with lock:
                    subs.append(sub)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        seqs = [s._seq for s in subs]
        assert len(set(seqs)) == len(seqs) == 400
        assert sorted(seqs) == list(range(1, 401))

    def test_delivery_order_follows_attach_order(self, bus):
        got = []
        for name in ("first", "second", "third"):
            attach(bus, name, got, attrs={"role": "medic"})
        bus.publish(SemanticMessage.create("hq", "role == 'medic'"))
        assert [name for name, _ in got] == ["first", "second", "third"]

    def test_detach_does_not_disturb_ordering(self, bus):
        got = []
        attach(bus, "first", got)
        _, sub = attach(bus, "second", got)
        attach(bus, "third", got)
        sub.detach()
        bus.publish(SemanticMessage.create("hq", "true"))
        assert [name for name, _ in got] == ["first", "third"]
