"""Tests for the networked semantic endpoint."""

import pytest

from repro.core.matching import Decision
from repro.core.profiles import ClientProfile, TransformRule
from repro.messaging.message import SemanticMessage
from repro.messaging.transport import SemanticEndpoint
from repro.network.clock import Scheduler
from repro.network.multicast import MulticastGroup
from repro.network.simnet import Network


@pytest.fixture
def fabric():
    sched = Scheduler()
    net = Network(sched, seed=2)
    net.add_node("sw")
    for h in ("a", "b", "c"):
        net.add_node(h)
        net.add_link(h, "sw", latency=0.001, bandwidth=1e7)
    group = MulticastGroup(net, "239.1.1.1", 5004)
    return sched, net, group


def endpoint(net, group, host, sink, **profile_kwargs):
    profile = ClientProfile(host, profile_kwargs.pop("attrs", {}), **profile_kwargs)
    return SemanticEndpoint(
        net, host, group, profile, lambda d, h=host: sink.append((h, d))
    )


class TestPublish:
    def test_multicast_reaches_matching_profiles(self, fabric):
        sched, net, group = fabric
        got = []
        endpoint(net, group, "a", got, attrs={"role": "medic"})
        endpoint(net, group, "b", got, attrs={"role": "medic"})
        endpoint(net, group, "c", got, attrs={"role": "clerk"})
        sender = endpoint(net, group, "sw", [], attrs={"role": "hq"})
        sender.publish(SemanticMessage.create("sw", "role == 'medic'", kind="alert"))
        sched.run_for(1.0)
        assert sorted(h for h, _ in got) == ["a", "b"]

    def test_no_sender_loopback(self, fabric):
        sched, net, group = fabric
        got = []
        sender = endpoint(net, group, "a", got)
        sender.publish(SemanticMessage.create("a", "true"))
        sched.run_for(1.0)
        assert got == []

    def test_large_message_fragments_and_reassembles(self, fabric):
        sched, net, group = fabric
        got = []
        endpoint(net, group, "b", got)
        sender = endpoint(net, group, "a", [])
        body = bytes(range(256)) * 40  # ~10 KB -> multiple fragments
        n_frags = sender.publish(SemanticMessage.create("a", "true", body=body))
        assert n_frags > 1
        sched.run_for(1.0)
        assert len(got) == 1
        assert got[0][1].message.body == body

    def test_transform_mediated_accept_over_network(self, fabric):
        sched, net, group = fabric
        got = []
        endpoint(
            net,
            group,
            "b",
            got,
            interest="modality == 'text'",
            transforms=[TransformRule("modality", "image", "text")],
        )
        sender = endpoint(net, group, "a", [])
        sender.publish(
            SemanticMessage.create("a", "true", headers={"modality": "image"})
        )
        sched.run_for(1.0)
        assert got[0][1].result.decision is Decision.ACCEPT_WITH_TRANSFORM

    def test_unicast_between_endpoints(self, fabric):
        sched, net, group = fabric
        got = []
        rx = endpoint(net, group, "b", got)
        tx = endpoint(net, group, "a", [])
        tx.unicast(SemanticMessage.create("a", "true", kind="direct"), rx.address)
        sched.run_for(1.0)
        assert got[0][1].message.kind == "direct"

    def test_closed_endpoint_rejects_send(self, fabric):
        sched, net, group = fabric
        ep = endpoint(net, group, "a", [])
        ep.close()
        with pytest.raises(RuntimeError):
            ep.publish(SemanticMessage.create("a", "true"))

    def test_closed_endpoint_leaves_group(self, fabric):
        sched, net, group = fabric
        got = []
        rx = endpoint(net, group, "b", got)
        tx = endpoint(net, group, "a", [])
        rx.close()
        tx.publish(SemanticMessage.create("a", "true"))
        sched.run_for(1.0)
        assert got == []

    def test_counters(self, fabric):
        sched, net, group = fabric
        got = []
        rx = endpoint(net, group, "b", got, interest="kind == 'chat'")
        tx = endpoint(net, group, "a", [])
        tx.publish(SemanticMessage.create("a", "true", kind="chat"))
        tx.publish(SemanticMessage.create("a", "true", kind="noise"))
        sched.run_for(1.0)
        assert tx.sent_messages == 2
        assert rx.received_messages == 2
        assert rx.accepted_messages == 1


class TestLossyNetwork:
    def test_rtp_survives_reordering_jitter(self):
        sched = Scheduler()
        net = Network(sched, seed=9)
        net.add_node("sw")
        for h in ("a", "b"):
            net.add_node(h)
            net.add_link(h, "sw", latency=0.001, jitter=0.002, bandwidth=1e7)
        group = MulticastGroup(net, "239.1.1.1", 5004)
        got = []
        endpoint(net, group, "b", got)
        tx = endpoint(net, group, "a", [])
        bodies = [bytes([i]) * 3000 for i in range(5)]
        for body in bodies:
            tx.publish(SemanticMessage.create("a", "true", body=body))
        sched.run_for(2.0)
        assert sorted(d.message.body for _, d in got) == sorted(bodies)


class TestEndpointBrokerSurface:
    """The networked endpoint satisfies the same BrokerAPI as the buses."""

    def test_attach_colocated_subscriber(self, fabric):
        sched, net, group = fabric
        primary_got, extra_got = [], []
        rx = endpoint(net, group, "b", primary_got, attrs={"role": "clerk"})
        sub = rx.attach(
            ClientProfile("b-app", {"role": "medic"}),
            lambda d: extra_got.append(d),
        )
        assert rx.subscribers == 2
        tx = endpoint(net, group, "a", [])
        tx.publish(SemanticMessage.create("a", "role == 'medic'"))
        tx.publish(SemanticMessage.create("a", "role == 'clerk'"))
        sched.run_for(1.0)
        # each local profile decides independently, like on the bus
        assert len(primary_got) == 1 and len(extra_got) == 1
        # legacy telemetry counts the endpoint's own profile only
        assert rx.accepted_messages == 1
        assert rx.received_messages == 2
        assert sub.accepted == 1 and sub.rejected == 1

    def test_detach_colocated_subscriber(self, fabric):
        sched, net, group = fabric
        extra_got = []
        rx = endpoint(net, group, "b", [])
        sub = rx.attach(ClientProfile("b-app", {}), lambda d: extra_got.append(d))
        rx.detach(sub)
        rx.detach(sub)  # idempotent
        assert rx.subscribers == 1
        tx = endpoint(net, group, "a", [])
        tx.publish(SemanticMessage.create("a", "true"))
        sched.run_for(1.0)
        assert extra_got == []

    def test_publish_accepts_and_ignores_exclude(self, fabric):
        sched, net, group = fabric
        got = []
        endpoint(net, group, "b", got)
        tx = endpoint(net, group, "a", [])
        tx.publish(SemanticMessage.create("a", "true"), exclude=tx.profile)
        sched.run_for(1.0)
        assert len(got) == 1  # loopback never happens anyway

    def test_publish_many_returns_fragment_counts(self, fabric):
        sched, net, group = fabric
        got = []
        endpoint(net, group, "b", got)
        tx = endpoint(net, group, "a", [])
        sent = tx.publish_many(
            [
                SemanticMessage.create("a", "true", body=b"x"),
                SemanticMessage.create("a", "true", body=bytes(3000)),
            ]
        )
        assert len(sent) == 2
        assert sent[0] == 1 and sent[1] > 1
        sched.run_for(1.0)
        assert len(got) == 2

    def test_publish_many_suppresses_per_message_errors(self, fabric):
        sched, net, group = fabric
        from repro.messaging.serialization import WireError

        tx = endpoint(net, group, "a", [])
        good = SemanticMessage.create("a", "true")
        bad = SemanticMessage.create("a", "true", headers={"bad": {"un": 1}})
        with pytest.raises(WireError):
            tx.publish_many([good, bad, good])
        sent = tx.publish_many([good, bad, good], suppress_errors=True)
        assert sent[0] is not None and sent[2] is not None
        assert sent[1] is None

    def test_stats_surface(self, fabric):
        sched, net, group = fabric
        got = []
        rx = endpoint(net, group, "b", got)
        tx = endpoint(net, group, "a", [])
        tx.publish(SemanticMessage.create("a", "true"))
        sched.run_for(1.0)
        stats = rx.stats()
        assert stats["backend"] == "semantic-endpoint"
        assert stats["received_messages"] == 1
        assert stats["subscribers"] == 1
        assert tx.stats()["sent_messages"] == 1
