"""Tests for promiscuous endpoints (interpret-on-behalf-of, rejection taps)."""

import pytest

from repro.core.profiles import ClientProfile
from repro.messaging.message import SemanticMessage
from repro.messaging.transport import SemanticEndpoint
from repro.network.clock import Scheduler
from repro.network.multicast import MulticastGroup
from repro.network.simnet import Network


@pytest.fixture
def fabric():
    sched = Scheduler()
    net = Network(sched, seed=0)
    net.add_node("sw")
    for h in ("a", "b"):
        net.add_node(h)
        net.add_link(h, "sw", latency=0.001)
    return sched, net, MulticastGroup(net, "239.2.2.2", 5004)


class TestPromiscuous:
    def test_rejected_messages_surfaced(self, fabric):
        sched, net, group = fabric
        accepted, rejected = [], []
        profile = ClientProfile("b", {"role": "observer"})
        SemanticEndpoint(
            net,
            "b",
            group,
            profile,
            on_delivery=lambda d: accepted.append(d.message.kind),
            on_rejected=lambda m: rejected.append(m.kind),
            promiscuous=True,
        )
        sender = SemanticEndpoint(
            net, "a", group, ClientProfile("a"), on_delivery=lambda d: None
        )
        sender.publish(SemanticMessage.create("a", "role == 'observer'", kind="for-b"))
        sender.publish(SemanticMessage.create("a", "role == 'medic'", kind="not-for-b"))
        sched.run_for(1.0)
        assert accepted == ["for-b"]
        assert rejected == ["not-for-b"]

    def test_non_promiscuous_drops_silently(self, fabric):
        sched, net, group = fabric
        rejected = []
        SemanticEndpoint(
            net,
            "b",
            group,
            ClientProfile("b", {"role": "observer"}),
            on_delivery=lambda d: None,
            on_rejected=lambda m: rejected.append(m.kind),
            promiscuous=False,
        )
        sender = SemanticEndpoint(
            net, "a", group, ClientProfile("a"), on_delivery=lambda d: None
        )
        sender.publish(SemanticMessage.create("a", "role == 'medic'", kind="x"))
        sched.run_for(1.0)
        assert rejected == []

    def test_promiscuous_counts_still_accurate(self, fabric):
        sched, net, group = fabric
        ep = SemanticEndpoint(
            net,
            "b",
            group,
            ClientProfile("b", {"role": "observer"}),
            on_delivery=lambda d: None,
            on_rejected=lambda m: None,
            promiscuous=True,
        )
        sender = SemanticEndpoint(
            net, "a", group, ClientProfile("a"), on_delivery=lambda d: None
        )
        sender.publish(SemanticMessage.create("a", "role == 'medic'", kind="x"))
        sched.run_for(1.0)
        assert ep.received_messages == 1
        assert ep.accepted_messages == 0
