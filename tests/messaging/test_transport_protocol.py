"""Tests for the explicit Transport protocol surface and its implementations."""

import pytest

from repro.core.profiles import ClientProfile
from repro.messaging.message import SemanticMessage
from repro.messaging.transport import (
    DatagramTransport,
    LoopbackUDP,
    SemanticEndpoint,
    SimTransport,
    Transport,
)
from repro.network.clock import Scheduler
from repro.network.multicast import MulticastGroup
from repro.network.simnet import Network
from repro.network.udp import DatagramSocket


@pytest.fixture
def sim():
    sched = Scheduler()
    net = Network(sched, seed=7)
    for host in ("a", "b"):
        net.add_node(host)
    net.add_link("a", "b", latency=0.001, bandwidth=1e7)
    group = MulticastGroup(net, "239.0.0.1", 5004)
    return net, group


class TestProtocolConformance:
    def test_sim_transport_satisfies_transport(self, sim):
        net, group = sim
        t = SimTransport(net, "a", group)
        assert isinstance(t, Transport)
        t.close()
        t.close()  # idempotent

    def test_loopback_udp_satisfies_transport(self):
        t = LoopbackUDP()
        assert isinstance(t, Transport)
        t.close()
        t.close()

    def test_datagram_socket_satisfies_datagram_transport(self, sim):
        net, _ = sim
        sock = DatagramSocket(net, "a")
        assert isinstance(sock, DatagramTransport)
        sock.close()

    def test_transports_are_distinct_protocols(self):
        t = LoopbackUDP()
        assert not isinstance(t, DatagramTransport)  # no bind/sendto surface
        t.close()


class TestLoopbackUDP:
    def test_peer_fanout_roundtrip(self):
        a = LoopbackUDP()
        b = LoopbackUDP()
        a.add_peer(b.local_address)
        a.add_peer(b.local_address)  # duplicate ignored
        a.add_peer(a.local_address)  # self: excluded from fan-out
        got = []
        b.on_receive = lambda data, src: got.append(data)
        assert a.send(b"hello") == 1
        assert b.poll() == 1
        assert got == [b"hello"]
        assert a.sent_datagrams == 1
        assert b.received_datagrams == 1
        a.close()
        b.close()

    def test_unicast(self):
        a = LoopbackUDP()
        b = LoopbackUDP()
        got = []
        b.on_receive = lambda data, src: got.append((data, src))
        assert a.unicast(b"direct", b.local_address) is True
        b.poll()
        assert got[0][0] == b"direct"
        a.close()
        b.close()

    def test_send_after_close_raises(self):
        t = LoopbackUDP()
        t.close()
        with pytest.raises(RuntimeError):
            t.send(b"x")

    def test_poll_on_empty_socket(self):
        t = LoopbackUDP()
        assert t.poll() == 0
        t.close()


class TestEndpointOverTransport:
    def test_semantic_messages_over_real_udp(self):
        """The full stack — serialize, RTP-fragment, real OS sockets,
        reassemble, interpret — over loopback UDP with no simulator."""
        ta = LoopbackUDP()
        tb = LoopbackUDP()
        ta.add_peer(tb.local_address)
        tb.add_peer(ta.local_address)

        got = []
        pa = ClientProfile("a", {"role": "sender"})
        pb = ClientProfile("b", {"role": "medic"})
        ea = SemanticEndpoint.over_transport(ta, pa, lambda d: None)
        eb = SemanticEndpoint.over_transport(tb, pb, lambda d: got.append(d))

        msg = SemanticMessage.create(
            "a", "role == 'medic'", body=b"x" * 3000, kind="alert"
        )
        frags = ea.publish(msg)
        assert frags > 1  # body forces fragmentation
        while tb.poll():
            pass
        assert len(got) == 1
        assert got[0].message.body == msg.body
        assert eb.accepted_messages == 1

        # selector miss: interpreted and rejected at the receiver
        ea.publish(SemanticMessage.create("a", "role == 'clerk'"))
        while tb.poll():
            pass
        assert len(got) == 1
        assert eb.received_messages == 2

        ea.close()
        eb.close()

    def test_over_transport_without_scheduler_manual_expire(self):
        t = LoopbackUDP()
        e = SemanticEndpoint.over_transport(t, ClientProfile("x"), lambda d: None)
        assert e.scheduler is None
        assert e.expire() == 0  # nothing pending; callable without a clock
        e.close()

    def test_sim_endpoint_still_uses_sim_transport(self, sim):
        net, group = sim
        e = SemanticEndpoint(
            net, "a", group, ClientProfile("a"), lambda d: None
        )
        assert isinstance(e.transport, SimTransport)
        assert e.transport.scheduler is net.scheduler
        e.close()
