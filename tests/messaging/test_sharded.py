"""Tests for the sharded batch broker and the unified BrokerAPI."""

import threading

import pytest

from repro.core.matching import Decision
from repro.core.profiles import ClientProfile, TransformRule
from repro.core.selectors import Selector, required_attributes
from repro.messaging.broker import BatchPublishResult, SemanticBus
from repro.messaging.message import SemanticMessage
from repro.messaging.sharded import (
    ShardedSemanticBus,
    ShardSubscription,
    SlowSubscriberPolicy,
    _signature_shard,
)
from repro.messaging.transport import BrokerAPI, make_broker


def attach(bus, name, sink, **profile_kwargs):
    profile = ClientProfile(name, profile_kwargs.pop("attrs", {}), **profile_kwargs)
    sub = bus.attach(profile, lambda d: sink.append((name, d)))
    return profile, sub


def msg(selector, **headers):
    return SemanticMessage.create("s", selector, headers=headers or None)


class TestRequiredAttributes:
    """The shard-skip predicate: a sound lower bound on matching profiles."""

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("true", frozenset()),
            ("false", frozenset()),
            ("role == 'medic'", {"role"}),
            ("role != 'medic'", {"role"}),
            ("role == 'medic' and tier > 1", {"role", "tier"}),
            # OR: only attributes every branch needs are required
            ("role == 'medic' or role == 'clerk'", {"role"}),
            ("role == 'medic' or tier > 1", frozenset()),
            # NOT can match profiles *lacking* the attribute: nothing required
            ("not role == 'medic'", frozenset()),
            ("urgent", {"urgent"}),
            ("exists(caps)", {"caps"}),
            ("caps contains 'jpeg'", {"caps"}),
            ("role in ['medic', 'clerk'] and exists(tier)", {"role", "tier"}),
            ("role == 'medic' and (tier == 1 or tier == 2)", {"role", "tier"}),
        ],
    )
    def test_required_set(self, text, expected):
        assert required_attributes(Selector(text)) == frozenset(expected)
        # memoised method agrees with the free function
        assert Selector(text).required_attributes() == frozenset(expected)

    def test_soundness_missing_required_attr_never_matches(self):
        """A profile without a required attribute must always reject."""
        from repro.core.matching import interpret

        empty = ClientProfile("e", {})
        for text in (
            "role == 'medic'",
            "role == 'medic' or role == 'clerk'",
            "urgent",
            "exists(caps)",
            "role != 'medic'",
        ):
            sel = Selector(text)
            assert required_attributes(sel), text
            assert interpret(sel, {}, empty).decision is Decision.REJECT, text


class TestRouting:
    def test_signature_routing_is_stable(self):
        sig = frozenset({"role", "team"})
        assert _signature_shard(sig, 8) == _signature_shard(sig, 8)
        assert 0 <= _signature_shard(sig, 8) < 8

    def test_empty_signature_lands_in_catch_all(self):
        assert _signature_shard(frozenset(), 8) == 0
        bus = ShardedSemanticBus(shards=8)
        _, sub = attach(bus, "bare", [])
        assert sub.shard == 0

    def test_same_signature_same_shard_regardless_of_values(self):
        bus = ShardedSemanticBus(shards=8)
        _, a = attach(bus, "a", [], attrs={"role": "medic", "team": "x"})
        _, b = attach(bus, "b", [], attrs={"role": "clerk", "team": "y"})
        assert a.shard == b.shard
        assert bus.route(a.profile) == a.shard

    def test_shard_sizes_account_for_everyone(self):
        bus = ShardedSemanticBus(shards=4)
        for i in range(10):
            attach(bus, f"c{i}", [], attrs={f"k{i % 3}": i})
        assert sum(bus.shard_sizes()) == bus.subscribers == 10

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ShardedSemanticBus(shards=0)
        with pytest.raises(ValueError):
            ShardedSemanticBus(queue_capacity=0)


class TestEquivalence:
    """Decision- and order-identity with the linear bus (default policy)."""

    def _population(self, bus, sink):
        specs = [
            ("medic1", {"role": "medic"}),
            ("medic2", {"role": "medic", "tier": 1}),
            ("clerk", {"role": "clerk"}),
            ("bare", {}),
            ("zoner", {"zone": "north", "tier": 2}),
        ]
        return [attach(bus, n, sink, attrs=a) for n, a in specs]

    def _batch(self):
        return [
            msg("role == 'medic'"),
            msg("true"),
            msg("role == 'clerk' or zone == 'north'"),
            msg("tier >= 1"),
            msg("false"),
        ]

    def test_batch_identical_to_linear_bus(self):
        for shards in (1, 2, 5, 8):
            linear, sharded = SemanticBus(indexed=False), ShardedSemanticBus(shards=shards)
            got_l, got_s = [], []
            subs_l = self._population(linear, got_l)
            subs_s = self._population(sharded, got_s)
            batch = self._batch()
            res_l = [linear.publish(m) for m in batch]
            res_s = sharded.publish_many(batch)
            # same deliveries, in the same global order
            assert [(n, d.message.msg_id, d.result.decision) for n, d in got_l] == [
                (n, d.message.msg_id, d.result.decision) for n, d in got_s
            ]
            for rl, rs in zip(res_l, res_s):
                assert (rl.delivered, rl.transformed, rl.rejected) == (
                    rs.delivered,
                    rs.transformed,
                    rs.rejected,
                )
            for (_, sl), (_, ss) in zip(subs_l, subs_s):
                assert (sl.accepted, sl.transformed, sl.rejected) == (
                    ss.accepted,
                    ss.transformed,
                    ss.rejected,
                )

    def test_publish_is_a_batch_of_one(self):
        bus = ShardedSemanticBus(shards=4)
        got = []
        attach(bus, "medic", got, attrs={"role": "medic"})
        res = bus.publish(msg("role == 'medic'"))
        assert res.delivered == 1 and len(got) == 1
        assert bus.published == 1

    def test_sender_exclusion(self):
        bus = ShardedSemanticBus(shards=4)
        got = []
        profile, sub = attach(bus, "self", got, attrs={"role": "medic"})
        attach(bus, "peer", got, attrs={"role": "medic"})
        res = bus.publish_many([msg("role == 'medic'")] * 3, exclude=profile)
        assert [n for n, _ in got] == ["peer"] * 3
        assert res.delivered == 3
        assert sub.rejected == 0  # excluded offers are not counted as rejects

    def test_transform_mediated_delivery(self):
        bus = ShardedSemanticBus(shards=4)
        got = []
        attach(
            bus,
            "jpeg",
            got,
            attrs={"kind": "viewer"},
            interest="encoding == 'jpeg'",
            transforms=[TransformRule("encoding", "mpeg2", "jpeg")],
        )
        res = bus.publish_many([msg("true", encoding="mpeg2")])
        assert res.transformed == 1 and res.delivered == 1
        assert got[0][1].result.decision is Decision.ACCEPT_WITH_TRANSFORM

    def test_empty_batch(self):
        bus = ShardedSemanticBus()
        out = bus.publish_many([])
        assert isinstance(out, BatchPublishResult)
        assert out.messages == 0 and not out

    def test_detach_semantics_match_plain_bus(self):
        bus = ShardedSemanticBus(shards=4)
        got = []
        _, sub = attach(bus, "c", got, attrs={"role": "medic"})
        sub.detach()
        sub.detach()
        bus._detach(sub)  # bus-side removal stays idempotent too
        assert bus.subscribers == 0
        assert bus.publish(msg("true")).delivered == 0
        assert got == []
        frozen = sub.rejected
        bus.publish(msg("true"))
        assert sub.rejected == frozen  # no offers after detach


class TestShardSkip:
    def test_missing_required_attr_skips_shard(self):
        bus = ShardedSemanticBus(shards=8)
        got = []
        for i in range(6):
            attach(bus, f"z{i}", got, attrs={"zone": "north"})
        # disjunction => per-shard index cannot plan it; without the
        # required-attribute test this would linearly scan every member
        res = bus.publish_many([msg("role == 'medic' or role == 'clerk'")])
        assert res.delivered == 0
        assert res.candidates_checked == 0
        assert bus.shard_skips == 1
        assert got == []

    def test_relevant_shard_still_scanned(self):
        bus = ShardedSemanticBus(shards=8)
        got = []
        attach(bus, "medic", got, attrs={"role": "medic"})
        attach(bus, "zoner", got, attrs={"zone": "north"})
        res = bus.publish_many([msg("role == 'medic' or role == 'clerk'")])
        assert res.delivered == 1
        assert [n for n, _ in got] == ["medic"]
        assert bus.shard_skips == 1  # only the zone-signature shard skipped

    def test_skips_weighted_by_messages(self):
        bus = ShardedSemanticBus(shards=8)
        attach(bus, "zoner", [], attrs={"zone": "north"})
        bus.publish_many([msg("role == 'medic' or role == 'clerk'")] * 4)
        assert bus.shard_skips == 4

    def test_or_of_different_attrs_requires_nothing(self):
        """Branch-divergent disjunctions cannot skip: either attr may match."""
        bus = ShardedSemanticBus(shards=8)
        got = []
        attach(bus, "urgent-only", got, attrs={"urgent": True})
        bus.publish_many([msg("urgent or role == 'x'")])
        assert bus.shard_skips == 0
        assert [n for n, _ in got] == ["urgent-only"]


class TestBackpressure:
    def _flood(self, policy, capacity, n_msgs):
        bus = ShardedSemanticBus(
            shards=2, queue_capacity=capacity, slow_policy=policy
        )
        got = []
        profile, sub = attach(bus, "c", got, attrs={"role": "medic"})
        out = bus.publish_many([msg("role == 'medic'", seq=i) for i in range(n_msgs)])
        return bus, sub, got, out

    def test_block_delivers_everything_in_order(self):
        bus, sub, got, out = self._flood(SlowSubscriberPolicy.BLOCK, 2, 10)
        assert len(got) == 10
        assert [d.message.headers["seq"] for _, d in got] == list(range(10))
        assert out.shed == 0 and out.detached_slow == 0
        assert sub.max_queue_depth <= 3  # capacity + the overflowing entry
        assert sub.queue_depth == 0  # drained by the end of the batch

    def test_drop_oldest_sheds_head_keeps_tail(self):
        bus, sub, got, out = self._flood(SlowSubscriberPolicy.DROP_OLDEST, 3, 10)
        # the newest `capacity` deliveries survive
        assert [d.message.headers["seq"] for _, d in got] == [7, 8, 9]
        assert out.shed == 7 and sub.shed == 7
        assert bus.shed_total == 7
        # semantic accounting is unchanged: the message *matched*
        assert out.delivered == 10

    def test_detach_evicts_slow_subscriber(self):
        bus, sub, got, out = self._flood(SlowSubscriberPolicy.DETACH, 2, 10)
        assert got == []  # evicted before the batch drained
        assert out.detached_slow == 1
        assert sub.active is False
        assert bus.subscribers == 0
        assert sub.shed == 10  # 3 pending at eviction + 7 matched after

    def test_shedding_is_per_subscriber_queue(self):
        """Only the subscriber whose own queue overruns sheds anything."""
        bus = ShardedSemanticBus(
            shards=2, queue_capacity=2, slow_policy=SlowSubscriberPolicy.DROP_OLDEST
        )
        got_light, got_heavy = [], []
        _, light = attach(bus, "light", got_light, attrs={"role": "clerk"})
        _, heavy = attach(bus, "heavy", got_heavy, attrs={"role": "medic"})
        batch = [msg("role == 'medic'", seq=i) for i in range(6)]
        batch += [msg("role == 'clerk'", seq=i) for i in range(2)]
        out = bus.publish_many(batch)
        # under-capacity subscriber keeps everything it matched
        assert [d.message.headers["seq"] for _, d in got_light] == [0, 1]
        assert light.shed == 0
        # the overrun one keeps only its newest `capacity` deliveries
        assert [d.message.headers["seq"] for _, d in got_heavy] == [4, 5]
        assert heavy.shed == 4 and out.shed == 4


class TestBrokerAPIProtocol:
    def test_all_backends_conform(self):
        from repro.messaging.transport import SemanticEndpoint
        from repro.network.clock import Scheduler
        from repro.network.multicast import MulticastGroup
        from repro.network.simnet import Network

        assert isinstance(SemanticBus(), BrokerAPI)
        assert isinstance(ShardedSemanticBus(), BrokerAPI)
        net = Network(Scheduler(), seed=1)
        net.add_node("h")
        ep = SemanticEndpoint(
            net, "h", MulticastGroup(net, "239.9.9.9", 5004),
            ClientProfile("h", {}), lambda d: None,
        )
        assert isinstance(ep, BrokerAPI)
        ep.close()

    def test_make_broker_picks_by_scale(self):
        assert isinstance(make_broker(10), SemanticBus)
        assert isinstance(make_broker(50_000), ShardedSemanticBus)
        assert isinstance(make_broker(shards=4), ShardedSemanticBus)
        assert make_broker(shards=4).shards == 4
        # explicit single shard still buys batching + admission control
        assert isinstance(make_broker(shards=1, queue_capacity=8), ShardedSemanticBus)

    def test_make_broker_rejects_sharded_options_on_plain_bus(self):
        with pytest.raises(TypeError):
            make_broker(10, queue_capacity=8)

    def test_stats_surface(self):
        plain, sharded = SemanticBus(), ShardedSemanticBus(shards=3)
        for bus in (plain, sharded):
            attach(bus, "c", [], attrs={"role": "medic"})
            bus.publish(msg("true"))
            stats = bus.stats()
            assert stats["subscribers"] == 1
            assert stats["published"] == 1
        assert plain.stats()["backend"] == "semantic-bus"
        assert sharded.stats()["backend"] == "sharded-semantic-bus"
        assert sharded.stats()["shards"] == 3
        assert sum(sharded.stats()["shard_sizes"]) == 1

    def test_close_is_idempotent(self):
        bus = ShardedSemanticBus(shards=2, workers=2)
        attach(bus, "c", [], attrs={"role": "medic"})
        bus.publish(msg("role == 'medic'"))
        bus.close()
        bus.close()


class TestConcurrency:
    """Attach/detach/publish interleavings must never corrupt accounting."""

    def _hammer(self, bus):
        errors = []
        stop = threading.Event()

        def churn(tid):
            try:
                for i in range(60):
                    _, sub = attach(
                        bus, f"t{tid}-{i}", [], attrs={"role": "medic", "t": tid}
                    )
                    if i % 3 == 0:
                        sub.detach()
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        def publisher():
            try:
                while not stop.is_set():
                    bus.publish_many([msg("role == 'medic'"), msg("true")])
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        churners = [threading.Thread(target=churn, args=(t,)) for t in range(4)]
        pub = threading.Thread(target=publisher)
        pub.start()
        for t in churners:
            t.start()
        for t in churners:
            t.join()
        stop.set()
        pub.join()
        return errors

    @pytest.mark.parametrize(
        "bus_factory",
        [lambda: SemanticBus(), lambda: ShardedSemanticBus(shards=4)],
        ids=["semantic-bus", "sharded"],
    )
    def test_concurrent_churn_and_publish(self, bus_factory):
        bus = bus_factory()
        errors = self._hammer(bus)
        assert errors == []
        # 4 threads x 60 attaches, every third detached again
        assert bus.subscribers == 4 * 60 - 4 * 20
        # surviving subscribers have consistent derived accounting
        res = bus.publish(msg("true"))
        assert res.delivered == bus.subscribers

    def test_callback_may_detach_during_delivery(self):
        bus = ShardedSemanticBus(shards=2)
        subs = []

        def suicidal(_delivery):
            subs[0].detach()

        profile = ClientProfile("c", {"role": "medic"})
        subs.append(bus.attach(profile, suicidal))
        attach(bus, "peer", [], attrs={"role": "medic"})
        out = bus.publish_many([msg("role == 'medic'")] * 3)
        # the snapshot admits the whole batch; detach applies afterwards
        assert out.results[0].delivered == 2
        assert bus.subscribers == 1

    def test_callback_may_attach_during_delivery(self):
        bus = ShardedSemanticBus(shards=2)
        got = []

        def grower(_delivery):
            attach(bus, f"new{len(got)}", got, attrs={"role": "medic"})

        bus.attach(ClientProfile("seed", {"role": "medic"}), grower)
        assert bus.publish(msg("role == 'medic'")).delivered == 1
        assert bus.subscribers == 2
        # the newcomer participates from the next batch on
        assert bus.publish(msg("role == 'medic'")).delivered >= 2


class TestCloseRace:
    """close() vs publish: the shutdown path must be lock-protected.

    close() used to flip ``_closed`` and null the pool outside the
    attach lock, so a publish already holding the lock could reach
    ``_ensure_pool`` mid-shutdown and die with "bus is closed" — making
    the docstring's "still publishes afterwards" a lie for workers>1.
    Now close() mutates under the lock and ``_match_all`` falls back to
    inline matching once closed.
    """

    def test_publish_after_close_delivers_inline(self):
        bus = ShardedSemanticBus(shards=4, workers=4)
        sink = []
        for i in range(8):
            attach(bus, f"c{i}", sink, attrs={"role": "medic", "seat": i})
        assert bus.publish(msg("role == 'medic'")).delivered == 8
        bus.close()
        # multi-shard batch after close: must match inline, not raise
        out = bus.publish_many([msg("role == 'medic'")] * 3)
        assert [r.delivered for r in out.results] == [8, 8, 8]
        assert bus._pool is None

    def test_concurrent_close_and_publish_never_raises(self):
        for _ in range(20):
            bus = ShardedSemanticBus(shards=4, workers=4)
            for i in range(8):
                attach(bus, f"c{i}", [], attrs={"role": "medic", "seat": i})
            errors = []
            start = threading.Barrier(3)

            def publisher():
                try:
                    start.wait(5)
                    for _ in range(5):
                        bus.publish(msg("role == 'medic'"))
                except Exception as exc:  # pragma: no cover - the regression
                    errors.append(exc)

            def closer():
                start.wait(5)
                bus.close()

            threads = [
                threading.Thread(target=publisher),
                threading.Thread(target=publisher),
                threading.Thread(target=closer),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(10)
            assert errors == []

    def test_ensure_pool_rebuilds_only_before_close(self):
        bus = ShardedSemanticBus(shards=4, workers=4)
        for i in range(8):
            # distinct attribute signatures spread the profiles over
            # shards, forcing the pooled fan-out path
            attach(bus, f"c{i}", [], attrs={"role": "medic", f"cap{i}": 1})
        bus.publish(msg("role == 'medic'"))
        assert bus._pool is not None
        bus.close()
        bus.publish(msg("role == 'medic'"))
        assert bus._pool is None  # closed bus never resurrects workers
