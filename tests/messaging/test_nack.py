"""NACK-driven selective retransmission: wire format, sender buffer,
receiver pacing, the reassembler clock regression, and end-to-end repair."""

import pytest

from repro.core.profiles import ClientProfile
from repro.messaging.message import SemanticMessage
from repro.messaging.rtp import (
    NACK_MAGIC,
    RetransmitBuffer,
    RtpError,
    RtpPacketizer,
    RtpReassembler,
    SelectiveRepeat,
    decode_nack,
    encode_nack,
    is_nack,
)
from repro.messaging.transport import SemanticEndpoint
from repro.network.clock import Scheduler
from repro.network.multicast import MulticastGroup
from repro.network.simnet import Network


class TestNackWireFormat:
    def test_roundtrip(self):
        data = encode_nack(0xDEADBEEF, 42, (0, 3, 7))
        assert is_nack(data)
        assert decode_nack(data) == (0xDEADBEEF, 42, (0, 3, 7))

    def test_rtp_fragment_is_not_a_nack(self):
        pkt = RtpPacketizer(ssrc=1234, mtu=100).packetize(b"hello")[0]
        assert not is_nack(pkt.encode())

    def test_empty_indices_rejected(self):
        with pytest.raises(RtpError):
            encode_nack(1, 1, ())

    def test_index_out_of_range_rejected(self):
        with pytest.raises(RtpError):
            encode_nack(1, 1, (0x10000,))

    @pytest.mark.parametrize(
        "data",
        [
            b"RNA",  # truncated magic
            b"XXXX" + bytes(10),  # wrong magic
            NACK_MAGIC + bytes(5),  # shorter than the header
            encode_nack(1, 1, (0,))[:-1],  # truncated index list
            encode_nack(1, 1, (0,)) + b"\x00",  # trailing bytes
        ],
    )
    def test_malformed_rejected(self, data):
        with pytest.raises(RtpError):
            decode_nack(data)


class TestRetransmitBuffer:
    def frags(self, body=b"x" * 250, mtu=100):
        return RtpPacketizer(ssrc=7, mtu=mtu).packetize(body)

    def test_hits_and_misses_counted(self):
        buf = RetransmitBuffer(capacity=4)
        packets = self.frags()
        buf.store(packets)
        msg_seq = packets[0].msg_seq
        got = buf.fragments(msg_seq, [0, 2, 99])
        assert [p.frag_index for p in got] == [0, 2]
        assert buf.hits == 2 and buf.misses == 1
        assert buf.fragments(msg_seq + 1, [0]) == []
        assert buf.misses == 2

    def test_oldest_message_evicted_wholesale(self):
        buf = RetransmitBuffer(capacity=2)
        packetizer = RtpPacketizer(ssrc=7, mtu=100)
        first = packetizer.packetize(b"a" * 200)
        buf.store(first)
        buf.store(packetizer.packetize(b"b" * 200))
        buf.store(packetizer.packetize(b"c" * 200))
        assert buf.retained_messages == 2
        assert buf.fragments(first[0].msg_seq, [0, 1]) == []  # evicted entirely

    def test_capacity_validated(self):
        with pytest.raises(RtpError):
            RetransmitBuffer(capacity=0)


class TestSelectiveRepeat:
    def test_first_request_immediate_then_backoff(self):
        sr = SelectiveRepeat(base_delay=0.2, multiplier=2.0, max_delay=2.0)
        pending = [(5, [1, 3])]
        assert sr.due(1, pending, now=0.0) == [(5, [1, 3])]
        assert sr.due(1, pending, now=0.1) == []  # inside the backoff
        assert sr.due(1, pending, now=0.25) == [(5, [1, 3])]
        # second gap doubles: not due again until 0.25 + 0.4
        assert sr.due(1, pending, now=0.5) == []
        assert sr.due(1, pending, now=0.7) == [(5, [1, 3])]

    def test_exhaustion_counted_once(self):
        sr = SelectiveRepeat(base_delay=0.1, max_attempts=2)
        pending = [(9, [0])]
        assert sr.due(1, pending, now=0.0)
        assert sr.due(1, pending, now=10.0)
        assert sr.exhausted(1, 9)
        assert sr.due(1, pending, now=20.0) == []
        assert sr.due(1, pending, now=30.0) == []
        assert sr.given_up == 1
        assert sr.exhausted(1, 9)

    def test_complete_messages_not_requested(self):
        sr = SelectiveRepeat()
        assert sr.due(1, [(5, [])], now=0.0) == []
        assert sr.requests == 0

    def test_prune_drops_dead_state(self):
        sr = SelectiveRepeat()
        sr.due(1, [(5, [0])], now=0.0)
        sr.due(2, [(6, [1])], now=0.0)
        sr.prune([(2, 6)])
        # pruned message starts over: first request admissible again
        assert sr.due(1, [(5, [0])], now=0.0) == [(5, [0])]
        assert sr.due(2, [(6, [1])], now=0.0) == []  # kept its backoff

    def test_forget_single_message(self):
        sr = SelectiveRepeat()
        sr.due(1, [(5, [0])], now=0.0)
        sr.forget(1, 5)
        assert sr.due(1, [(5, [0])], now=0.0) == [(5, [0])]

    def test_parameters_validated(self):
        with pytest.raises(RtpError):
            SelectiveRepeat(base_delay=0.0)
        with pytest.raises(RtpError):
            SelectiveRepeat(base_delay=1.0, max_delay=0.5)
        with pytest.raises(RtpError):
            SelectiveRepeat(multiplier=0.5)
        with pytest.raises(RtpError):
            SelectiveRepeat(max_attempts=0)


class TestReassemblerClock:
    """Regression: ``ingest(data, now=0.0)`` silently defeated ``expire``
    — every fragment looked forever-fresh.  The clock is now explicit."""

    def test_ingest_without_time_source_raises(self):
        r = RtpReassembler(lambda s, p: None)
        pkt = RtpPacketizer(ssrc=1, mtu=100).packetize(b"x")[0]
        with pytest.raises(RtpError, match="current time"):
            r.ingest(pkt.encode())

    def test_explicit_now_still_works(self):
        out = []
        r = RtpReassembler(lambda s, p: out.append(p))
        for pkt in RtpPacketizer(ssrc=1, mtu=100).packetize(b"y" * 50):
            r.ingest(pkt.encode(), now=1.5)
        assert out == [b"y" * 50]

    def test_constructor_clock_used_when_now_omitted(self):
        t = [0.0]
        out = []
        r = RtpReassembler(lambda s, p: out.append(p), clock=lambda: t[0], max_age=1.0)
        packets = RtpPacketizer(ssrc=1, mtu=100).packetize(b"z" * 150)
        r.ingest(packets[0].encode())  # partial: one of two fragments
        t[0] = 5.0
        assert r.expire() == 1  # the clock advanced; the partial aged out
        assert out == []

    def test_max_age_validated(self):
        with pytest.raises(RtpError):
            RtpReassembler(lambda s, p: None, max_age=0.0)


class TestEndToEndRepair:
    def build(self, loss=0.0, seed=3):
        """Loss only on the receiver's access link: the sender's side
        stays clean so the drill isolates receiver-side repair."""
        sched = Scheduler()
        net = Network(sched, seed=seed)
        net.add_node("sw")
        net.add_node("a")
        net.add_link("a", "sw", latency=0.001, bandwidth=1e7)
        net.add_node("b")
        net.add_link("b", "sw", latency=0.001, bandwidth=1e7, loss=loss)
        group = MulticastGroup(net, "239.1.1.1", 5004)
        got = []
        rx = SemanticEndpoint(
            net,
            "b",
            group,
            ClientProfile("b", {}),
            lambda d: got.append(d),
            nack=True,
            mtu=100,
            expire_interval=0.25,
        )
        tx = SemanticEndpoint(
            net,
            "a",
            group,
            ClientProfile("a", {}),
            lambda d: None,
            nack=True,
            mtu=100,
        )
        return sched, rx, tx, got

    def test_lossy_fragmented_message_repaired(self):
        sched, rx, tx, got = self.build(loss=0.15)
        body = bytes(range(256)) * 8  # ~2 KB -> ~21 fragments at mtu 100
        tx.publish(SemanticMessage.create("a", "true", body=body))
        sched.run_for(10.0)
        assert len(got) == 1
        assert got[0].message.body == body
        assert rx.nacks_sent >= 1
        assert tx.nacks_received >= 1
        assert tx.retransmitted_fragments >= 1

    def test_lossless_run_sends_no_nacks(self):
        sched, rx, tx, got = self.build(loss=0.0)
        tx.publish(SemanticMessage.create("a", "true", body=b"q" * 500))
        sched.run_for(5.0)
        assert len(got) == 1
        assert rx.nacks_sent == 0
        assert tx.nacks_received == 0

    def test_nack_disabled_endpoint_ignores_requests(self):
        sched, rx, tx, got = self.build(loss=0.0)
        # a NACK aimed at tx's ssrc, but for a message it never sent
        nack = encode_nack(tx.ssrc, 999, (0,))
        tx._on_nack(nack, ("b", 5004))
        assert tx.nacks_received == 1
        assert tx.retransmitted_fragments == 0  # nothing buffered: all misses

    def test_counters_zero_when_disabled(self):
        sched = Scheduler()
        net = Network(sched, seed=1)
        net.add_node("sw")
        net.add_node("a")
        net.add_link("a", "sw", latency=0.001, bandwidth=1e7)
        group = MulticastGroup(net, "239.1.1.1", 5004)
        ep = SemanticEndpoint(
            net, "a", group, ClientProfile("a", {}), lambda d: None
        )
        assert not ep.nack_enabled
        assert ep._retransmit is None and ep._repair is None
