"""Tests for semantic messages and the wire codec."""

import pytest
from hypothesis import given, strategies as st

from repro.core.selectors import Selector
from repro.messaging.message import MessageId, SemanticMessage, next_message_id
from repro.messaging.serialization import WireError, decode_message, encode_message


class TestMessage:
    def test_create_mints_unique_ids(self):
        a = SemanticMessage.create("alice", "true")
        b = SemanticMessage.create("alice", "true")
        assert a.msg_id != b.msg_id
        assert a.msg_id.sender == "alice"

    def test_effective_headers_injects_kind(self):
        m = SemanticMessage.create("a", "true", headers={"x": 1}, kind="chat")
        eff = m.effective_headers()
        assert eff["kind"] == "chat"
        assert eff["x"] == 1

    def test_explicit_kind_header_wins(self):
        m = SemanticMessage.create("a", "true", headers={"kind": "custom"}, kind="chat")
        assert m.effective_headers()["kind"] == "custom"

    def test_selector_string_compiled(self):
        m = SemanticMessage.create("a", "role == 'medic'")
        assert isinstance(m.selector, Selector)

    def test_size(self):
        m = SemanticMessage.create("a", "true", body=b"12345")
        assert m.size == 5

    def test_message_id_ordering(self):
        assert MessageId("a", 1) < MessageId("a", 2)
        assert str(MessageId("a", 3)) == "a#3"


header_values = st.one_of(
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
    st.lists(
        st.one_of(st.integers(-1000, 1000), st.text(max_size=10), st.booleans()),
        max_size=5,
    ),
)


class TestWireCodec:
    def test_roundtrip_simple(self):
        m = SemanticMessage.create(
            "alice",
            "role == 'medic' and battery >= 20",
            headers={"modality": "image", "size_kb": 120, "urgent": True},
            body=b"\x00\x01\xffpayload",
            kind="image-share",
        )
        rt = decode_message(encode_message(m))
        assert rt.msg_id == m.msg_id
        assert rt.kind == m.kind
        assert rt.sender == m.sender
        assert rt.selector.text == m.selector.text
        assert rt.headers == m.headers
        assert rt.body == m.body

    @given(st.dictionaries(st.text(min_size=1, max_size=20), header_values, max_size=8),
           st.binary(max_size=500))
    def test_roundtrip_property(self, headers, body):
        m = SemanticMessage.create("s", "true", headers=headers, body=body)
        rt = decode_message(encode_message(m))
        assert rt.headers == m.headers
        assert rt.body == body

    def test_deterministic_encoding(self):
        """Same logical message -> identical wire bytes (header order)."""
        a = SemanticMessage(MessageId("s", 1), Selector("true"), {"b": 1, "a": 2})
        b = SemanticMessage(MessageId("s", 1), Selector("true"), {"a": 2, "b": 1})
        assert encode_message(a) == encode_message(b)

    def test_bad_magic_rejected(self):
        with pytest.raises(WireError):
            decode_message(b"XXjunk")

    def test_bad_version_rejected(self):
        m = encode_message(SemanticMessage.create("s", "true"))
        corrupted = m[:2] + bytes([99]) + m[3:]
        with pytest.raises(WireError):
            decode_message(corrupted)

    def test_truncated_body_rejected(self):
        m = encode_message(SemanticMessage.create("s", "true", body=b"x" * 100))
        with pytest.raises(WireError):
            decode_message(m[:-10])

    def test_unicode_content(self):
        m = SemanticMessage.create("sénder", "true", headers={"note": "héllo wörld"})
        rt = decode_message(encode_message(m))
        assert rt.sender == "sénder"
        assert rt.headers["note"] == "héllo wörld"

    def test_nested_list_rejected_at_encode(self):
        m = SemanticMessage(
            MessageId("s", 1), Selector("true"), {"bad": [[1, 2]]}
        )
        with pytest.raises(WireError):
            encode_message(m)
