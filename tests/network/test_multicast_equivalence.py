"""Hypothesis property: tree multicast is observably identical to flat.

The routing fabric replaces O(members) unicast fan-out with single-copy
tree replication, but the *observable* contract must not move: for any
topology, membership churn schedule, and seeded chaos plan (link flaps),
a fabric-backed group and a flat-registry group must produce

* the identical delivery set (who received which payloads),
* the identical per-receiver delivery order, and
* identical packet-disposition counters with conservation
  (``sent == delivered + dropped + duplicated``) holding in both.

Both worlds are built loss-free through the same construction path, so
every divergence is a real semantic difference in the tree data plane,
not sampling noise.  Sends, membership changes, and flap windows are
separated by a full virtual second while link delays are sub-millisecond,
so each action observes a quiescent network — the same discipline the
chaos experiment harness uses.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.network.clock import Scheduler
from repro.network.faults import ChaosController, FaultPlan, LinkFlap
from repro.network.multicast import MulticastGroup, MulticastSocket
from repro.network.routing import MulticastFabric
from repro.network.simnet import Network

GROUP = "239.7.7.7"
PORT = 5000


@st.composite
def scenarios(draw):
    """A topology + interleaved action timeline + flap schedule."""
    n_access = draw(st.integers(min_value=2, max_value=4))
    n_hosts = draw(st.integers(min_value=2, max_value=6))
    # each host hangs off one access router (single-homed)
    attach = [draw(st.integers(min_value=0, max_value=n_access - 1)) for _ in range(n_hosts)]
    # optional backup cross-link between two access routers
    cross = draw(
        st.one_of(
            st.none(),
            st.tuples(
                st.integers(min_value=0, max_value=n_access - 1),
                st.integers(min_value=0, max_value=n_access - 1),
            ).filter(lambda ab: ab[0] != ab[1]),
        )
    )
    # timeline of actions at t = 1s, 2s, ...: toggle a host's membership
    # or multicast a payload from the lowest-named current member
    actions = draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("toggle"), st.integers(min_value=0, max_value=n_hosts - 1)),
                st.tuples(st.just("send"), st.binary(min_size=1, max_size=8)),
            ),
            min_size=1,
            max_size=12,
        )
    )
    # flap windows over router-router links, offset so their boundaries
    # land strictly between action ticks
    n_links = n_access + (1 if cross else 0)
    flaps = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n_links - 1),
                st.integers(min_value=0, max_value=len(actions)),
                st.integers(min_value=1, max_value=3),
            ),
            max_size=3,
        )
    )
    return n_access, attach, cross, actions, flaps


def _build_world(tree, n_access, attach, cross):
    """One world: core router + access routers + hosts, loss-free links."""
    sched = Scheduler()
    net = Network(sched, seed=1234)
    fab = MulticastFabric(net)
    fab.add_domain("core")
    for i in range(n_access):
        fab.add_domain(f"d{i}", parent="core")
    fab.add_router("core0", "core", latency=0.0005)
    router_links = []
    for i in range(n_access):
        fab.add_router(f"acc{i}", f"d{i}", parent="core0", latency=0.0005)
        router_links.append((f"acc{i}", "core0"))
    if cross is not None:
        a, b = cross
        fab.connect(f"acc{a}", f"acc{b}", latency=0.002)
        router_links.append((f"acc{a}", f"acc{b}"))
    for h, r in enumerate(attach):
        fab.attach_host(f"h{h}", f"acc{r}", latency=0.0002)
    group = MulticastGroup(net, GROUP, PORT, fabric=fab if tree else None)
    return sched, net, fab, group, router_links


def _run_world(tree, n_access, attach, cross, actions, flaps):
    sched, net, fab, group, router_links = _build_world(tree, n_access, attach, cross)
    events = [
        LinkFlap(*router_links[li], start=at + 0.4, duration=dur + 0.2)
        for li, at, dur in flaps
    ]
    ChaosController(net, FaultPlan(events), seed=99).install()
    received = {f"h{h}": [] for h in range(len(attach))}
    sockets = {}
    t = 1.0
    for kind, arg in actions:
        sched.run_until(t)
        if kind == "toggle":
            host = f"h{arg}"
            if host in sockets:
                sockets.pop(host).leave()
            else:
                sockets[host] = MulticastSocket(
                    net,
                    host,
                    group,
                    on_receive=lambda d, s, h=host: received[h].append(d),
                )
        else:  # send from the lowest-named current member
            if sockets:
                sockets[min(sockets)].send(arg)
        t += 1.0
    sched.run()
    counters = (
        net.packets_sent,
        net.packets_delivered,
        net.packets_dropped,
        net.packets_duplicated,
    )
    return received, counters


@settings(max_examples=60, deadline=None)
@given(scenarios())
def test_tree_equals_flat(scenario):
    n_access, attach, cross, actions, flaps = scenario
    flat_rx, flat_counters = _run_world(False, n_access, attach, cross, actions, flaps)
    tree_rx, tree_counters = _run_world(True, n_access, attach, cross, actions, flaps)
    # identical per-receiver delivery order (hence identical delivery set)
    assert tree_rx == flat_rx
    # identical disposition counters, each conserving every logical send
    assert tree_counters == flat_counters
    sent, delivered, dropped, duplicated = tree_counters
    assert sent == delivered + dropped + duplicated


@settings(max_examples=25, deadline=None)
@given(scenarios(), st.integers(min_value=0, max_value=2**16))
def test_tree_conservation_with_jitter(scenario, seed):
    """Per-receiver FIFO and conservation also hold with jitter > 0.

    Jittered delays differ between flat and tree paths, so absolute
    delivery *times* diverge; the per-receiver *order* and the counter
    conservation must not.
    """
    n_access, attach, cross, actions, flaps = scenario
    sched, net, fab, group, router_links = _build_world(True, n_access, attach, cross)
    for link in net.links:
        link.jitter = 0.0004
    net.rng = np.random.default_rng(seed)
    received = {f"h{h}": [] for h in range(len(attach))}
    sockets = {}
    sent_log = []
    t = 1.0
    for kind, arg in actions:
        sched.run_until(t)
        if kind == "toggle":
            host = f"h{arg}"
            if host in sockets:
                sockets.pop(host).leave()
            else:
                sockets[host] = MulticastSocket(
                    net,
                    host,
                    group,
                    on_receive=lambda d, s, h=host: received[h].append(d),
                )
        elif sockets:
            sockets[min(sockets)].send(arg)
            sent_log.append(arg)
        t += 1.0
    sched.run()
    # every receiver saw a subsequence of the send log, in send order
    for host, seen in received.items():
        it = iter(sent_log)
        assert all(any(s == got for s in it) for got in seen), (
            f"{host} delivered out of send order: {seen} vs {sent_log}"
        )
    assert net.packets_sent == (
        net.packets_delivered + net.packets_dropped + net.packets_duplicated
    )
