"""Tests for the simulated packet network."""

import numpy as np
import pytest

from repro.network.clock import Scheduler
from repro.network.simnet import Link, Network, NetworkError, Packet


@pytest.fixture
def net():
    sched = Scheduler()
    network = Network(sched, seed=42)
    for name in ("a", "b", "c", "d"):
        network.add_node(name)
    network.add_link("a", "b", latency=0.001, bandwidth=1e6)
    network.add_link("b", "c", latency=0.002, bandwidth=1e6)
    network.add_link("a", "d", latency=0.010, bandwidth=1e6)
    network.add_link("d", "c", latency=0.010, bandwidth=1e6)
    return network


class TestTopology:
    def test_duplicate_node_rejected(self, net):
        with pytest.raises(NetworkError):
            net.add_node("a")

    def test_link_requires_existing_nodes(self, net):
        with pytest.raises(NetworkError):
            net.add_link("a", "zzz")

    def test_self_link_rejected(self, net):
        with pytest.raises(NetworkError):
            net.add_link("a", "a")

    def test_duplicate_link_rejected(self, net):
        with pytest.raises(NetworkError):
            net.add_link("b", "a")  # same link, reversed endpoints

    def test_nodes_sorted(self, net):
        assert net.nodes == ["a", "b", "c", "d"]

    def test_link_lookup_symmetric(self, net):
        assert net.link("a", "b") is net.link("b", "a")

    def test_remove_link(self, net):
        net.remove_link("a", "b")
        with pytest.raises(NetworkError):
            net.link("a", "b")

    def test_link_validation(self):
        with pytest.raises(NetworkError):
            Link("x", "y", bandwidth=0)
        with pytest.raises(NetworkError):
            Link("x", "y", latency=-1)
        with pytest.raises(NetworkError):
            Link("x", "y", loss=1.0)

    def test_link_other(self, net):
        link = net.link("a", "b")
        assert link.other("a") == "b"
        assert link.other("b") == "a"
        with pytest.raises(NetworkError):
            link.other("c")


class TestRouting:
    def test_shortest_latency_path_chosen(self, net):
        path = net.route("a", "c")
        # a-b-c costs 3 ms, a-d-c costs 20 ms
        assert [frozenset((l.a, l.b)) for l in path] == [
            frozenset(("a", "b")),
            frozenset(("b", "c")),
        ]

    def test_self_route_is_empty(self, net):
        assert net.route("a", "a") == []

    def test_unroutable_returns_none(self, net):
        net.add_node("island")
        assert net.route("a", "island") is None

    def test_route_cache_invalidated_on_topology_change(self, net):
        assert len(net.route("a", "c")) == 2
        net.remove_link("a", "b")
        path = net.route("a", "c")
        assert [frozenset((l.a, l.b)) for l in path] == [
            frozenset(("a", "d")),
            frozenset(("d", "c")),
        ]

    def test_path_latency(self, net):
        assert net.path_latency("a", "c") == pytest.approx(0.003)

    def test_path_bandwidth_bottleneck(self, net):
        net.link("b", "c").bandwidth = 5e5
        net._route_cache.clear()
        assert net.path_bandwidth("a", "c") == 5e5


class TestDelivery:
    def test_end_to_end_delivery(self, net):
        got = []
        net.node("c").bind(9, lambda p: got.append(p.payload))
        assert net.send(Packet("a", 1, "c", 9, b"hello"))
        net.scheduler.run()
        assert got == [b"hello"]

    def test_delivery_respects_latency(self, net):
        times = []
        net.node("c").bind(9, lambda p: times.append(net.scheduler.clock.now))
        net.send(Packet("a", 1, "c", 9, b"x"))
        net.scheduler.run()
        # >= 3 ms propagation plus serialization
        assert times[0] >= 0.003

    def test_unbound_port_discards(self, net):
        net.send(Packet("a", 1, "c", 1234, b"x"))
        net.scheduler.run()  # no error

    def test_unroutable_send_returns_false(self, net):
        net.add_node("island")
        assert net.send(Packet("a", 1, "island", 9, b"x")) is False

    def test_self_delivery_async(self, net):
        got = []
        net.node("a").bind(7, lambda p: got.append(p.payload))
        net.send(Packet("a", 1, "a", 7, b"self"))
        assert got == []  # not synchronous
        net.scheduler.run()
        assert got == [b"self"]

    def test_lossy_link_drops_deterministically(self):
        sched = Scheduler()
        net = Network(sched, seed=7)
        net.add_node("x")
        net.add_node("y")
        link = net.add_link("x", "y", loss=0.5)
        results = [net.send(Packet("x", 1, "y", 9, b"p")) for _ in range(200)]
        drops = results.count(False)
        assert 60 <= drops <= 140  # ~50% ± slack
        assert link.dropped_packets == drops

    def test_fifo_order_preserved_on_shared_link(self, net):
        """Simultaneous sends serialize in order despite differing sizes."""
        got = []
        net.node("c").bind(9, lambda p: got.append(p.payload))
        net.send(Packet("a", 1, "c", 9, b"L" * 900))  # big first
        net.send(Packet("a", 1, "c", 9, b"s"))        # small second
        net.scheduler.run()
        assert got == [b"L" * 900, b"s"]

    def test_counters_accumulate(self, net):
        net.node("b").bind(9, lambda p: None)
        pkt = Packet("a", 1, "b", 9, b"1234")
        net.send(pkt)
        net.scheduler.run()
        link = net.link("a", "b")
        assert link.tx_octets == pkt.size
        assert link.delivered_packets == 1


class TestJitter:
    def test_jitter_perturbs_delay(self):
        sched = Scheduler()
        net = Network(sched, seed=3)
        net.add_node("x")
        net.add_node("y")
        net.add_link("x", "y", latency=0.001, jitter=0.0005)
        times = []
        net.node("y").bind(9, lambda p: times.append(sched.clock.now))
        t_sent = []
        for _ in range(20):
            t_sent.append(sched.clock.now)
            net.send(Packet("x", 1, "y", 9, b"q"))
            sched.run()
        delays = np.diff([0] + times)
        assert len(set(np.round(delays, 9))) > 1  # not all identical
