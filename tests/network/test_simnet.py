"""Tests for the simulated packet network."""

import numpy as np
import pytest

from repro.network.clock import Scheduler
from repro.network.simnet import (
    CastPlan,
    Link,
    LruCache,
    Network,
    NetworkError,
    Packet,
)


@pytest.fixture
def net():
    sched = Scheduler()
    network = Network(sched, seed=42)
    for name in ("a", "b", "c", "d"):
        network.add_node(name)
    network.add_link("a", "b", latency=0.001, bandwidth=1e6)
    network.add_link("b", "c", latency=0.002, bandwidth=1e6)
    network.add_link("a", "d", latency=0.010, bandwidth=1e6)
    network.add_link("d", "c", latency=0.010, bandwidth=1e6)
    return network


class TestTopology:
    def test_duplicate_node_rejected(self, net):
        with pytest.raises(NetworkError):
            net.add_node("a")

    def test_link_requires_existing_nodes(self, net):
        with pytest.raises(NetworkError):
            net.add_link("a", "zzz")

    def test_self_link_rejected(self, net):
        with pytest.raises(NetworkError):
            net.add_link("a", "a")

    def test_duplicate_link_rejected(self, net):
        with pytest.raises(NetworkError):
            net.add_link("b", "a")  # same link, reversed endpoints

    def test_nodes_sorted(self, net):
        assert net.nodes == ["a", "b", "c", "d"]

    def test_link_lookup_symmetric(self, net):
        assert net.link("a", "b") is net.link("b", "a")

    def test_remove_link(self, net):
        net.remove_link("a", "b")
        with pytest.raises(NetworkError):
            net.link("a", "b")

    def test_link_validation(self):
        with pytest.raises(NetworkError):
            Link("x", "y", bandwidth=0)
        with pytest.raises(NetworkError):
            Link("x", "y", latency=-1)
        with pytest.raises(NetworkError):
            Link("x", "y", loss=1.0)

    def test_link_other(self, net):
        link = net.link("a", "b")
        assert link.other("a") == "b"
        assert link.other("b") == "a"
        with pytest.raises(NetworkError):
            link.other("c")


class TestRouting:
    def test_shortest_latency_path_chosen(self, net):
        path = net.route("a", "c")
        # a-b-c costs 3 ms, a-d-c costs 20 ms
        assert [frozenset((l.a, l.b)) for l in path] == [
            frozenset(("a", "b")),
            frozenset(("b", "c")),
        ]

    def test_self_route_is_empty(self, net):
        assert net.route("a", "a") == []

    def test_unroutable_returns_none(self, net):
        net.add_node("island")
        assert net.route("a", "island") is None

    def test_route_cache_invalidated_on_topology_change(self, net):
        assert len(net.route("a", "c")) == 2
        net.remove_link("a", "b")
        path = net.route("a", "c")
        assert [frozenset((l.a, l.b)) for l in path] == [
            frozenset(("a", "d")),
            frozenset(("d", "c")),
        ]

    def test_path_latency(self, net):
        assert net.path_latency("a", "c") == pytest.approx(0.003)

    def test_path_bandwidth_bottleneck(self, net):
        net.link("b", "c").bandwidth = 5e5
        net._route_cache.clear()
        assert net.path_bandwidth("a", "c") == 5e5


class TestDelivery:
    def test_end_to_end_delivery(self, net):
        got = []
        net.node("c").bind(9, lambda p: got.append(p.payload))
        assert net.send(Packet("a", 1, "c", 9, b"hello"))
        net.scheduler.run()
        assert got == [b"hello"]

    def test_delivery_respects_latency(self, net):
        times = []
        net.node("c").bind(9, lambda p: times.append(net.scheduler.clock.now))
        net.send(Packet("a", 1, "c", 9, b"x"))
        net.scheduler.run()
        # >= 3 ms propagation plus serialization
        assert times[0] >= 0.003

    def test_unbound_port_discards(self, net):
        net.send(Packet("a", 1, "c", 1234, b"x"))
        net.scheduler.run()  # no error

    def test_unroutable_send_returns_false(self, net):
        net.add_node("island")
        assert net.send(Packet("a", 1, "island", 9, b"x")) is False

    def test_self_delivery_async(self, net):
        got = []
        net.node("a").bind(7, lambda p: got.append(p.payload))
        net.send(Packet("a", 1, "a", 7, b"self"))
        assert got == []  # not synchronous
        net.scheduler.run()
        assert got == [b"self"]

    def test_lossy_link_drops_deterministically(self):
        sched = Scheduler()
        net = Network(sched, seed=7)
        net.add_node("x")
        net.add_node("y")
        link = net.add_link("x", "y", loss=0.5)
        results = [net.send(Packet("x", 1, "y", 9, b"p")) for _ in range(200)]
        drops = results.count(False)
        assert 60 <= drops <= 140  # ~50% ± slack
        assert link.dropped_packets == drops

    def test_fifo_order_preserved_on_shared_link(self, net):
        """Simultaneous sends serialize in order despite differing sizes."""
        got = []
        net.node("c").bind(9, lambda p: got.append(p.payload))
        net.send(Packet("a", 1, "c", 9, b"L" * 900))  # big first
        net.send(Packet("a", 1, "c", 9, b"s"))        # small second
        net.scheduler.run()
        assert got == [b"L" * 900, b"s"]

    def test_counters_accumulate(self, net):
        net.node("b").bind(9, lambda p: None)
        pkt = Packet("a", 1, "b", 9, b"1234")
        net.send(pkt)
        net.scheduler.run()
        link = net.link("a", "b")
        assert link.tx_octets == pkt.size
        assert link.delivered_packets == 1


class TestFifoUnderJitter:
    """Regression: per-link FIFO must survive per-packet jitter draws.

    Jitter used to be sampled independently per packet with no ordering
    constraint, so a later packet on the same link direction could land
    before an earlier one — breaking the FIFO promise RTP reassembly
    depends on.  ``Link.enqueue`` now clamps per-direction arrivals
    non-decreasing.
    """

    def _burst_order(self, jitter, n=200, seed=11):
        sched = Scheduler()
        net = Network(sched, seed=seed)
        net.add_node("x")
        net.add_node("y")
        # jitter dwarfs both latency and per-packet serialization gap, the
        # regime where independent draws reordered nearly every burst
        net.add_link("x", "y", latency=0.0001, jitter=jitter, bandwidth=1e9)
        got = []
        net.node("y").bind(9, lambda p: got.append(p.payload))
        for i in range(n):
            net.send(Packet("x", 1, "y", 9, i.to_bytes(4, "big")))
        sched.run()
        return [int.from_bytes(b, "big") for b in got]

    def test_high_jitter_burst_stays_in_order(self):
        seqs = self._burst_order(jitter=0.05)
        assert seqs == sorted(seqs)
        assert len(seqs) == 200

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_in_order_across_seeds(self, seed):
        seqs = self._burst_order(jitter=0.01, n=50, seed=seed)
        assert seqs == sorted(seqs)

    def test_arrival_clock_is_per_direction(self):
        """Opposite directions keep independent clamps (full duplex)."""
        link = Link("x", "y", latency=0.001, jitter=0.01)
        rng = np.random.default_rng(5)
        fwd = [link.enqueue("x", 0.0, 100, rng) for _ in range(5)]
        rev = link.enqueue("y", 0.0, 100, rng)
        assert fwd == sorted(fwd)
        # the reverse direction is not forced after the forward clamp
        assert rev < fwd[-1]


class TestLruCache:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LruCache(0)

    def test_eviction_order_is_lru(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"
        cache.put("c", 3)  # evicts "b", the stalest
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_hit_miss_counters(self):
        cache = LruCache(4)
        cache.put("k", "v")
        assert cache.get("k") == "v"
        assert cache.get("absent") is None
        assert (cache.hits, cache.misses) == (1, 1)

    def test_route_cache_bounded(self):
        """The network's route cache evicts instead of growing forever."""
        sched = Scheduler()
        net = Network(sched, seed=0, route_cache_size=4)
        hosts = [f"h{i}" for i in range(6)]
        net.add_node("hub")
        for h in hosts:
            net.add_node(h)
            net.add_link(h, "hub")
        for h in hosts[1:]:
            net.route(hosts[0], h)
        assert len(net._route_cache) <= 4
        assert net._route_cache.evictions >= 1

    def test_unroutable_none_is_cached(self, net):
        net.add_node("island")
        assert net.route("a", "island") is None
        misses = net._route_cache.misses
        assert net.route("a", "island") is None  # cached None, not re-Dijkstra
        assert net._route_cache.misses == misses


class TestCast:
    """Single-copy tree replication via :meth:`Network.cast`."""

    @pytest.fixture
    def star(self):
        """root -- relay -- {m1, m2, m3}: one shared uplink, 3 leaves."""
        sched = Scheduler()
        net = Network(sched, seed=2)
        for n in ("root", "relay", "m1", "m2", "m3"):
            net.add_node(n)
        net.add_link("root", "relay", latency=0.001)
        for m in ("m1", "m2", "m3"):
            net.add_link("relay", m, latency=0.001)
        plan = CastPlan(
            "root",
            (("root", "relay"), ("relay", "m1"), ("relay", "m2"), ("relay", "m3")),
        )
        return net, plan

    def test_single_copy_per_edge(self, star):
        net, plan = star
        got = []
        for m in ("m1", "m2", "m3"):
            net.node(m).bind(9, lambda p, m=m: got.append(m))
        n = net.cast(
            Packet("root", 1, "*", 9, b"x"), plan, [(m, 9) for m in ("m1", "m2", "m3")]
        )
        net.scheduler.run()
        assert n == 3
        assert sorted(got) == ["m1", "m2", "m3"]
        # 4 tree edges, not 3 members x 2-hop paths = 6
        assert net.packets_transmitted == 4

    def test_unicast_transmissions_scale_with_members(self, star):
        net, _ = star
        for m in ("m1", "m2", "m3"):
            net.send(Packet("root", 1, m, 9, b"x"))
        assert net.packets_transmitted == 6

    def test_counter_conservation(self, star):
        net, plan = star
        net.cast(Packet("root", 1, "*", 9, b"x"), plan, [("m1", 9), ("m2", 9)])
        assert net.packets_sent == 2
        assert (
            net.packets_sent
            == net.packets_delivered + net.packets_dropped + net.packets_duplicated
        )

    def test_down_edge_severs_subtree(self, star):
        net, plan = star
        net.set_link_up("root", "relay", False)
        n = net.cast(
            Packet("root", 1, "*", 9, b"x"), plan, [(m, 9) for m in ("m1", "m2", "m3")]
        )
        assert n == 0
        assert net.packets_dropped == 3
        assert net.packets_transmitted == 0
        assert (
            net.packets_sent
            == net.packets_delivered + net.packets_dropped + net.packets_duplicated
        )

    def test_loopback_target_at_root(self, star):
        net, plan = star
        got = []
        net.node("root").bind(9, lambda p: got.append(p.payload))
        n = net.cast(Packet("root", 1, "*", 9, b"me"), plan, [("root", 9)])
        net.scheduler.run()
        assert n == 1
        assert got == [b"me"]

    def test_shared_link_serializes_once(self, star):
        """The uplink is billed one packet per cast, not one per member."""
        net, plan = star
        size = Packet("root", 1, "*", 9, b"x").size
        net.cast(
            Packet("root", 1, "*", 9, b"x"), plan, [(m, 9) for m in ("m1", "m2", "m3")]
        )
        assert net.link("root", "relay").tx_octets == size


class TestTopologyListeners:
    def test_listener_sees_add_remove_flap(self, net):
        events = []
        net.add_topology_listener(lambda a, b, up: events.append((a, b, up)))
        net.add_link("b", "d")
        net.set_link_up("b", "d", False)
        net.set_link_up("b", "d", False)  # idempotent: no second event
        net.set_link_up("b", "d", True)
        net.remove_link("b", "d")
        assert events == [
            ("b", "d", True),
            ("b", "d", False),
            ("b", "d", True),
            ("b", "d", False),
        ]


class TestJitter:
    def test_jitter_perturbs_delay(self):
        sched = Scheduler()
        net = Network(sched, seed=3)
        net.add_node("x")
        net.add_node("y")
        net.add_link("x", "y", latency=0.001, jitter=0.0005)
        times = []
        net.node("y").bind(9, lambda p: times.append(sched.clock.now))
        t_sent = []
        for _ in range(20):
            t_sent.append(sched.clock.now)
            net.send(Packet("x", 1, "y", 9, b"q"))
            sched.run()
        delays = np.diff([0] + times)
        assert len(set(np.round(delays, 9))) > 1  # not all identical
