"""Tests for the hierarchical multicast routing fabric."""

import pytest

from repro.network.clock import Scheduler
from repro.network.routing import MulticastFabric, RoutingError
from repro.network.simnet import Network, Packet


@pytest.fixture
def fabric():
    """Two nested domains under a core: r0 -> (re -> re1, rw -> rw1)."""
    sched = Scheduler()
    net = Network(sched, seed=1)
    fab = MulticastFabric(net)
    fab.add_domain("core")
    fab.add_domain("east", parent="core")
    fab.add_domain("west", parent="core")
    fab.add_router("r0", "core")
    fab.add_router("re", "east", parent="r0")
    fab.add_router("rw", "west", parent="r0")
    fab.add_router("re1", "east", parent="re")
    fab.add_router("rw1", "west", parent="rw")
    for h in ("e0", "e1"):
        fab.attach_host(h, "re1")
    for h in ("w0", "w1"):
        fab.attach_host(h, "rw1")
    return net, fab


class TestTopologyValidation:
    def test_duplicate_domain_rejected(self, fabric):
        _, fab = fabric
        with pytest.raises(RoutingError):
            fab.add_domain("core")

    def test_unknown_parent_domain_rejected(self, fabric):
        _, fab = fabric
        with pytest.raises(RoutingError):
            fab.add_domain("x", parent="nope")

    def test_router_requires_known_domain(self, fabric):
        _, fab = fabric
        with pytest.raises(RoutingError):
            fab.add_router("rx", "nope")

    def test_duplicate_router_rejected(self, fabric):
        _, fab = fabric
        with pytest.raises(RoutingError):
            fab.add_router("r0", "core")

    def test_attach_requires_known_router(self, fabric):
        _, fab = fabric
        with pytest.raises(RoutingError):
            fab.attach_host("h", "nope")

    def test_double_attach_rejected(self, fabric):
        _, fab = fabric
        with pytest.raises(RoutingError):
            fab.attach_host("e0", "re1")

    def test_join_requires_attached_host(self, fabric):
        _, fab = fabric
        fab.create_group("g")
        with pytest.raises(RoutingError):
            fab.join("g", "unattached")

    def test_first_router_becomes_domain_root(self, fabric):
        _, fab = fabric
        assert fab.domains["east"].root == "re"

    def test_depth_follows_parent_chain(self, fabric):
        _, fab = fabric
        assert fab.routers["r0"].depth == 0
        assert fab.routers["re"].depth == 1
        assert fab.routers["re1"].depth == 2


class TestAnchorElection:
    def test_single_domain_anchor_is_local(self, fabric):
        _, fab = fabric
        fab.create_group("g")
        fab.join("g", "e0")
        fab.join("g", "e1")
        # both members hang off re1: no reason to climb higher
        assert fab.anchor("g") == "re1"

    def test_lca_transfer_on_cross_domain_join(self, fabric):
        _, fab = fabric
        fab.create_group("g")
        fab.join("g", "e0")
        assert fab.lca_transfers == 0
        fab.join("g", "w0")
        # membership now spans east+west: ownership moves to the LCA
        assert fab.anchor("g") == "r0"
        assert fab.lca_transfers == 1

    def test_anchor_returns_on_leave(self, fabric):
        _, fab = fabric
        fab.create_group("g")
        fab.join("g", "e0")
        fab.join("g", "w0")
        fab.leave("g", "w0")
        assert fab.anchor("g") == "re1"
        assert fab.lca_transfers == 2

    def test_empty_group_has_no_anchor(self, fabric):
        _, fab = fabric
        fab.create_group("g")
        assert fab.anchor("g") is None


class TestRib:
    def test_rib_lookup_returns_tree_neighbors(self, fabric):
        _, fab = fabric
        fab.create_group("g")
        for h in ("e0", "w0"):
            fab.join("g", h)
        assert fab.routers["r0"].rib_lookup("g") == ("re", "rw")
        assert fab.routers["re1"].rib_lookup("g") == ("e0", "re")

    def test_off_tree_router_has_no_hops(self, fabric):
        _, fab = fabric
        fab.create_group("g")
        fab.join("g", "e0")
        fab.join("g", "e1")
        assert fab.routers["rw1"].rib_lookup("g") == ()

    def test_rib_cache_invalidated_by_epoch(self, fabric):
        _, fab = fabric
        fab.create_group("g")
        fab.join("g", "e0")
        router = fab.routers["re1"]
        assert router.rib_lookup("g") == ("e0",)
        fab.join("g", "e1")  # rebuild bumps the epoch
        assert router.rib_lookup("g") == ("e0", "e1")

    def test_rib_is_bounded(self):
        sched = Scheduler()
        net = Network(sched, seed=0)
        fab = MulticastFabric(net, rib_cache_size=4)
        fab.add_domain("d")
        fab.add_router("r", "d")
        fab.attach_host("h", "r")
        for i in range(10):
            g = f"g{i}"
            fab.create_group(g)
            fab.join(g, "h")
            fab.routers["r"].rib_lookup(g)
        assert len(fab.routers["r"]._rib) <= 4


class TestPlans:
    def test_plan_cached_until_epoch_changes(self, fabric):
        _, fab = fabric
        fab.create_group("g")
        for h in ("e0", "w0"):
            fab.join("g", h)
        p1 = fab.plan("g", "e0")
        p2 = fab.plan("g", "e0")
        assert p1 is p2
        assert fab.plan_builds == 1
        fab.join("g", "e1")
        p3 = fab.plan("g", "e0")
        assert p3 is not p1
        assert fab.plan_builds == 2

    def test_plan_edges_parent_before_child(self, fabric):
        _, fab = fabric
        fab.create_group("g")
        for h in ("e0", "e1", "w0"):
            fab.join("g", h)
        plan = fab.plan("g", "e0")
        placed = {plan.root}
        for parent, child in plan.edges:
            assert parent in placed
            placed.add(child)
        assert {"e1", "w0"} <= placed

    def test_unknown_group_rejected(self, fabric):
        _, fab = fabric
        with pytest.raises(RoutingError):
            fab.plan("nope", "e0")


class TestCastDataPlane:
    def test_tree_cost_beats_flat(self, fabric):
        net, fab = fabric
        fab.create_group("g")
        members = ["e0", "e1", "w0", "w1"]
        for h in members:
            fab.join("g", h)
        for h in members:
            net.node(h).bind(9, lambda p: None)
        fab.cast("g", Packet("e0", 1, "g", 9, b"x"), [(h, 9) for h in members[1:]])
        tree_tx = net.packets_transmitted
        for h in members[1:]:
            net.send(Packet("e0", 1, h, 9, b"x"))
        flat_tx = net.packets_transmitted - tree_tx
        assert tree_tx < flat_tx

    def test_cast_counts_targets_as_logical_sends(self, fabric):
        net, fab = fabric
        fab.create_group("g")
        for h in ("e0", "w0"):
            fab.join("g", h)
        n = fab.cast("g", Packet("e0", 1, "g", 9, b"x"), [("w0", 9)])
        assert n == 1
        assert net.packets_sent == 1
        assert (
            net.packets_sent
            == net.packets_delivered + net.packets_dropped + net.packets_duplicated
        )


class TestRepair:
    def _group(self, fab):
        fab.create_group("g")
        for h in ("e0", "e1", "w0", "w1"):
            fab.join("g", h)
        return fab._group("g")

    def test_flap_of_tree_edge_triggers_repair(self, fabric):
        net, fab = fabric
        self._group(fab)
        assert fab.repairs == 0
        net.set_link_up("re", "r0", False)
        assert fab.repairs == 1
        # east is partitioned: its members regroup under a sub-anchor
        edges = fab.group_edges("g")
        assert frozenset(("e0", "re1")) in edges  # intra-partition edge kept
        assert frozenset(("re", "r0")) not in edges

    def test_flap_of_off_tree_link_is_ignored(self, fabric):
        net, fab = fabric
        self._group(fab)
        net.add_link("re1", "rw1")  # never part of the tree
        rebuilds = fab.rebuilds
        net.set_link_up("re1", "rw1", False)
        assert fab.repairs == 0
        assert fab.rebuilds == rebuilds

    def test_reroute_over_backup_link(self, fabric):
        net, fab = fabric
        self._group(fab)
        fab.connect("re1", "rw1", latency=0.01)  # backup cross-link
        net.set_link_up("re", "r0", False)
        # east can still reach the anchor over the backup: no partition
        state = fab._group("g")
        assert not state.degraded
        assert frozenset(("re1", "rw1")) in state.edges

    def test_heal_restores_canonical_tree(self, fabric):
        net, fab = fabric
        self._group(fab)
        before = fab.group_edges("g")
        net.set_link_up("re", "r0", False)
        net.set_link_up("re", "r0", True)
        assert fab.group_edges("g") == before
        assert fab.repairs == 2

    def test_partition_then_heal_end_to_end(self, fabric):
        net, fab = fabric
        from repro.network.multicast import MulticastGroup, MulticastSocket

        group = MulticastGroup(net, "239.0.0.1", 5000, fabric=fab)
        got = []
        socks = [
            MulticastSocket(
                net, h, group, on_receive=lambda d, s, h=h: got.append((h, d))
            )
            for h in ("e0", "e1", "w0", "w1")
        ]
        net.set_link_up("re", "r0", False)
        socks[0].send(b"p")
        net.scheduler.run()
        assert sorted(got) == [("e1", b"p")]  # east-only during partition
        got.clear()
        net.set_link_up("re", "r0", True)
        socks[0].send(b"q")
        net.scheduler.run()
        assert sorted(got) == [("e1", b"q"), ("w0", b"q"), ("w1", b"q")]


class TestStats:
    def test_stats_shape(self, fabric):
        _, fab = fabric
        stats = fab.stats()
        assert stats["routers"] == 5
        assert stats["domains"] == 3
        assert stats["hosts"] == 4
        assert all(isinstance(v, int) for v in stats.values())
