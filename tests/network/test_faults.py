"""Tests for the deterministic fault-injection subsystem."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.clock import Scheduler
from repro.network.faults import (
    AgentCrash,
    BurstLoss,
    ChaosController,
    Duplication,
    FaultPlan,
    FaultPlanError,
    LatencySpike,
    LinkFlap,
    Partition,
    Reordering,
)
from repro.network.simnet import Network, Packet


def line_net(seed=42):
    """a — b — c line topology with a receiver bound on every node."""
    net = Network(Scheduler(), seed=seed)
    for name in ("a", "b", "c"):
        net.add_node(name)
        net.node(name).bind(9, lambda p: None)
    net.add_link("a", "b", latency=0.001, bandwidth=1e6)
    net.add_link("b", "c", latency=0.001, bandwidth=1e6)
    return net


def blast(net, n=40, interval=0.1, src="a", dst="c"):
    """Schedule ``n`` periodic sends across the line."""
    for i in range(n):
        net.scheduler.call_at(
            i * interval, net.send, Packet(src, 1, dst, 9, bytes(50))
        )


class TestPlanValidation:
    def test_negative_start_rejected(self):
        with pytest.raises(FaultPlanError):
            LinkFlap("a", "b", start=-1.0, duration=1.0)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(FaultPlanError):
            LinkFlap("a", "b", start=0.0, duration=0.0)

    def test_self_flap_rejected(self):
        with pytest.raises(FaultPlanError):
            LinkFlap("a", "a", start=0.0, duration=1.0)

    def test_empty_partition_rejected(self):
        with pytest.raises(FaultPlanError):
            Partition((), start=0.0, duration=1.0)

    def test_bad_probability_rejected(self):
        with pytest.raises(FaultPlanError):
            Duplication(start=0.0, duration=1.0, probability=1.5)

    def test_horizon_spans_last_window(self):
        plan = FaultPlan(
            events=(
                LinkFlap("a", "b", start=1.0, duration=2.0),
                LatencySpike(start=5.0, duration=4.0, extra=0.01),
            )
        )
        assert plan.horizon == 9.0

    def test_needs_interceptor_only_for_packet_events(self):
        assert not FaultPlan(
            events=(LinkFlap("a", "b", start=0.0, duration=1.0),)
        ).needs_interceptor()
        assert FaultPlan(
            events=(Duplication(start=0.0, duration=1.0),)
        ).needs_interceptor()

    def test_events_sorted_regardless_of_input_order(self):
        early = LinkFlap("a", "b", start=1.0, duration=1.0)
        late = LinkFlap("b", "c", start=5.0, duration=1.0)
        assert FaultPlan(events=(late, early)).events == FaultPlan(
            events=(early, late)
        ).events


class TestLinkFlap:
    def test_flap_window_drops_then_heals(self):
        net = line_net()
        plan = FaultPlan(events=(LinkFlap("a", "b", start=1.0, duration=1.0),))
        ChaosController(net, plan, seed=0).install()
        blast(net, n=30, interval=0.1)
        net.scheduler.run()
        # 0.0..0.9 up (10), 1.0..1.9 down (10), 2.0..2.9 up (10)
        assert net.packets_dropped == 10
        assert net.packets_delivered == 20
        assert net.link("a", "b").up

    def test_overlapping_windows_refcount(self):
        net = line_net()
        plan = FaultPlan(
            events=(
                LinkFlap("a", "b", start=1.0, duration=2.0),
                LinkFlap("a", "b", start=2.0, duration=2.0),
            )
        )
        controller = ChaosController(net, plan, seed=0).install()
        down_at = {}

        def probe(t):
            down_at[t] = not net.link("a", "b").up

        for t in (0.5, 1.5, 2.5, 3.5, 4.5):
            net.scheduler.call_at(t, probe, t)
        net.scheduler.run()
        # down through the union of the windows, up outside it
        assert down_at == {0.5: False, 1.5: True, 2.5: True, 3.5: True, 4.5: False}
        assert controller.flaps == 2


class TestPartition:
    def test_partition_cuts_and_heals_crossing_links(self):
        net = line_net()
        plan = FaultPlan(events=(Partition(("c",), start=1.0, duration=1.0),))
        controller = ChaosController(net, plan, seed=0).install()
        blast(net, n=30, interval=0.1)
        net.scheduler.run()
        assert controller.partitions == 1
        assert controller.links_cut == 1  # only b–c crosses the cut
        assert net.packets_dropped == 10
        assert net.link("b", "c").up

    def test_partition_group_on_both_none_crossing(self):
        net = line_net()
        plan = FaultPlan(
            events=(Partition(("a", "b", "c"), start=1.0, duration=1.0),)
        )
        controller = ChaosController(net, plan, seed=0).install()
        net.scheduler.run()
        assert controller.links_cut == 0


class TestBurstLoss:
    def test_burst_loss_drops_and_restores(self):
        net = line_net()
        link = net.link("a", "b")
        plan = FaultPlan(
            events=(
                BurstLoss(
                    "a",
                    "b",
                    start=0.0,
                    duration=3.0,
                    p_good_to_bad=0.5,
                    p_bad_to_good=0.1,
                    loss_bad=1.0,
                ),
            )
        )
        ChaosController(net, plan, seed=1).install()
        blast(net, n=25, interval=0.1)
        net.scheduler.run()
        assert 0 < net.packets_dropped < 25
        assert link.loss_fn is None  # restored after the window
        assert link.loss == 0.0

    def test_burst_sequence_seed_dependent_but_replayable(self):
        def run(seed):
            net = line_net()
            plan = FaultPlan(
                events=(BurstLoss("a", "b", start=0.0, duration=3.0),)
            )
            ChaosController(net, plan, seed=seed).install()
            blast(net, n=25, interval=0.1)
            net.scheduler.run()
            return net.packets_dropped

        assert run(5) == run(5)


class TestInterceptorEvents:
    def test_duplication_conserves_and_counts(self):
        net = line_net()
        plan = FaultPlan(
            events=(Duplication(start=0.0, duration=10.0, probability=1.0),)
        )
        controller = ChaosController(net, plan, seed=0).install()
        blast(net, n=20, interval=0.1)
        net.scheduler.run()
        assert controller.duplicated == 20
        assert net.packets_duplicated == 20
        assert net.packets_delivered == 0  # every packet became a dup pair
        assert net.copies_delivered == 40
        assert net.packets_sent == (
            net.packets_delivered + net.packets_dropped + net.packets_duplicated
        )

    def test_latency_spike_delays_delivery(self):
        net = line_net()
        times = []
        net.node("c").bind(11, lambda p: times.append(net.scheduler.clock.now))
        plan = FaultPlan(events=(LatencySpike(start=0.0, duration=5.0, extra=0.5),))
        ChaosController(net, plan, seed=0).install()
        net.scheduler.call_at(1.0, net.send, Packet("a", 1, "c", 11, b"x"))
        net.scheduler.run()
        assert times and times[0] >= 1.5

    def test_scoped_spike_ignores_other_paths(self):
        net = line_net()
        times = []
        net.node("b").bind(11, lambda p: times.append(net.scheduler.clock.now))
        plan = FaultPlan(
            events=(
                LatencySpike(
                    start=0.0, duration=5.0, extra=0.5, links=(("b", "c"),)
                ),
            )
        )
        ChaosController(net, plan, seed=0).install()
        net.scheduler.call_at(1.0, net.send, Packet("a", 1, "b", 11, b"x"))
        net.scheduler.run()
        assert times and times[0] < 1.1  # a–b path never crosses b–c

    def test_empty_plan_installs_no_interceptor(self):
        net = line_net()
        ChaosController(net, FaultPlan(), seed=0).install()
        assert net.delivery_interceptor is None

    def test_second_interceptor_rejected(self):
        net = line_net()
        plan = FaultPlan(events=(Duplication(start=0.0, duration=1.0),))
        ChaosController(net, plan, seed=0).install()
        with pytest.raises(FaultPlanError):
            ChaosController(net, plan, seed=0).install()


class TestAgentCrash:
    def test_crash_requires_registered_agent(self):
        net = line_net()
        plan = FaultPlan(events=(AgentCrash("a", start=1.0, duration=1.0),))
        with pytest.raises(FaultPlanError):
            ChaosController(net, plan, seed=0).install()

    def test_crash_window_toggles_agent(self):
        from repro.network.udp import DatagramSocket
        from repro.snmp.agent import SnmpAgent
        from repro.snmp.mib import MibTree

        net = line_net()
        agent = SnmpAgent(DatagramSocket(net, "a"), MibTree())
        plan = FaultPlan(events=(AgentCrash("a", start=1.0, duration=1.0),))
        controller = ChaosController(net, plan, seed=0, agents={"a": agent}).install()
        alive_at = {}
        for t in (0.5, 1.5, 2.5):
            net.scheduler.call_at(t, lambda t=t: alive_at.__setitem__(t, agent.alive))
        net.scheduler.run()
        assert alive_at == {0.5: True, 1.5: False, 2.5: True}
        assert controller.crashes == 1 and controller.restarts == 1


def full_plan():
    return FaultPlan(
        events=(
            LinkFlap("a", "b", start=0.5, duration=0.4),
            Partition(("c",), start=1.0, duration=0.5),
            BurstLoss("b", "c", start=1.6, duration=0.6),
            Duplication(start=2.2, duration=0.6, probability=0.5),
            Reordering(start=2.4, duration=0.6, probability=0.5),
            LatencySpike(start=3.0, duration=0.5, extra=0.02),
        )
    )


def run_full(seed):
    net = line_net(seed=42)
    controller = ChaosController(net, full_plan(), seed=seed).install()
    blast(net, n=40, interval=0.1)
    net.scheduler.run()
    counters = (
        net.packets_sent,
        net.packets_delivered,
        net.packets_dropped,
        net.packets_duplicated,
        net.copies_delivered,
    )
    return counters, controller.report()


class TestDeterminism:
    def test_conservation_under_full_plan(self):
        (sent, delivered, dropped, duplicated, copies), report = run_full(seed=0)
        assert sent == delivered + dropped + duplicated
        assert copies >= delivered + duplicated
        assert report["events_started"] == report["events_ended"] == 6

    @pytest.mark.parametrize("seed", [0, 1, 7, 1234])
    def test_fixed_seed_replays_identically(self, seed):
        assert run_full(seed) == run_full(seed)

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        p_dup=st.floats(0.0, 1.0),
        p_reorder=st.floats(0.0, 1.0),
        flap_start=st.floats(0.0, 2.0),
    )
    def test_replay_determinism_property(self, seed, p_dup, p_reorder, flap_start):
        """Any plan + seed replays byte-identically and conserves packets."""
        plan = FaultPlan(
            events=(
                LinkFlap("a", "b", start=flap_start, duration=0.3),
                BurstLoss("b", "c", start=0.5, duration=1.0),
                Duplication(start=0.0, duration=4.0, probability=p_dup),
                Reordering(start=0.0, duration=4.0, probability=p_reorder),
            )
        )

        def run():
            net = line_net(seed=42)
            controller = ChaosController(net, plan, seed=seed).install()
            blast(net, n=30, interval=0.1)
            net.scheduler.run()
            return (
                net.packets_sent,
                net.packets_delivered,
                net.packets_dropped,
                net.packets_duplicated,
                net.copies_delivered,
            ), controller.report()

        first, second = run(), run()
        assert first == second
        sent, delivered, dropped, duplicated, _ = first[0]
        assert sent == delivered + dropped + duplicated


class TestUninstall:
    def test_uninstall_detaches_interceptor(self):
        net = line_net()
        plan = FaultPlan(events=(Duplication(start=0.0, duration=1.0),))
        controller = ChaosController(net, plan, seed=0).install()
        controller.uninstall()
        assert net.delivery_interceptor is None
