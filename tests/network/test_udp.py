"""Tests for datagram sockets."""

import pytest

from repro.network.clock import Scheduler
from repro.network.simnet import Network, NetworkError
from repro.network.udp import EPHEMERAL_BASE, DatagramSocket


@pytest.fixture
def net():
    sched = Scheduler()
    network = Network(sched, seed=0)
    network.add_node("a")
    network.add_node("b")
    network.add_link("a", "b", latency=0.001)
    return network


class TestBinding:
    def test_explicit_bind(self, net):
        s = DatagramSocket(net, "a")
        s.bind(100)
        assert s.port == 100

    def test_double_bind_rejected(self, net):
        s = DatagramSocket(net, "a")
        s.bind(100)
        with pytest.raises(NetworkError):
            s.bind(101)

    def test_port_collision_rejected(self, net):
        DatagramSocket(net, "a").bind(100)
        with pytest.raises(NetworkError):
            DatagramSocket(net, "a").bind(100)

    def test_same_port_different_hosts_ok(self, net):
        DatagramSocket(net, "a").bind(100)
        DatagramSocket(net, "b").bind(100)

    def test_ephemeral_allocation_skips_taken(self, net):
        s1 = DatagramSocket(net, "a")
        assert s1.bind_ephemeral() == EPHEMERAL_BASE
        s2 = DatagramSocket(net, "a")
        assert s2.bind_ephemeral() == EPHEMERAL_BASE + 1

    def test_close_releases_port(self, net):
        s = DatagramSocket(net, "a")
        s.bind(100)
        s.close()
        DatagramSocket(net, "a").bind(100)  # port reusable

    def test_closed_socket_rejects_ops(self, net):
        s = DatagramSocket(net, "a")
        s.close()
        with pytest.raises(NetworkError):
            s.sendto(b"x", ("b", 1))
        with pytest.raises(NetworkError):
            s.bind(5)


class TestSendReceive:
    def test_queue_mode_roundtrip(self, net):
        rx = DatagramSocket(net, "b")
        rx.bind(7)
        tx = DatagramSocket(net, "a")
        tx.sendto(b"ping", ("b", 7))
        net.scheduler.run()
        data, src = rx.recvfrom()
        assert data == b"ping"
        assert src == ("a", tx.port)

    def test_recvfrom_empty_returns_none(self, net):
        rx = DatagramSocket(net, "b")
        rx.bind(7)
        assert rx.recvfrom() is None

    def test_callback_mode(self, net):
        got = []
        rx = DatagramSocket(net, "b")
        rx.bind(7)
        rx.on_receive = lambda data, src: got.append((data, src))
        tx = DatagramSocket(net, "a")
        tx.sendto(b"x", ("b", 7))
        net.scheduler.run()
        assert got == [(b"x", ("a", tx.port))]
        assert rx.pending == 0  # callback consumed it

    def test_sendto_auto_binds_source(self, net):
        tx = DatagramSocket(net, "a")
        assert tx.port is None
        tx.sendto(b"x", ("b", 7))
        assert tx.port is not None

    def test_reply_path(self, net):
        server = DatagramSocket(net, "b")
        server.bind(7)
        server.on_receive = lambda data, src: server.sendto(b"pong:" + data, src)
        client = DatagramSocket(net, "a")
        client.bind_ephemeral()
        client.sendto(b"1", ("b", 7))
        net.scheduler.run()
        data, src = client.recvfrom()
        assert data == b"pong:1"
        assert src == ("b", 7)

    def test_counters(self, net):
        rx = DatagramSocket(net, "b")
        rx.bind(7)
        tx = DatagramSocket(net, "a")
        for _ in range(3):
            tx.sendto(b"x", ("b", 7))
        net.scheduler.run()
        assert tx.sent_datagrams == 3
        assert rx.received_datagrams == 3
        assert rx.pending == 3
