"""Tests for datagram sockets."""

import pytest

from repro.network.clock import Scheduler
from repro.network.simnet import Network, NetworkError, PortInUseError
from repro.network.udp import EPHEMERAL_BASE, EPHEMERAL_MAX, DatagramSocket


@pytest.fixture
def net():
    sched = Scheduler()
    network = Network(sched, seed=0)
    network.add_node("a")
    network.add_node("b")
    network.add_link("a", "b", latency=0.001)
    return network


class TestBinding:
    def test_explicit_bind(self, net):
        s = DatagramSocket(net, "a")
        s.bind(100)
        assert s.port == 100

    def test_double_bind_rejected(self, net):
        s = DatagramSocket(net, "a")
        s.bind(100)
        with pytest.raises(NetworkError):
            s.bind(101)

    def test_port_collision_rejected(self, net):
        DatagramSocket(net, "a").bind(100)
        with pytest.raises(NetworkError):
            DatagramSocket(net, "a").bind(100)

    def test_same_port_different_hosts_ok(self, net):
        DatagramSocket(net, "a").bind(100)
        DatagramSocket(net, "b").bind(100)

    def test_ephemeral_allocation_skips_taken(self, net):
        s1 = DatagramSocket(net, "a")
        assert s1.bind_ephemeral() == EPHEMERAL_BASE
        s2 = DatagramSocket(net, "a")
        assert s2.bind_ephemeral() == EPHEMERAL_BASE + 1

    def test_close_releases_port(self, net):
        s = DatagramSocket(net, "a")
        s.bind(100)
        s.close()
        DatagramSocket(net, "a").bind(100)  # port reusable

    def test_closed_socket_rejects_ops(self, net):
        s = DatagramSocket(net, "a")
        s.close()
        with pytest.raises(NetworkError):
            s.sendto(b"x", ("b", 1))
        with pytest.raises(NetworkError):
            s.bind(5)


class TestEphemeralChurn:
    """Regression: ephemeral allocation must not rescan from the base on
    every bind (O(N^2) churn) nor misread unrelated errors as conflicts."""

    def test_port_reused_after_close(self, net):
        s1 = DatagramSocket(net, "a")
        p1 = s1.bind_ephemeral()
        s1.close()
        # the hint has moved past p1, so reuse happens via wraparound —
        # simulate reaching the end of the range first
        net.node("a").ephemeral_hint = EPHEMERAL_MAX
        s2 = DatagramSocket(net, "a")
        assert s2.bind_ephemeral() == EPHEMERAL_MAX
        s3 = DatagramSocket(net, "a")
        assert s3.bind_ephemeral() == p1  # wrapped to the freed port

    def test_churn_does_not_rescan_from_base(self, net):
        """Open/close cycles keep advancing the hint: O(1) probes each."""
        node = net.node("a")
        for i in range(50):
            s = DatagramSocket(net, "a")
            port = s.bind_ephemeral()
            assert port == EPHEMERAL_BASE + i  # no rescan of freed ports
            s.close()
        assert node.ephemeral_hint == EPHEMERAL_BASE + 50

    def test_conflict_is_port_in_use_error(self, net):
        DatagramSocket(net, "a").bind(100)
        with pytest.raises(PortInUseError):
            DatagramSocket(net, "a").bind(100)

    def test_non_conflict_error_propagates(self, net, monkeypatch):
        """A NetworkError that isn't a port conflict must not be retried."""
        node = net.node("a")
        calls = []

        def failing_bind(port, handler):
            calls.append(port)
            raise NetworkError("interface wedged")

        monkeypatch.setattr(node, "bind", failing_bind)
        s = DatagramSocket(net, "a")
        with pytest.raises(NetworkError, match="interface wedged"):
            s.bind_ephemeral()
        assert len(calls) == 1  # no blind retry loop

    def test_exhaustion_raises(self, net):
        node = net.node("a")
        handler = lambda p: None
        for port in range(EPHEMERAL_BASE, EPHEMERAL_MAX + 1):
            node.bind(port, handler)
        with pytest.raises(NetworkError, match="exhausted"):
            DatagramSocket(net, "a").bind_ephemeral()


class TestSendReceive:
    def test_queue_mode_roundtrip(self, net):
        rx = DatagramSocket(net, "b")
        rx.bind(7)
        tx = DatagramSocket(net, "a")
        tx.sendto(b"ping", ("b", 7))
        net.scheduler.run()
        data, src = rx.recvfrom()
        assert data == b"ping"
        assert src == ("a", tx.port)

    def test_recvfrom_empty_returns_none(self, net):
        rx = DatagramSocket(net, "b")
        rx.bind(7)
        assert rx.recvfrom() is None

    def test_callback_mode(self, net):
        got = []
        rx = DatagramSocket(net, "b")
        rx.bind(7)
        rx.on_receive = lambda data, src: got.append((data, src))
        tx = DatagramSocket(net, "a")
        tx.sendto(b"x", ("b", 7))
        net.scheduler.run()
        assert got == [(b"x", ("a", tx.port))]
        assert rx.pending == 0  # callback consumed it

    def test_sendto_auto_binds_source(self, net):
        tx = DatagramSocket(net, "a")
        assert tx.port is None
        tx.sendto(b"x", ("b", 7))
        assert tx.port is not None

    def test_reply_path(self, net):
        server = DatagramSocket(net, "b")
        server.bind(7)
        server.on_receive = lambda data, src: server.sendto(b"pong:" + data, src)
        client = DatagramSocket(net, "a")
        client.bind_ephemeral()
        client.sendto(b"1", ("b", 7))
        net.scheduler.run()
        data, src = client.recvfrom()
        assert data == b"pong:1"
        assert src == ("b", 7)

    def test_counters(self, net):
        rx = DatagramSocket(net, "b")
        rx.bind(7)
        tx = DatagramSocket(net, "a")
        for _ in range(3):
            tx.sendto(b"x", ("b", 7))
        net.scheduler.run()
        assert tx.sent_datagrams == 3
        assert rx.received_datagrams == 3
        assert rx.pending == 3
