"""Tests for multicast group delivery."""

import pytest

from repro.network.clock import Scheduler
from repro.network.multicast import MulticastGroup, MulticastSocket
from repro.network.simnet import Network


@pytest.fixture
def fabric():
    sched = Scheduler()
    net = Network(sched, seed=0)
    net.add_node("sw")
    for name in ("a", "b", "c"):
        net.add_node(name)
        net.add_link(name, "sw", latency=0.001)
    group = MulticastGroup(net, "239.1.2.3", 5000)
    return net, group


def make_member(net, group, host, sink):
    return MulticastSocket(
        net, host, group, on_receive=lambda d, s, h=host: sink.append((h, d))
    )


class TestMembership:
    def test_members_listed_sorted(self, fabric):
        net, group = fabric
        for h in ("c", "a", "b"):
            MulticastSocket(net, h, group)
        hosts = [h for h, _ in group.members]
        assert hosts == ["a", "b", "c"]

    def test_leave_removes_member(self, fabric):
        net, group = fabric
        sock = MulticastSocket(net, "a", group)
        sock.leave()
        assert group.members == []

    def test_leave_stops_delivery(self, fabric):
        net, group = fabric
        got = []
        member = make_member(net, group, "b", got)
        sender = MulticastSocket(net, "a", group)
        member.leave()
        sender.send(b"x")
        net.scheduler.run()
        assert got == []


class TestFanOut:
    def test_all_members_except_sender_receive(self, fabric):
        net, group = fabric
        got = []
        socks = [make_member(net, group, h, got) for h in ("a", "b", "c")]
        socks[0].send(b"ev")
        net.scheduler.run()
        assert sorted(got) == [("b", b"ev"), ("c", b"ev")]

    def test_loopback_delivers_to_sender(self, fabric):
        net, group = fabric
        got = []
        sender = MulticastSocket(
            net, "a", group, on_receive=lambda d, s: got.append(d), loopback=True
        )
        sender.send(b"self")
        net.scheduler.run()
        assert got == [b"self"]

    def test_send_returns_member_count(self, fabric):
        net, group = fabric
        socks = [MulticastSocket(net, h, group) for h in ("a", "b", "c")]
        assert socks[0].send(b"x") == 2

    def test_unicast_side_channel(self, fabric):
        net, group = fabric
        got = []
        receiver = make_member(net, group, "b", got)
        sender = MulticastSocket(net, "a", group)
        sender.unicast(b"direct", (receiver.host, receiver.local_port))
        net.scheduler.run()
        assert got == [("b", b"direct")]

    def test_two_groups_isolated(self, fabric):
        net, group = fabric
        other = MulticastGroup(net, "239.9.9.9", 6000)
        got_a, got_b = [], []
        make_member(net, group, "b", got_a)
        make_member(net, other, "c", got_b)
        MulticastSocket(net, "a", group).send(b"g1")
        net.scheduler.run()
        assert got_a == [("b", b"g1")]
        assert got_b == []
