"""Tests for multicast group delivery."""

import pytest

from repro.network.clock import Scheduler
from repro.network.multicast import MulticastGroup, MulticastSocket
from repro.network.simnet import Network


@pytest.fixture
def fabric():
    sched = Scheduler()
    net = Network(sched, seed=0)
    net.add_node("sw")
    for name in ("a", "b", "c"):
        net.add_node(name)
        net.add_link(name, "sw", latency=0.001)
    group = MulticastGroup(net, "239.1.2.3", 5000)
    return net, group


def make_member(net, group, host, sink):
    return MulticastSocket(
        net, host, group, on_receive=lambda d, s, h=host: sink.append((h, d))
    )


class TestMembership:
    def test_members_listed_sorted(self, fabric):
        net, group = fabric
        for h in ("c", "a", "b"):
            MulticastSocket(net, h, group)
        hosts = [h for h, _ in group.members]
        assert hosts == ["a", "b", "c"]

    def test_leave_removes_member(self, fabric):
        net, group = fabric
        sock = MulticastSocket(net, "a", group)
        sock.leave()
        assert group.members == []

    def test_leave_stops_delivery(self, fabric):
        net, group = fabric
        got = []
        member = make_member(net, group, "b", got)
        sender = MulticastSocket(net, "a", group)
        member.leave()
        sender.send(b"x")
        net.scheduler.run()
        assert got == []


class TestFanOut:
    def test_all_members_except_sender_receive(self, fabric):
        net, group = fabric
        got = []
        socks = [make_member(net, group, h, got) for h in ("a", "b", "c")]
        socks[0].send(b"ev")
        net.scheduler.run()
        assert sorted(got) == [("b", b"ev"), ("c", b"ev")]

    def test_loopback_delivers_to_sender(self, fabric):
        net, group = fabric
        got = []
        sender = MulticastSocket(
            net, "a", group, on_receive=lambda d, s: got.append(d), loopback=True
        )
        sender.send(b"self")
        net.scheduler.run()
        assert got == [b"self"]

    def test_send_returns_member_count(self, fabric):
        net, group = fabric
        socks = [MulticastSocket(net, h, group) for h in ("a", "b", "c")]
        assert socks[0].send(b"x") == 2

    def test_unicast_side_channel(self, fabric):
        net, group = fabric
        got = []
        receiver = make_member(net, group, "b", got)
        sender = MulticastSocket(net, "a", group)
        sender.unicast(b"direct", (receiver.host, receiver.local_port))
        net.scheduler.run()
        assert got == [("b", b"direct")]

    def test_two_groups_isolated(self, fabric):
        net, group = fabric
        other = MulticastGroup(net, "239.9.9.9", 6000)
        got_a, got_b = [], []
        make_member(net, group, "b", got_a)
        make_member(net, other, "c", got_b)
        MulticastSocket(net, "a", group).send(b"g1")
        net.scheduler.run()
        assert got_a == [("b", b"g1")]
        assert got_b == []


class TestTelemetry:
    """Regression: multicast sends must show up in ``sent_datagrams``.

    The flat fan-out used to build raw ``Packet``s and call
    ``network.send`` directly, bypassing the sender's socket counter that
    host instrumentation exports — multicast traffic was invisible.
    """

    def test_flat_send_counts_on_sender_socket(self, fabric):
        net, group = fabric
        socks = [MulticastSocket(net, h, group) for h in ("a", "b", "c")]
        assert socks[0].sent_datagrams == 0
        socks[0].send(b"x")
        # flat mode: one unicast datagram per non-sender member
        assert socks[0].sent_datagrams == 2
        assert socks[1].sent_datagrams == 0

    def test_tree_send_counts_one_datagram(self):
        from repro.network.routing import MulticastFabric

        sched = Scheduler()
        net = Network(sched, seed=0)
        fab = MulticastFabric(net)
        fab.add_domain("d")
        fab.add_router("r", "d")
        for h in ("a", "b", "c"):
            fab.attach_host(h, "r")
        group = MulticastGroup(net, "239.1.2.3", 5000, fabric=fab)
        socks = [MulticastSocket(net, h, group) for h in ("a", "b", "c")]
        socks[0].send(b"x")
        # tree mode: one physical datagram leaves the NIC per group send
        assert socks[0].sent_datagrams == 1

    def test_received_counter_exposed(self, fabric):
        net, group = fabric
        socks = [MulticastSocket(net, h, group) for h in ("a", "b")]
        socks[0].send(b"x")
        net.scheduler.run()
        assert socks[1].received_datagrams == 1


class TestFabricBackedGroup:
    """MulticastGroup riding the routing fabric behind the same API."""

    @pytest.fixture
    def tree(self):
        from repro.network.routing import MulticastFabric

        sched = Scheduler()
        net = Network(sched, seed=0)
        fab = MulticastFabric(net)
        fab.add_domain("core")
        fab.add_router("r0", "core")
        fab.add_router("r1", "core", parent="r0")
        fab.add_router("r2", "core", parent="r0")
        for h in ("a", "b"):
            fab.attach_host(h, "r1")
        for h in ("c", "d"):
            fab.attach_host(h, "r2")
        group = MulticastGroup(net, "239.1.2.3", 5000, fabric=fab)
        return net, fab, group

    def test_same_api_same_delivery(self, tree):
        net, fab, group = tree
        got = []
        socks = [make_member(net, group, h, got) for h in ("a", "b", "c", "d")]
        assert socks[0].send(b"ev") == 3
        net.scheduler.run()
        assert sorted(got) == [("b", b"ev"), ("c", b"ev"), ("d", b"ev")]

    def test_leave_prunes_tree(self, tree):
        net, fab, group = tree
        socks = [MulticastSocket(net, h, group) for h in ("a", "b", "c", "d")]
        before = fab.group_edges("239.1.2.3")
        for s in socks[2:]:
            s.leave()
        after = fab.group_edges("239.1.2.3")
        assert frozenset(("c", "r2")) in before
        assert frozenset(("c", "r2")) not in after
        assert len(after) < len(before)
        assert fab.prunes > 0

    def test_two_sockets_one_host_refcounted(self, tree):
        net, fab, group = tree
        s1 = MulticastSocket(net, "a", group)
        s2 = MulticastSocket(net, "a", group)
        MulticastSocket(net, "c", group)
        s1.leave()
        # "a" still has a live socket: its access edge must survive
        assert frozenset(("a", "r1")) in fab.group_edges("239.1.2.3")
        s2.leave()
        assert frozenset(("a", "r1")) not in fab.group_edges("239.1.2.3")
