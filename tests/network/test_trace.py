"""Tests for the packet tracer."""

import pytest

from repro.network.clock import Scheduler
from repro.network.simnet import Network, Packet
from repro.network.trace import PacketTracer


@pytest.fixture
def fabric():
    sched = Scheduler()
    net = Network(sched, seed=4)
    for n in ("a", "b", "c"):
        net.add_node(n)
    net.add_link("a", "b", latency=0.001)
    net.add_link("b", "c", latency=0.001, loss=0.5)
    return sched, net


class TestTracing:
    def test_records_and_totals(self, fabric):
        _, net = fabric
        tracer = PacketTracer(net)
        tracer.attach()
        net.send(Packet("a", 1, "b", 9, b"hello"))
        net.send(Packet("a", 1, "b", 9, b"world!!"))
        assert tracer.total_packets == 2
        assert len(tracer.records) == 2
        assert tracer.records[0].size == 5 + 28
        assert tracer.records[0].delivered

    def test_drops_recorded(self, fabric):
        _, net = fabric
        tracer = PacketTracer(net)
        tracer.attach()
        for _ in range(100):
            net.send(Packet("a", 1, "c", 9, b"x"))
        flow = tracer.flows[("a", "c", 9)]
        assert flow.packets == 100
        assert 20 <= flow.dropped <= 80
        assert flow.loss_rate == flow.dropped / 100

    def test_detach_restores(self, fabric):
        _, net = fabric
        tracer = PacketTracer(net)
        tracer.attach()
        net.send(Packet("a", 1, "b", 9, b"x"))
        tracer.detach()
        net.send(Packet("a", 1, "b", 9, b"y"))
        assert tracer.total_packets == 1

    def test_attach_idempotent(self, fabric):
        _, net = fabric
        tracer = PacketTracer(net)
        tracer.attach()
        tracer.attach()
        net.send(Packet("a", 1, "b", 9, b"x"))
        assert tracer.total_packets == 1  # not double-counted

    def test_capacity_bounds_records_not_flows(self, fabric):
        _, net = fabric
        tracer = PacketTracer(net, capacity=3)
        tracer.attach()
        for _ in range(10):
            net.send(Packet("a", 1, "b", 9, b"x"))
        assert len(tracer.records) == 3
        assert tracer.flows[("a", "b", 9)].packets == 10

    def test_flow_times(self, fabric):
        sched, net = fabric
        tracer = PacketTracer(net)
        tracer.attach()
        net.send(Packet("a", 1, "b", 9, b"x"))
        sched.run_until(5.0)
        net.send(Packet("a", 1, "b", 9, b"y"))
        flow = tracer.flows[("a", "b", 9)]
        assert flow.first_time == 0.0
        assert flow.last_time == 5.0


class TestAnalysis:
    def test_top_talkers(self, fabric):
        _, net = fabric
        tracer = PacketTracer(net)
        tracer.attach()
        for _ in range(5):
            net.send(Packet("a", 1, "b", 9, b"x" * 100))
        net.send(Packet("b", 1, "a", 9, b"y"))
        talkers = tracer.top_talkers()
        assert talkers[0][0] == "a"
        assert talkers[0][1] > talkers[1][1]

    def test_flows_from(self, fabric):
        _, net = fabric
        tracer = PacketTracer(net)
        tracer.attach()
        net.send(Packet("a", 1, "b", 9, b"x"))
        net.send(Packet("b", 1, "a", 7, b"y"))
        assert set(tracer.flows_from("a")) == {("a", "b", 9)}

    def test_summary_renders(self, fabric):
        _, net = fabric
        tracer = PacketTracer(net)
        tracer.attach()
        net.send(Packet("a", 1, "b", 9, b"x"))
        text = tracer.summary()
        assert "1 packets" in text and "a -> b:9" in text

    def test_whole_deployment_trace(self):
        """Tracer composes with the full framework."""
        from repro.core.framework import CollaborationFramework

        fw = CollaborationFramework("traced")
        tracer = PacketTracer(fw.network)
        tracer.attach()
        a = fw.add_wired_client("alice")
        b = fw.add_wired_client("bob")
        a.join()
        b.join()
        a.send_chat("hello")
        fw.run_for(1.0)
        assert tracer.total_packets >= 3  # joins + chat
        assert tracer.top_talkers()[0][0] in ("alice", "bob")

    def test_invalid_capacity(self, fabric):
        _, net = fabric
        with pytest.raises(ValueError):
            PacketTracer(net, capacity=0)
