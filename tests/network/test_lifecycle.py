"""Lifecycle regression tests: idempotent close and use-after-close guards.

These pin the RES-family fixes: every transport-like object in the tree
must tolerate a second ``close()`` (RES002) and refuse sends after it
(RES003) instead of silently writing into a dead fabric.
"""

import pytest

from repro.core.profiles import ClientProfile
from repro.messaging.message import SemanticMessage
from repro.messaging.transport import LoopbackUDP, SemanticEndpoint, SimTransport
from repro.network.clock import Scheduler
from repro.network.multicast import MulticastGroup, MulticastSocket
from repro.network.simnet import Network, NetworkError
from repro.network.udp import DatagramSocket


@pytest.fixture
def fabric():
    sched = Scheduler()
    net = Network(sched, seed=0)
    net.add_node("sw")
    for name in ("a", "b"):
        net.add_node(name)
        net.add_link(name, "sw", latency=0.001)
    group = MulticastGroup(net, "239.9.9.9", 5000)
    return net, group


class TestDatagramSocketLifecycle:
    def test_close_is_idempotent(self, fabric):
        net, _ = fabric
        sock = DatagramSocket(net, "a")
        sock.bind(7)
        sock.close()
        sock.close()

    def test_use_after_close_raises(self, fabric):
        net, _ = fabric
        sock = DatagramSocket(net, "a")
        sock.bind(7)
        sock.close()
        with pytest.raises(NetworkError):
            sock.sendto(b"x", ("b", 7))
        with pytest.raises(NetworkError):
            sock.bind(8)
        with pytest.raises(NetworkError):
            sock.bind_ephemeral()


class TestMulticastSocketLifecycle:
    def test_leave_is_idempotent(self, fabric):
        net, group = fabric
        sock = MulticastSocket(net, "a", group)
        sock.leave()
        sock.leave()
        assert sock.closed
        assert group.members == []

    def test_close_aliases_leave(self, fabric):
        net, group = fabric
        sock = MulticastSocket(net, "a", group)
        sock.close()
        assert sock.closed
        assert group.members == []
        sock.close()  # still idempotent through the alias

    def test_send_after_leave_raises(self, fabric):
        net, group = fabric
        sock = MulticastSocket(net, "a", group)
        MulticastSocket(net, "b", group)
        sock.leave()
        with pytest.raises(NetworkError):
            sock.send(b"x")
        with pytest.raises(NetworkError):
            sock.unicast(b"x", ("b", 5000))


class TestSimTransportLifecycle:
    def test_send_after_close_raises(self, fabric):
        net, group = fabric
        t = SimTransport(net, "a", group)
        t.close()
        t.close()
        with pytest.raises(RuntimeError):
            t.send(b"x")
        with pytest.raises(RuntimeError):
            t.unicast(b"x", ("b", 5000))


class TestLoopbackUDPLifecycle:
    def test_send_after_close_raises(self):
        try:
            t = LoopbackUDP()
        except OSError:
            pytest.skip("loopback UDP unavailable")
        t.close()
        t.close()
        with pytest.raises(RuntimeError):
            t.send(b"x")
        with pytest.raises(RuntimeError):
            t.unicast(b"x", ("127.0.0.1", 9))


class TestSemanticEndpointLifecycle:
    def test_publish_after_close_raises(self, fabric):
        net, group = fabric
        ep = SemanticEndpoint(
            net, "a", group, ClientProfile("a", {}), lambda d: None
        )
        ep.close()
        ep.close()
        msg = SemanticMessage.create("a", "true")
        with pytest.raises(RuntimeError):
            ep.publish(msg)
        with pytest.raises(RuntimeError):
            ep.unicast(msg, ("b", 5000))
