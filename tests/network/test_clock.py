"""Tests for the discrete-event scheduler core."""

import pytest

from repro.network.clock import Scheduler, SimulationError


class TestSimClock:
    def test_starts_at_zero(self):
        assert Scheduler().clock.now == 0.0

    def test_custom_start(self):
        assert Scheduler(start=5.0).clock.now == 5.0

    def test_clock_advances_with_events(self):
        s = Scheduler()
        s.call_after(2.5, lambda: None)
        s.run()
        assert s.clock.now == 2.5

    def test_clock_never_moves_backwards(self):
        s = Scheduler()
        s.call_at(1.0, lambda: None)
        s.run()
        with pytest.raises(SimulationError):
            s.call_at(0.5, lambda: None)


class TestScheduling:
    def test_events_fire_in_time_order(self):
        s = Scheduler()
        fired = []
        s.call_after(3.0, fired.append, "c")
        s.call_after(1.0, fired.append, "a")
        s.call_after(2.0, fired.append, "b")
        s.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        s = Scheduler()
        fired = []
        for tag in ("first", "second", "third"):
            s.call_at(1.0, fired.append, tag)
        s.run()
        assert fired == ["first", "second", "third"]

    def test_negative_delay_rejected(self):
        s = Scheduler()
        with pytest.raises(SimulationError):
            s.call_after(-0.1, lambda: None)

    def test_non_finite_time_rejected(self):
        s = Scheduler()
        with pytest.raises(SimulationError):
            s.call_at(float("inf"), lambda: None)
        with pytest.raises(SimulationError):
            s.call_at(float("nan"), lambda: None)

    def test_cancelled_event_does_not_fire(self):
        s = Scheduler()
        fired = []
        ev = s.call_after(1.0, fired.append, "x")
        ev.cancel()
        s.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        s = Scheduler()
        ev = s.call_after(1.0, lambda: None)
        ev.cancel()
        ev.cancel()
        assert s.run() == 0

    def test_callback_args_passed(self):
        s = Scheduler()
        got = []
        s.call_after(0.1, lambda a, b: got.append((a, b)), 1, "two")
        s.run()
        assert got == [(1, "two")]

    def test_events_scheduled_during_run(self):
        s = Scheduler()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                s.call_after(1.0, chain, n + 1)

        s.call_after(1.0, chain, 1)
        s.run()
        assert fired == [1, 2, 3]
        assert s.clock.now == 3.0


class TestRunModes:
    def test_step_returns_false_when_empty(self):
        assert Scheduler().step() is False

    def test_run_returns_event_count(self):
        s = Scheduler()
        for i in range(5):
            s.call_after(i * 0.1, lambda: None)
        assert s.run() == 5

    def test_run_until_leaves_future_events(self):
        s = Scheduler()
        fired = []
        s.call_after(1.0, fired.append, "early")
        s.call_after(5.0, fired.append, "late")
        s.run_until(2.0)
        assert fired == ["early"]
        assert s.clock.now == 2.0
        assert s.pending == 1

    def test_run_until_boundary_inclusive(self):
        s = Scheduler()
        fired = []
        s.call_after(2.0, fired.append, "edge")
        s.run_until(2.0)
        assert fired == ["edge"]

    def test_run_for_relative(self):
        s = Scheduler(start=10.0)
        s.run_for(3.0)
        assert s.clock.now == 13.0

    def test_runaway_guard(self):
        s = Scheduler()

        def forever():
            s.call_after(0.001, forever)

        s.call_after(0.001, forever)
        with pytest.raises(SimulationError):
            s.run(max_events=100)

    def test_pending_counts_uncancelled(self):
        s = Scheduler()
        ev1 = s.call_after(1.0, lambda: None)
        s.call_after(2.0, lambda: None)
        ev1.cancel()
        assert s.pending == 1
