"""Cross-cutting property-based tests on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.policies import StepPolicy
from repro.core.state import StateEntry, StateRepository
from repro.media.images import collaboration_scene
from repro.media.progressive import ProgressiveImage
from repro.snmp.ber import Gauge32
from repro.snmp.mib import MibAccessError, MibTree
from repro.snmp.oids import OID


class TestMibTraversalProperties:
    @settings(max_examples=40)
    @given(
        st.sets(
            st.lists(st.integers(0, 9), min_size=3, max_size=6).map(
                lambda arcs: (1, 3) + tuple(arcs)
            ),
            min_size=1,
            max_size=25,
        )
    )
    def test_getnext_walk_visits_all_in_order(self, arc_sets):
        """GETNEXT from the root visits every binding exactly once, in
        lexicographic OID order — the protocol's traversal contract."""
        tree = MibTree()
        oids = sorted(OID(a) for a in arc_sets)
        for i, oid in enumerate(oids):
            tree.register_scalar(oid, Gauge32(i))
        visited = []
        current = OID("1.3")
        while True:
            try:
                current, _ = tree.get_next(current)
            except MibAccessError:
                break
            visited.append(current)
        assert visited == oids

    @settings(max_examples=40)
    @given(st.lists(st.integers(0, 100), min_size=2, max_size=8, unique=True))
    def test_oid_order_matches_arc_tuples(self, arcs):
        oids = [OID((1, 3, a)) for a in arcs]
        assert sorted(oids) == [OID((1, 3, a)) for a in sorted(arcs)]


class TestStepPolicyProperties:
    @settings(max_examples=40)
    @given(
        st.lists(
            st.tuples(st.integers(0, 1000), st.integers(0, 32)),
            min_size=1,
            max_size=6,
            unique_by=lambda t: t[0],
        ),
        st.integers(0, 32),
        st.floats(-10, 1010, allow_nan=False),
    )
    def test_piecewise_constant_and_total(self, raw_bps, floor, x):
        # integer bounds keep the right-continuity probe (bound - 1e-9)
        # inside the intended band
        bps = sorted(raw_bps)
        policy = StepPolicy("p", "packets", bps, floor=floor)
        value = policy.decide(x)
        legal = {v for _, v in bps} | {float(floor)}
        assert value in legal
        # right-continuity at the bound: at exactly an upper bound the
        # *next* band applies
        for bound, v in bps:
            assert policy.decide(bound - 1e-9) == v

    @settings(max_examples=30)
    @given(st.floats(0, 200, allow_nan=False), st.floats(0, 50, allow_nan=False))
    def test_default_policies_never_increase_with_load(self, x, dx):
        from repro.core.policies import default_cpu_load_policy

        p = default_cpu_load_policy()
        assert p.decide(x) >= p.decide(x + dx)


class TestLwwConvergenceProperty:
    @settings(max_examples=40)
    @given(
        st.lists(
            st.tuples(
                st.integers(1, 3),                      # version
                st.floats(0, 10, allow_nan=False),      # timestamp
                st.sampled_from(["alice", "bob", "carol"]),
            ),
            min_size=1,
            max_size=8,
            unique=True,  # an author never reuses a (version, timestamp)
        ),
        st.randoms(use_true_random=False),
    )
    def test_replicas_converge_for_any_delivery_order(self, updates, rng):
        """N replicas receiving the same update set in different orders
        end with the same winner — the substrate's eventual-consistency
        contract (given each author's clock ticks between its updates)."""
        entries = [
            StateEntry("obj", f"v{i}", v, t, a)
            for i, (v, t, a) in enumerate(updates)
        ]
        winners = []
        for _ in range(4):
            repo = StateRepository()
            shuffled = entries[:]
            rng.shuffle(shuffled)
            for e in shuffled:
                repo.apply_remote(e)
            winners.append(repo.get("obj").value)
        assert len(set(winners)) == 1


class TestProgressivePartitionProperty:
    @settings(max_examples=10, deadline=None)
    @given(st.sampled_from([1, 2, 3, 5, 8, 16, 31]))
    def test_packet_bits_partition_stream(self, n_packets):
        prog = ProgressiveImage(
            collaboration_scene(32, 32), n_packets=n_packets, target_bpp=2.0
        )
        pkts = prog.packets()
        assert len(pkts) == n_packets
        assert sum(p.n_bits for p in pkts) == prog.total_bits
        # indices are 0..n-1 exactly once
        assert sorted(p.index for p in pkts) == list(range(n_packets))

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 16), st.integers(0, 16))
    def test_more_packets_never_lower_quality(self, k1, k2):
        prog = ProgressiveImage(
            collaboration_scene(32, 32), n_packets=16, target_bpp=2.0
        )
        lo, hi = sorted((k1, k2))
        r_lo = prog.report(lo)
        r_hi = prog.report(hi)
        assert r_hi.bits_used >= r_lo.bits_used
        if r_lo.psnr_db == r_lo.psnr_db and r_hi.psnr_db == r_hi.psnr_db:
            assert r_hi.psnr_db >= r_lo.psnr_db - 0.75
