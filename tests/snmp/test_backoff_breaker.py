"""Retry spacing, exponential backoff, and the per-agent circuit breaker."""

import pytest

from repro.network.clock import Scheduler
from repro.network.simnet import Network
from repro.network.udp import DatagramSocket
from repro.snmp.agent import SnmpAgent
from repro.snmp.ber import Gauge32
from repro.snmp.errors import SnmpCircuitOpen, SnmpTimeout
from repro.snmp.manager import CircuitBreaker, SnmpManager
from repro.snmp.mib import MibTree
from repro.snmp.oids import TASSL


def build(agent_present=True, **mgr_kwargs):
    sched = Scheduler()
    net = Network(sched, seed=1)
    net.add_node("mgr")
    net.add_node("host1")
    net.add_link("mgr", "host1", latency=0.002, bandwidth=1e6)
    agent = None
    if agent_present:
        tree = MibTree()
        tree.register_scalar(TASSL.hostCpuLoad, Gauge32(42))
        agent = SnmpAgent(DatagramSocket(net, "host1"), tree)
    mgr = SnmpManager(DatagramSocket(net, "mgr"), sched, **mgr_kwargs)
    return sched, net, agent, mgr


class TestRetrySpacing:
    """Regression: a drained event queue must not burn all retries at one
    virtual instant — the original loop broke out of the wait when
    ``step()`` returned False, so every attempt fired at the same time."""

    def test_drained_queue_attempts_advance_the_clock(self):
        sched, _, _, mgr = build(agent_present=False, timeout=0.5, retries=3)
        with pytest.raises(SnmpTimeout):
            mgr.get("host1", [TASSL.hostCpuLoad])
        times = mgr.last_attempt_times
        assert len(times) == 4
        deltas = [b - a for a, b in zip(times, times[1:])]
        assert all(d > 0 for d in deltas), f"attempts not spaced: {times}"
        # exponential: each inter-attempt gap strictly exceeds the last
        # (multiplier 2.0 dominates the ±10% jitter band)
        assert all(b > a for a, b in zip(deltas, deltas[1:])), deltas

    def test_clock_past_all_timeouts_after_failure(self):
        sched, _, _, mgr = build(agent_present=False, timeout=0.5, retries=2)
        with pytest.raises(SnmpTimeout):
            mgr.get("host1", [TASSL.hostCpuLoad])
        # 3 attempts × 0.5 timeout + 2 backoff sleeps ≥ 1.5 virtual seconds
        assert sched.clock.now >= 1.5

    def test_backoff_delay_deterministic_and_bounded(self):
        _, _, _, mgr = build(timeout=1.0)
        d1 = mgr._backoff_delay(17, 0)
        d2 = mgr._backoff_delay(17, 0)
        assert d1 == d2  # pure function of (request_id, attempt)
        assert d1 != mgr._backoff_delay(18, 0)  # decorrelated across requests
        for attempt in range(12):
            assert mgr._backoff_delay(5, attempt) <= mgr.backoff_max * 1.1

    def test_zero_backoff_base_restores_legacy_spacing(self):
        _, _, _, mgr = build(backoff_base=0.0)
        assert mgr._backoff_delay(1, 0) == 0.0

    def test_successful_request_single_attempt(self):
        _, _, _, mgr = build()
        assert mgr.get_scalar("host1", TASSL.hostCpuLoad).value == 42
        assert len(mgr.last_attempt_times) == 1


class TestCircuitBreaker:
    def test_opens_after_threshold_and_fails_fast(self):
        sched, _, _, mgr = build(
            agent_present=False,
            timeout=0.2,
            retries=0,
            breaker_threshold=2,
            breaker_cooldown=5.0,
        )
        for _ in range(2):
            with pytest.raises(SnmpTimeout):
                mgr.get("host1", [TASSL.hostCpuLoad])
        assert mgr.breaker_state("host1") == "open"
        sent_before = mgr.requests_sent
        with pytest.raises(SnmpCircuitOpen) as ei:
            mgr.get("host1", [TASSL.hostCpuLoad])
        assert mgr.requests_sent == sent_before  # nothing hit the wire
        assert mgr.fast_failures == 1
        assert ei.value.agent == ("host1", 161)
        assert ei.value.retry_at > sched.clock.now

    def test_half_open_probe_after_cooldown_then_close_on_success(self):
        sched, net, _, mgr = build(
            agent_present=False,
            timeout=0.2,
            retries=0,
            breaker_threshold=1,
            breaker_cooldown=1.0,
        )
        with pytest.raises(SnmpTimeout):
            mgr.get("host1", [TASSL.hostCpuLoad])
        assert mgr.breaker_state("host1") == "open"
        # bring the agent up while the breaker cools down
        tree = MibTree()
        tree.register_scalar(TASSL.hostCpuLoad, Gauge32(7))
        SnmpAgent(DatagramSocket(net, "host1"), tree)
        sched.call_at(sched.clock.now + 1.5, lambda: None)
        sched.run()
        assert mgr.breaker_state("host1") == "half-open"
        assert mgr.get_scalar("host1", TASSL.hostCpuLoad).value == 7
        assert mgr.breaker_state("host1") == "closed"

    def test_failed_probe_doubles_cooldown_capped(self):
        breaker = CircuitBreaker(threshold=1, cooldown=2.0, max_cooldown=5.0)
        breaker.record_failure(now=0.0)          # trips: open until 2.0
        assert breaker.open_until == 2.0
        assert breaker.admit(2.5)                # half-open probe
        breaker.record_failure(now=2.5)          # probe fails: cooldown 4.0
        assert breaker.open_until == 6.5
        assert breaker.admit(7.0)
        breaker.record_failure(now=7.0)          # capped at max_cooldown 5.0
        assert breaker.open_until == 12.0
        assert breaker.opens == 3

    def test_success_resets_cooldown_and_failures(self):
        breaker = CircuitBreaker(threshold=2, cooldown=1.0, max_cooldown=8.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.1)
        assert breaker.is_open
        assert breaker.admit(1.5)
        breaker.record_success()
        assert not breaker.is_open
        assert breaker._current_cooldown == 1.0

    def test_threshold_zero_disables_breaker(self):
        _, _, _, mgr = build(
            agent_present=False, timeout=0.1, retries=0, breaker_threshold=0
        )
        for _ in range(6):
            with pytest.raises(SnmpTimeout):
                mgr.get("host1", [TASSL.hostCpuLoad])
        assert mgr.fast_failures == 0  # never fails fast

    def test_breakers_are_per_agent(self):
        sched, net, _, mgr = build(
            agent_present=True, timeout=0.2, retries=0, breaker_threshold=1
        )
        net.add_node("host2")
        net.add_link("mgr", "host2", latency=0.002, bandwidth=1e6)
        with pytest.raises(SnmpTimeout):
            mgr.get("host2", [TASSL.hostCpuLoad])  # host2 has no agent
        assert mgr.breaker_state("host2") == "open"
        assert mgr.breaker_state("host1") == "closed"
        assert mgr.get_scalar("host1", TASSL.hostCpuLoad).value == 42
