"""Tests for the BER codec, including hypothesis round-trips."""

import pytest
from hypothesis import given, strategies as st

from repro.snmp.ber import (
    BerError,
    Counter32,
    Counter64,
    EndOfMibView,
    Gauge32,
    Integer,
    IpAddress,
    NoSuchInstance,
    NoSuchObject,
    Null,
    ObjectIdentifierValue,
    OctetString,
    Sequence,
    TaggedPdu,
    TimeTicks,
    decode,
    decode_length,
    decode_oid_body,
    encode,
    encode_length,
    encode_oid_body,
)


class TestLength:
    def test_short_form(self):
        assert encode_length(0) == b"\x00"
        assert encode_length(127) == b"\x7f"

    def test_long_form(self):
        assert encode_length(128) == b"\x81\x80"
        assert encode_length(65535) == b"\x82\xff\xff"

    def test_negative_rejected(self):
        with pytest.raises(BerError):
            encode_length(-1)

    def test_indefinite_rejected(self):
        with pytest.raises(BerError):
            decode_length(b"\x80", 0)

    @given(st.integers(min_value=0, max_value=2**24))
    def test_roundtrip(self, n):
        data = encode_length(n)
        value, offset = decode_length(data, 0)
        assert value == n
        assert offset == len(data)


class TestInteger:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, b"\x02\x01\x00"),
            (127, b"\x02\x01\x7f"),
            (128, b"\x02\x02\x00\x80"),
            (-1, b"\x02\x01\xff"),
            (-129, b"\x02\x02\xff\x7f"),
            (256, b"\x02\x02\x01\x00"),
        ],
    )
    def test_known_encodings(self, value, expected):
        assert encode(Integer(value)) == expected

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_roundtrip(self, v):
        decoded, _ = decode(encode(Integer(v)))
        assert decoded == Integer(v)


class TestUnsigned:
    def test_gauge_range_checked(self):
        with pytest.raises(BerError):
            Gauge32(-1)
        with pytest.raises(BerError):
            Gauge32(2**32)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_counter32_roundtrip(self, v):
        decoded, _ = decode(encode(Counter32(v)))
        assert decoded == Counter32(v)

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_counter64_roundtrip(self, v):
        decoded, _ = decode(encode(Counter64(v)))
        assert decoded == Counter64(v)

    def test_high_bit_value_gets_pad_octet(self):
        # 0x80000000 must not decode as negative
        decoded, _ = decode(encode(Gauge32(0x80000000)))
        assert decoded.value == 0x80000000

    def test_timeticks_roundtrip(self):
        decoded, _ = decode(encode(TimeTicks(360000)))
        assert decoded == TimeTicks(360000)


class TestOctetString:
    @given(st.binary(max_size=2048))
    def test_roundtrip(self, raw):
        decoded, _ = decode(encode(OctetString(raw)))
        assert decoded == OctetString(raw)

    def test_text_helper(self):
        assert OctetString("héllo".encode()).text() == "héllo"


class TestOid:
    def test_known_encoding(self):
        # 1.3.6.1.2.1 -> 2b 06 01 02 01
        assert encode_oid_body((1, 3, 6, 1, 2, 1)) == b"\x2b\x06\x01\x02\x01"

    def test_multibyte_arc(self):
        # arc 840 -> 0x86 0x48
        body = encode_oid_body((1, 2, 840))
        assert body == b"\x2a\x86\x48"
        assert decode_oid_body(body) == (1, 2, 840)

    def test_short_oid_rejected(self):
        with pytest.raises(BerError):
            encode_oid_body((1,))

    def test_truncated_multibyte_rejected(self):
        with pytest.raises(BerError):
            decode_oid_body(b"\x2a\x86")  # continuation bit set at end

    @given(
        st.tuples(
            st.integers(0, 2),
            st.integers(0, 39),
        ),
        st.lists(st.integers(0, 2**28), max_size=10),
    )
    def test_roundtrip(self, head, tail):
        arcs = head + tuple(tail)
        decoded, _ = decode(encode(ObjectIdentifierValue(arcs)))
        assert decoded.arcs == arcs


class TestIpAddress:
    def test_from_string(self):
        assert str(IpAddress.from_string("10.0.0.1")) == "10.0.0.1"

    def test_bad_string(self):
        with pytest.raises(BerError):
            IpAddress.from_string("256.1.1.1")
        with pytest.raises(BerError):
            IpAddress.from_string("1.2.3")

    def test_wrong_length_rejected(self):
        with pytest.raises(BerError):
            IpAddress(b"\x01\x02")

    def test_roundtrip(self):
        decoded, _ = decode(encode(IpAddress(b"\xc0\xa8\x01\x02")))
        assert str(decoded) == "192.168.1.2"


class TestConstructed:
    def test_sequence_roundtrip(self):
        seq = Sequence((Integer(1), OctetString(b"x"), Null()))
        decoded, _ = decode(encode(seq))
        assert decoded == seq

    def test_nested_sequence(self):
        inner = Sequence((Integer(5),))
        outer = Sequence((inner, inner))
        decoded, _ = decode(encode(outer))
        assert decoded == outer

    def test_pdu_roundtrip(self):
        pdu = TaggedPdu(0xA0, (Integer(1), Integer(0), Integer(0), Sequence(())))
        decoded, _ = decode(encode(pdu))
        assert decoded == pdu
        assert decoded.pdu_kind == 0

    def test_varbind_exceptions(self):
        for exc in (NoSuchObject(), NoSuchInstance(), EndOfMibView()):
            decoded, _ = decode(encode(exc))
            assert decoded == exc


class TestMalformed:
    def test_truncated_tag(self):
        with pytest.raises(BerError):
            decode(b"")

    def test_truncated_body(self):
        with pytest.raises(BerError):
            decode(b"\x02\x05\x01")

    def test_unknown_tag(self):
        with pytest.raises(BerError):
            decode(b"\x1f\x01\x00")

    def test_empty_integer_body(self):
        with pytest.raises(BerError):
            decode(b"\x02\x00")
