"""End-to-end agent ↔ manager tests over the simulated network."""

import pytest

from repro.network.clock import Scheduler
from repro.network.simnet import Network
from repro.network.udp import DatagramSocket
from repro.snmp.agent import SnmpAgent
from repro.snmp.ber import Gauge32, OctetString
from repro.snmp.errors import SnmpErrorResponse, SnmpTimeout
from repro.snmp.manager import SnmpManager
from repro.snmp.mib import MibTree
from repro.snmp.oids import MIB2, OID, TASSL


@pytest.fixture
def stack():
    sched = Scheduler()
    net = Network(sched, seed=1)
    net.add_node("mgr")
    net.add_node("host1")
    net.add_link("mgr", "host1", latency=0.002, bandwidth=1e6)
    tree = MibTree()
    tree.register_scalar(MIB2.sysName, OctetString(b"host1"))
    box = {"cpu": 42}
    tree.register_callable(
        TASSL.hostCpuLoad,
        lambda: Gauge32(box["cpu"]),
        setter=lambda v: box.__setitem__("cpu", v.value),
    )
    tree.register_scalar(TASSL.hostPageFaults, Gauge32(7))
    agent = SnmpAgent(DatagramSocket(net, "host1"), tree)
    mgr = SnmpManager(DatagramSocket(net, "mgr"), sched)
    return sched, net, agent, mgr, box


class TestGet:
    def test_get_scalar(self, stack):
        _, _, _, mgr, _ = stack
        assert mgr.get_scalar("host1", TASSL.hostCpuLoad).value == 42

    def test_get_multiple_varbinds(self, stack):
        _, _, _, mgr, _ = stack
        out = mgr.get("host1", [TASSL.hostCpuLoad, TASSL.hostPageFaults])
        assert [v.value for _, v in out] == [42, 7]
        assert [o for o, _ in out] == [TASSL.hostCpuLoad, TASSL.hostPageFaults]

    def test_get_live_value(self, stack):
        _, _, _, mgr, box = stack
        box["cpu"] = 93
        assert mgr.get_scalar("host1", TASSL.hostCpuLoad).value == 93

    def test_get_missing_raises_error_response(self, stack):
        _, _, _, mgr, _ = stack
        with pytest.raises(SnmpErrorResponse) as ei:
            mgr.get_scalar("host1", OID("1.3.9.9.9.0"))
        assert ei.value.index == 1

    def test_virtual_time_advances(self, stack):
        sched, _, _, mgr, _ = stack
        mgr.get_scalar("host1", TASSL.hostCpuLoad)
        assert sched.clock.now > 0.003  # at least a round trip


class TestGetNextWalk:
    def test_get_next(self, stack):
        _, _, _, mgr, _ = stack
        oid, value = mgr.get_next("host1", TASSL.root)
        assert oid == TASSL.hostCpuLoad
        assert value.value == 42

    def test_walk_subtree(self, stack):
        _, _, _, mgr, _ = stack
        out = mgr.walk("host1", TASSL.root)
        assert [o for o, _ in out] == [TASSL.hostCpuLoad, TASSL.hostPageFaults]

    def test_walk_to_end_of_mib(self, stack):
        _, _, _, mgr, _ = stack
        out = mgr.walk("host1", OID("1.3"))
        assert len(out) == 3  # sysName + 2 TASSL scalars


class TestSet:
    def test_set_with_write_community(self, stack):
        sched, net, _, _, box = stack
        mgr = SnmpManager(DatagramSocket(net, "mgr"), sched, community="private")
        mgr.set("host1", [(TASSL.hostCpuLoad, Gauge32(11))])
        assert box["cpu"] == 11

    def test_set_with_read_community_dropped(self, stack):
        """RFC 1157 v1: bad community for op -> silent drop -> timeout."""
        sched, net, agent, mgr, box = stack
        mgr.timeout = 0.05
        mgr.retries = 0
        with pytest.raises(SnmpTimeout):
            mgr.set("host1", [(TASSL.hostCpuLoad, Gauge32(11))])
        assert box["cpu"] == 42
        assert agent.auth_failures >= 1


class TestRobustness:
    def test_timeout_on_unbound_port(self, stack):
        _, _, _, mgr, _ = stack
        mgr.timeout = 0.05
        mgr.retries = 1
        with pytest.raises(SnmpTimeout):
            mgr.get_scalar("host1", TASSL.hostCpuLoad, port=9999)
        assert mgr.timeouts == 2  # initial + 1 retry

    def test_garbage_datagram_ignored(self, stack):
        sched, net, agent, mgr, _ = stack
        junk = DatagramSocket(net, "mgr")
        junk.sendto(b"\xff\xfegarbage", ("host1", 161))
        sched.run()
        assert agent.decode_failures == 1
        # agent still serves afterwards
        assert mgr.get_scalar("host1", TASSL.hostCpuLoad).value == 42

    def test_wrong_community_get_dropped(self, stack):
        sched, net, agent, _, _ = stack
        bad = SnmpManager(
            DatagramSocket(net, "mgr"), sched, community="wrong", timeout=0.05, retries=0
        )
        with pytest.raises(SnmpTimeout):
            bad.get_scalar("host1", TASSL.hostCpuLoad)
        assert agent.auth_failures >= 1

    def test_retry_succeeds_after_loss(self):
        """A lossy path is survivable through retries."""
        sched = Scheduler()
        net = Network(sched, seed=5)
        net.add_node("mgr")
        net.add_node("host1")
        net.add_link("mgr", "host1", latency=0.002, loss=0.4)
        tree = MibTree()
        tree.register_scalar(TASSL.hostCpuLoad, Gauge32(1))
        SnmpAgent(DatagramSocket(net, "host1"), tree)
        mgr = SnmpManager(
            DatagramSocket(net, "mgr"), sched, timeout=0.1, retries=10
        )
        assert mgr.get_scalar("host1", TASSL.hostCpuLoad).value == 1

    def test_concurrent_managers_do_not_cross_talk(self, stack):
        sched, net, _, mgr, _ = stack
        mgr2 = SnmpManager(DatagramSocket(net, "mgr"), sched)
        assert mgr.get_scalar("host1", TASSL.hostCpuLoad).value == 42
        assert mgr2.get_scalar("host1", TASSL.hostPageFaults).value == 7
        assert mgr.get_scalar("host1", TASSL.hostCpuLoad).value == 42
