"""Tests for GETBULK (SNMPv2c)."""

import pytest

from repro.network.clock import Scheduler
from repro.network.simnet import Network
from repro.network.udp import DatagramSocket
from repro.snmp.agent import SnmpAgent, VERSION_1
from repro.snmp.ber import EndOfMibView, Gauge32, OctetString
from repro.snmp.errors import SnmpProtocolError, SnmpTimeout
from repro.snmp.manager import SnmpManager
from repro.snmp.mib import MibTree
from repro.snmp.oids import MIB2, OID, TASSL


@pytest.fixture
def stack():
    sched = Scheduler()
    net = Network(sched, seed=1)
    net.add_node("mgr")
    net.add_node("host1")
    net.add_link("mgr", "host1", latency=0.001, bandwidth=1e7)
    tree = MibTree()
    tree.register_scalar(MIB2.sysName, OctetString(b"host1"))
    for i in range(1, 21):  # a 20-row "table"
        tree.register_scalar(MIB2.ifInOctets.child(i), Gauge32(i * 100))
    tree.register_scalar(TASSL.hostCpuLoad, Gauge32(5))
    agent = SnmpAgent(DatagramSocket(net, "host1"), tree)
    mgr = SnmpManager(DatagramSocket(net, "mgr"), sched)
    return sched, net, agent, mgr


class TestGetBulk:
    def test_repetitions_traverse_table(self, stack):
        _, _, _, mgr = stack
        out = mgr.get_bulk("host1", [MIB2.ifInOctets], max_repetitions=5)
        assert len(out) == 5
        assert [v.value for _, v in out] == [100, 200, 300, 400, 500]

    def test_non_repeaters_single_next(self, stack):
        _, _, _, mgr = stack
        out = mgr.get_bulk(
            "host1",
            [MIB2.system, MIB2.ifInOctets],
            non_repeaters=1,
            max_repetitions=3,
        )
        # first varbind: one next (sysName); second: three table rows
        assert out[0][0] == MIB2.sysName
        assert len(out) == 4

    def test_end_of_mib_view_exception(self, stack):
        _, _, _, mgr = stack
        last = TASSL.hostCpuLoad
        out = mgr.get_bulk("host1", [last], max_repetitions=5)
        assert isinstance(out[-1][1], EndOfMibView)
        assert len(out) == 1  # stops immediately at end of MIB

    def test_zero_repetitions(self, stack):
        _, _, _, mgr = stack
        out = mgr.get_bulk("host1", [MIB2.ifInOctets], max_repetitions=0)
        assert out == []

    def test_v1_manager_rejects_getbulk(self, stack):
        sched, net, _, _ = stack
        v1 = SnmpManager(DatagramSocket(net, "mgr"), sched, version=0)
        with pytest.raises(SnmpProtocolError):
            v1.get_bulk("host1", [MIB2.ifInOctets])

    def test_v1_agent_frame_dropped(self, stack):
        """An agent receiving GETBULK in a v1 frame must drop it."""
        sched, net, agent, _ = stack
        hack = SnmpManager(
            DatagramSocket(net, "mgr"), sched, version=VERSION_1,
            timeout=0.05, retries=0,
        )
        hack.version = 1  # lie about v2c to pass the client check
        # craft: set version back to v1 on the wire by monkeypatching
        hack.version = 0
        hack_get_bulk = lambda: hack._request(
            ("host1", 161), 0xA5, [(MIB2.ifInOctets, __import__("repro.snmp.ber", fromlist=["Null"]).Null())],
            slot1=0, slot2=3,
        )
        with pytest.raises(SnmpTimeout):
            hack_get_bulk()
        assert agent.decode_failures >= 1


class TestBulkWalk:
    def test_matches_plain_walk(self, stack):
        _, _, _, mgr = stack
        plain = mgr.walk("host1", MIB2.ifInOctets)
        bulk = mgr.bulk_walk("host1", MIB2.ifInOctets, max_repetitions=7)
        assert bulk == plain
        assert len(bulk) == 20

    def test_fewer_round_trips(self, stack):
        _, _, _, mgr = stack
        before = mgr.requests_sent
        mgr.walk("host1", MIB2.ifInOctets)
        plain_cost = mgr.requests_sent - before
        before = mgr.requests_sent
        mgr.bulk_walk("host1", MIB2.ifInOctets, max_repetitions=20)
        bulk_cost = mgr.requests_sent - before
        assert bulk_cost < plain_cost / 3

    def test_whole_mib(self, stack):
        _, _, _, mgr = stack
        out = mgr.bulk_walk("host1", OID("1.3"), max_repetitions=8)
        assert len(out) == 22  # sysName + 20 rows + cpu
