"""Tests for SNMPv2c traps and event-driven adaptation."""

import pytest

from repro.hosts.workload import Trace
from repro.network.clock import Scheduler
from repro.network.simnet import Network
from repro.snmp.ber import Gauge32
from repro.snmp.oids import TASSL
from repro.snmp.traps import Notification, ThresholdWatch, TrapListener, TrapSender


@pytest.fixture
def fabric():
    sched = Scheduler()
    net = Network(sched, seed=0)
    net.add_node("agent-host")
    net.add_node("mgr-host")
    net.add_link("agent-host", "mgr-host", latency=0.001)
    return sched, net


class TestTrapWire:
    def test_trap_round_trip(self, fabric):
        sched, net = fabric
        got: list[Notification] = []
        TrapListener(net, "mgr-host", got.append)
        sender = TrapSender(net, "agent-host")
        sender.send(
            ("mgr-host", 162),
            TASSL.cpuHighTrap,
            [(TASSL.hostCpuLoad, Gauge32(97))],
        )
        sched.run()
        assert len(got) == 1
        n = got[0]
        assert n.trap_oid == TASSL.cpuHighTrap
        assert n.varbinds[0][0] == TASSL.hostCpuLoad
        assert n.varbinds[0][1].value == 97
        assert n.source[0] == "agent-host"

    def test_wrong_community_dropped(self, fabric):
        sched, net = fabric
        got = []
        TrapListener(net, "mgr-host", got.append, community="secret")
        TrapSender(net, "agent-host", community="public").send(
            ("mgr-host", 162), TASSL.cpuHighTrap, []
        )
        sched.run()
        assert got == []

    def test_garbage_counted_not_fatal(self, fabric):
        sched, net = fabric
        got = []
        listener = TrapListener(net, "mgr-host", got.append)
        from repro.network.udp import DatagramSocket

        junk = DatagramSocket(net, "agent-host")
        junk.sendto(b"\x00\x01garbage", ("mgr-host", 162))
        sched.run()
        assert listener.decode_failures == 1
        assert got == []

    def test_uptime_carried(self, fabric):
        sched, net = fabric
        got = []
        TrapListener(net, "mgr-host", got.append)
        sched.call_after(5.0, lambda: None)
        sched.run()
        TrapSender(net, "agent-host").send(("mgr-host", 162), TASSL.cpuHighTrap, [])
        sched.run()
        assert got[0].uptime_ticks >= 500


class TestThresholdWatch:
    def make_watch(self, fabric, values, threshold=80.0, direction="above"):
        sched, net = fabric
        got = []
        TrapListener(net, "mgr-host", got.append)
        sender = TrapSender(net, "agent-host")
        box = {"i": 0}

        def sample():
            v = values[min(box["i"], len(values) - 1)]
            box["i"] += 1
            return v

        watch = ThresholdWatch(
            sched,
            sender,
            dest=("mgr-host", 162),
            oid=TASSL.hostPageFaults,
            sample=sample,
            threshold=threshold,
            trap_oid=TASSL.pageFaultHighTrap,
            direction=direction,
            interval=1.0,
        )
        return sched, watch, got

    def test_single_crossing_single_trap(self, fabric):
        sched, watch, got = self.make_watch(fabric, [30, 90, 95, 99, 30])
        watch.start()
        sched.run_until(6.0)
        assert watch.crossings == 1
        assert len(got) == 1

    def test_rearm_after_recovery(self, fabric):
        sched, watch, got = self.make_watch(fabric, [30, 90, 30, 91, 30])
        watch.start()
        sched.run_until(6.0)
        assert watch.crossings == 2

    def test_below_direction(self, fabric):
        sched, watch, got = self.make_watch(
            fabric, [100, 100, 10, 100], threshold=50.0, direction="below"
        )
        watch.start()
        sched.run_until(5.0)
        assert watch.crossings == 1

    def test_invalid_direction(self, fabric):
        sched, net = fabric
        with pytest.raises(ValueError):
            ThresholdWatch(
                sched,
                TrapSender(net, "agent-host"),
                ("mgr-host", 162),
                TASSL.hostCpuLoad,
                lambda: 0.0,
                50.0,
                TASSL.cpuHighTrap,
                direction="sideways",
            )

    def test_stop_halts_checks(self, fabric):
        sched, watch, got = self.make_watch(fabric, [30, 30, 95])
        watch.start()
        sched.run_until(1.5)
        watch.stop()
        sched.run_until(10.0)
        assert watch.crossings == 0


class TestEventDrivenAdaptation:
    def test_trap_triggers_immediate_decision(self):
        from repro.core.framework import CollaborationFramework

        fw = CollaborationFramework("traptest")
        client = fw.add_wired_client(
            "alice", fault_workload=Trace([30, 30, 95, 95, 30, 30, 95])
        )
        watch = fw.add_threshold_trap(client, "page_faults", threshold=80.0)
        fw.start_hosts()
        fw.run_for(8.0)
        # two independent excursions above 80 -> two traps -> two decisions
        assert watch.crossings == 2
        assert len(client.traps_received) == 2
        assert [d.packets for _, d in client.decision_log] == [1, 1]

    def test_trap_listener_idempotent(self):
        from repro.core.framework import CollaborationFramework

        fw = CollaborationFramework("traptest2")
        client = fw.add_wired_client("alice")
        client.enable_trap_listener()
        client.enable_trap_listener()  # no port clash

    def test_unknown_trap_parameter_rejected(self):
        from repro.core.framework import CollaborationFramework

        fw = CollaborationFramework("traptest3")
        client = fw.add_wired_client("alice")
        with pytest.raises(ValueError):
            fw.add_threshold_trap(client, "disk_io", threshold=1.0)
