"""Real-socket SNMP tests (loopback; skipped if sockets are unavailable)."""

import socket
import threading

import pytest

from repro.snmp.ber import Gauge32, OctetString
from repro.snmp.errors import SnmpErrorResponse, SnmpTimeout
from repro.snmp.mib import MibTree
from repro.snmp.oids import MIB2, OID, TASSL
from repro.snmp.realudp import RealSnmpAgent, RealSnmpManager


def _loopback_available() -> bool:
    try:
        s = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        s.bind(("127.0.0.1", 0))
        s.close()
        return True
    except OSError:
        return False


pytestmark = pytest.mark.skipif(
    not _loopback_available(), reason="loopback UDP unavailable"
)


@pytest.fixture
def stack():
    tree = MibTree()
    tree.register_scalar(MIB2.sysName, OctetString(b"realhost"))
    box = {"cpu": 33}
    tree.register_callable(
        TASSL.hostCpuLoad,
        lambda: Gauge32(box["cpu"]),
        setter=lambda v: box.__setitem__("cpu", v.value),
    )
    agent = RealSnmpAgent(tree)
    mgr = RealSnmpManager(timeout=2.0, retries=1)
    yield agent, mgr, box
    agent.close()
    mgr.close()


def serve_async(agent, n):
    t = threading.Thread(target=agent.serve, args=(n,), kwargs={"timeout": 3.0})
    t.start()
    return t


class TestRealWire:
    def test_get_over_loopback(self, stack):
        agent, mgr, _ = stack
        t = serve_async(agent, 1)
        out = mgr.get(agent.address, [TASSL.hostCpuLoad])
        t.join()
        assert out[0][0] == TASSL.hostCpuLoad
        assert out[0][1].value == 33

    def test_getnext_over_loopback(self, stack):
        agent, mgr, _ = stack
        t = serve_async(agent, 1)
        oid, value = mgr.get_next(agent.address, MIB2.system)
        t.join()
        assert oid == MIB2.sysName
        assert value.text() == "realhost"

    def test_set_over_loopback(self, stack):
        agent, mgr, box = stack
        mgr.community = "private"
        t = serve_async(agent, 2)
        mgr.set(agent.address, [(TASSL.hostCpuLoad, Gauge32(77))])
        out = mgr.get(agent.address, [TASSL.hostCpuLoad])
        t.join()
        assert box["cpu"] == 77
        assert out[0][1].value == 77

    def test_no_such_name_over_loopback(self, stack):
        agent, mgr, _ = stack
        t = serve_async(agent, 1)
        with pytest.raises(SnmpErrorResponse):
            mgr.get(agent.address, [OID("1.3.9.9.9.0")])
        t.join()

    def test_timeout_when_agent_silent(self, stack):
        agent, _, _ = stack
        mgr = RealSnmpManager(timeout=0.2, retries=0)
        try:
            with pytest.raises(SnmpTimeout):
                mgr.get(agent.address, [TASSL.hostCpuLoad])  # nobody serving
        finally:
            mgr.close()

    def test_wrong_community_ignored(self, stack):
        agent, _, _ = stack
        mgr = RealSnmpManager(community="wrong", timeout=0.2, retries=0)
        t = serve_async(agent, 1)
        try:
            with pytest.raises(SnmpTimeout):
                mgr.get(agent.address, [TASSL.hostCpuLoad])
        finally:
            mgr.close()
            t.join()


class TestSocketLifecycle:
    """Regression (RES002/RES003): idempotent close, guarded use-after-close."""

    def test_agent_close_idempotent_and_guarded(self, stack):
        agent, _, _ = stack
        agent.close()
        agent.close()
        with pytest.raises(RuntimeError):
            agent.serve_once(timeout=0.01)

    def test_manager_close_idempotent_and_guarded(self, stack):
        agent, mgr, _ = stack
        mgr.close()
        mgr.close()
        with pytest.raises(RuntimeError):
            mgr.get(agent.address, [TASSL.hostCpuLoad])
