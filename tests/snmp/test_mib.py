"""Tests for the MIB tree."""

import pytest

from repro.snmp.ber import Gauge32, OctetString
from repro.snmp.errors import ErrorStatus
from repro.snmp.mib import MibAccessError, MibBinding, MibTree
from repro.snmp.oids import OID, TASSL


@pytest.fixture
def tree():
    t = MibTree()
    t.register_scalar(OID("1.3.6.1.2.1.1.5.0"), OctetString(b"host"))
    t.register_scalar(TASSL.hostCpuLoad, Gauge32(10))
    t.register_scalar(TASSL.hostPageFaults, Gauge32(20))
    return t


class TestGet:
    def test_exact_get(self, tree):
        assert tree.get(TASSL.hostCpuLoad) == Gauge32(10)

    def test_missing_raises_no_such_name(self, tree):
        with pytest.raises(MibAccessError) as ei:
            tree.get(OID("1.3.9.9.0"))
        assert ei.value.status == ErrorStatus.NO_SUCH_NAME

    def test_callable_binding_is_live(self):
        t = MibTree()
        box = {"v": 1}
        t.register_callable(TASSL.hostCpuLoad, lambda: Gauge32(box["v"]))
        assert t.get(TASSL.hostCpuLoad).value == 1
        box["v"] = 99
        assert t.get(TASSL.hostCpuLoad).value == 99

    def test_reregistration_replaces(self, tree):
        tree.register_scalar(TASSL.hostCpuLoad, Gauge32(55))
        assert tree.get(TASSL.hostCpuLoad).value == 55
        assert len([o for o in tree.oids if o == TASSL.hostCpuLoad]) == 1


class TestGetNext:
    def test_next_in_order(self, tree):
        oid, value = tree.get_next(TASSL.hostCpuLoad)
        assert oid == TASSL.hostPageFaults
        assert value.value == 20

    def test_next_from_prefix(self, tree):
        oid, _ = tree.get_next(TASSL.root)
        assert oid == TASSL.hostCpuLoad

    def test_end_of_mib(self, tree):
        last = tree.oids[-1]
        with pytest.raises(MibAccessError):
            tree.get_next(last)

    def test_walk_subtree(self, tree):
        got = tree.walk(TASSL.root)
        assert [o for o, _ in got] == [TASSL.hostCpuLoad, TASSL.hostPageFaults]

    def test_walk_excludes_outside(self, tree):
        got = tree.walk(OID("1.3.6.1.2.1"))
        assert [str(o) for o, _ in got] == ["1.3.6.1.2.1.1.5.0"]


class TestSet:
    def test_set_through_setter(self):
        t = MibTree()
        box = {"v": 1}
        t.register_callable(
            TASSL.hostCpuLoad,
            lambda: Gauge32(box["v"]),
            setter=lambda val: box.__setitem__("v", val.value),
        )
        t.set(TASSL.hostCpuLoad, Gauge32(42))
        assert box["v"] == 42

    def test_set_readonly_raises(self, tree):
        with pytest.raises(MibAccessError) as ei:
            tree.set(TASSL.hostCpuLoad, Gauge32(1))
        assert ei.value.status == ErrorStatus.READ_ONLY

    def test_set_missing_raises(self, tree):
        with pytest.raises(MibAccessError) as ei:
            tree.set(OID("1.3.9.9.0"), Gauge32(1))
        assert ei.value.status == ErrorStatus.NO_SUCH_NAME


class TestLifecycle:
    def test_unregister(self, tree):
        tree.unregister(TASSL.hostCpuLoad)
        assert TASSL.hostCpuLoad not in tree
        assert len(tree) == 2
        # get_next must skip the removed entry
        oid, _ = tree.get_next(TASSL.root)
        assert oid == TASSL.hostPageFaults

    def test_unregister_unknown_is_noop(self, tree):
        tree.unregister(OID("1.3.9.9.0"))
        assert len(tree) == 3

    def test_binding_writable_flag(self):
        b = MibBinding(TASSL.hostCpuLoad, lambda: Gauge32(1))
        assert not b.writable
        with pytest.raises(MibAccessError):
            b.write(Gauge32(2))
