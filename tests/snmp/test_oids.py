"""Tests for the OID type and well-known arcs."""

import pytest
from hypothesis import given, strategies as st

from repro.snmp.ber import BerError
from repro.snmp.oids import MIB2, OID, TASSL


class TestConstruction:
    def test_from_string(self):
        assert OID("1.3.6.1").arcs == (1, 3, 6, 1)

    def test_leading_dot_tolerated(self):
        assert OID(".1.3.6").arcs == (1, 3, 6)

    def test_from_iterable(self):
        assert OID([1, 3, 6]).arcs == (1, 3, 6)

    def test_from_oid_copy(self):
        a = OID("1.3.6")
        assert OID(a) == a

    def test_too_short_rejected(self):
        with pytest.raises(BerError):
            OID("1")

    def test_garbage_rejected(self):
        with pytest.raises(BerError):
            OID("1.3.x")
        with pytest.raises(BerError):
            OID("")

    def test_negative_arc_rejected(self):
        with pytest.raises(BerError):
            OID((1, -3))


class TestAlgebra:
    def test_child_and_instance(self):
        base = OID("1.3.6.1")
        assert base.child(2, 1) == OID("1.3.6.1.2.1")
        assert base.instance() == OID("1.3.6.1.0")

    def test_parent(self):
        assert OID("1.3.6").parent() == OID("1.3")
        with pytest.raises(BerError):
            OID("1.3").parent()

    def test_prefix(self):
        assert OID("1.3.6").is_prefix_of(OID("1.3.6.1.2"))
        assert not OID("1.3.6.1").is_prefix_of(OID("1.3.6"))
        assert OID("1.3.6").is_prefix_of(OID("1.3.6"))

    def test_ordering_lexicographic(self):
        assert OID("1.3.6.1.1") < OID("1.3.6.1.2")
        assert OID("1.3.6") < OID("1.3.6.0")  # prefix sorts first

    def test_hashable(self):
        assert len({OID("1.3.6"), OID("1.3.6"), OID("1.3.7")}) == 2

    def test_str_roundtrip(self):
        assert str(OID("1.3.6.1.4.1.4392")) == "1.3.6.1.4.1.4392"

    @given(st.lists(st.integers(0, 1000), min_size=2, max_size=8))
    def test_string_roundtrip_property(self, arcs):
        oid = OID(arcs)
        assert OID(str(oid)) == oid

    def test_ber_roundtrip(self):
        oid = OID("1.3.6.1.2.1.1.1.0")
        assert OID.from_ber(oid.to_ber()) == oid


class TestWellKnown:
    def test_mib2_arcs(self):
        assert str(MIB2.sysDescr) == "1.3.6.1.2.1.1.1.0"
        assert str(MIB2.sysUpTime) == "1.3.6.1.2.1.1.3.0"
        assert MIB2.root.is_prefix_of(MIB2.ifInOctets)

    def test_tassl_arcs_are_scalars(self):
        for oid in (
            TASSL.hostCpuLoad,
            TASSL.hostPageFaults,
            TASSL.hostFreeMemory,
            TASSL.linkBandwidth,
        ):
            assert oid.arcs[-1] == 0
            assert TASSL.root.is_prefix_of(oid)

    def test_tassl_disjoint_from_mib2(self):
        assert not MIB2.root.is_prefix_of(TASSL.root)
        assert not TASSL.root.is_prefix_of(MIB2.root)
