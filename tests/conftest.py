"""Test-suite wiring for the runtime lock-order sanitizer.

``REPRO_SANITIZE=1 pytest`` turns every :func:`repro._locks.make_lock`
lock in the runtime layers into a tracked lock for the whole session.
At session end the observed acquisition orders are written to a JSON
report (``REPRO_SANITIZE_REPORT``, default ``sanitizer-report.json``),
checked against the static lock graph, and the session FAILS if any
lock-order inversion was observed — the dynamic half of the DLK001
contract (see ``repro.analysis.sanitizer``).

Without the env var this file is inert.
"""

import os

import pytest


def _sanitizing() -> bool:
    return bool(os.environ.get("REPRO_SANITIZE"))


def pytest_configure(config):
    if not _sanitizing():
        return
    from repro.analysis import sanitizer

    config._repro_sanitizer = sanitizer.enable()


def pytest_sessionfinish(session, exitstatus):
    config = session.config
    san = getattr(config, "_repro_sanitizer", None)
    if san is None:
        return
    report_path = os.environ.get("REPRO_SANITIZE_REPORT", "sanitizer-report.json")
    san.write_report(report_path)
    problems = [
        f"lock-order inversion observed at run time: {a} <-> {b}"
        for a, b in san.inversions()
    ]
    try:
        from repro.analysis import build_call_graph, lock_order_edges

        static = lock_order_edges(build_call_graph(["src/repro"]))
        problems.extend(san.check_against(static))
    except Exception as exc:  # pragma: no cover - static pass is best-effort here
        print(f"sanitizer: static cross-check skipped ({exc})")
    tr = config.pluginmanager.get_plugin("terminalreporter")
    if problems:
        for p in problems:
            if tr is not None:
                tr.write_line(f"SANITIZER: {p}", red=True)
        session.exitstatus = pytest.ExitCode.TESTS_FAILED
    elif tr is not None:
        tr.write_line(
            f"sanitizer: no lock-order inversions"
            f" ({len(san.edges())} edge(s), report: {report_path})"
        )
