"""BENCH FIG9 — two wireless clients, varying power (paper Sec. 6.3.2).

A's power is stepped up; plus the Goodman–Mandayam uniform-reduction
claim and the "distance beats power" observation.
"""

import numpy as np
import pytest

from conftest import run_once
from repro.experiments.fig9 import run_fig9, run_fig9_scaling
from repro.wireless.channel import PathLossModel


@pytest.mark.benchmark(group="figures")
def test_fig9_power_sweep(benchmark):
    result = run_once(benchmark, run_fig9)
    print("\n" + result.format_table())

    sa = np.array(result.column("sir_a_db"))
    sb = np.array(result.column("sir_b_db"))
    assert np.all(np.diff(sa) > 0)   # A rises with its power
    assert np.all(np.diff(sb) < 0)   # B falls (A is B's interference)

    # crossing the 4 dB image threshold happens inside the sweep
    tiers = result.column("tier_a")
    assert tiers[0] != "FULL_IMAGE" and tiers[-1] == "FULL_IMAGE"


@pytest.mark.benchmark(group="figures")
def test_fig9_goodman_mandayam_scaling(benchmark):
    result = run_once(benchmark, run_fig9_scaling)
    print("\n" + result.format_table(float_fmt="{:.4g}"))
    for row in result.rows:
        # paper: "net utility ... is increased for all the clients"
        assert row["utility_after"] > row["utility_before"]
        # SIR dips only marginally (interference-limited regime)
        assert row["sir_db_before"] - row["sir_db_after"] < 0.5


@pytest.mark.benchmark(group="figures")
def test_fig9_distance_more_effective_than_power(benchmark):
    """Paper: 'varying the distance is more effective than a variation in
    power' — with alpha=4, halving distance = 16x received power."""

    def compute():
        pl = PathLossModel(alpha=4.0, k=1e6)
        return pl.gain(40.0) / pl.gain(80.0), 2.0  # distance-halving vs power-doubling

    distance_gain, power_gain = run_once(benchmark, compute)
    assert distance_gain == pytest.approx(16.0)
    assert distance_gain > power_gain
