"""BENCH-SHARD — the sharded broker at paper-scale populations.

Two claims are measured:

* **capacity** — a :class:`~repro.messaging.sharded.ShardedSemanticBus`
  holds one million attached subscriptions and dispatches a
  hundred-thousand-message ``publish_many`` batch through them, with
  per-message interpreter work bounded by the shortlist (not the
  population);
* **shard scaling** — for selectors the predicate index cannot plan
  (disjunctions: linear fallback), total interpreter work shrinks
  near-linearly as the shard count grows 1 → 8, because the
  required-attribute test skips whole shards whose population cannot
  match.  On the flat bus those selectors scan every subscriber.

The million-subscriber build is dominated by attach cost, so it runs in
setup; only the batch dispatch is under the timer.
"""

import time

import pytest

from conftest import run_once
from repro.core.profiles import ClientProfile
from repro.messaging.message import SemanticMessage
from repro.messaging.sharded import ShardedSemanticBus

N_SUBSCRIBERS = 1_000_000
N_MESSAGES = 100_000
N_CELLS = 50_000  # subscribers per cell: N_SUBSCRIBERS / N_CELLS

ROLES = ("medic", "scout", "engineer", "observer")


def build_million_sub_bus():
    bus = ShardedSemanticBus(shards=8)
    sink = lambda d: None  # noqa: E731
    for i in range(N_SUBSCRIBERS):
        attrs = {"role": ROLES[i % 4], "cell": f"c{i % N_CELLS}"}
        if i % 3 == 0:
            attrs["tier"] = i % 5
        bus.attach(ClientProfile(f"s{i}", attrs), sink)
    return bus


def make_batch(n):
    """Cycle a handful of selective selectors across ``n`` messages.

    Distinct-selector count is deliberately small: ``publish_many``
    shortlists once per (selector, shard), so the marginal message only
    pays candidate interpretation.
    """
    selectors = [
        f"cell == 'c{(i * 97) % N_CELLS}' and role == '{ROLES[i % 4]}'"
        for i in range(8)
    ]
    return [
        SemanticMessage.create("hq", selectors[i % len(selectors)], kind="bench")
        for i in range(n)
    ]


@pytest.mark.benchmark(group="sharded-broker")
def test_million_subscribers_100k_batch(benchmark):
    """1M attached subscriptions, one 100k-message batch through them."""
    bus = build_million_sub_bus()
    assert bus.subscribers == N_SUBSCRIBERS
    batch = make_batch(N_MESSAGES)

    out = run_once(benchmark, bus.publish_many, batch)

    assert out.messages == N_MESSAGES
    # every selector targets one cell+role slice: deliveries happen, and
    # interpreter work per message stays shortlist-sized, not 1M
    assert out.delivered > 0
    assert out.candidates_checked < N_MESSAGES * 40
    per_msg = out.candidates_checked / N_MESSAGES
    print(
        f"\n1M subs / {N_MESSAGES} msgs: delivered={out.delivered} "
        f"checked={out.candidates_checked} ({per_msg:.1f}/msg) "
        f"skips={bus.shard_skips}"
    )


# ---------------------------------------------------------------------------
# shard-count scaling on linear-fallback selectors
# ---------------------------------------------------------------------------

SCALE_SUBS = 32_000
SCALE_MSGS = 64
#: each population segment carries a unique marker attribute, so a
#: selector over one marker can only match inside that segment's shard.
#: The marker names are chosen so their attribute signatures spread
#: evenly over 2, 4, and 8 shards (signature routing is deterministic) —
#: the sweep then measures partitioning itself, not hash luck.
MARKERS = (
    "g0", "g1", "g8", "g9", "g10", "g11", "g18", "g19",
    "g20", "g21", "g28", "g29", "g30", "g31", "g38", "g39",
)


def build_segmented_bus(shards):
    bus = ShardedSemanticBus(shards=shards)
    sink = lambda d: None  # noqa: E731
    for i in range(SCALE_SUBS):
        marker = MARKERS[i % len(MARKERS)]
        # sparse matches: the cost under measurement is *interpreting*
        # every non-skipped member, not fanning deliveries out
        value = "yes" if i % 100 < 2 else "no"
        bus.attach(
            ClientProfile(f"s{i}", {marker: value, "val": i % 100}), sink
        )
    return bus


def segmented_batch():
    # disjunctions: the per-shard index cannot plan these, so every
    # member of every *non-skipped* shard runs the interpreter
    return [
        SemanticMessage.create(
            "hq",
            f"{MARKERS[i % len(MARKERS)]} == 'yes' "
            f"or {MARKERS[i % len(MARKERS)]} == 'maybe'",
        )
        for i in range(SCALE_MSGS)
    ]


def timed_batch(bus, batch):
    start = time.perf_counter()
    out = bus.publish_many(batch)
    return time.perf_counter() - start, out


@pytest.mark.benchmark(group="sharded-broker")
def test_shard_scaling_near_linear(benchmark):
    """1 → 8 shards cuts linear-fallback batch cost near-linearly."""
    batch = segmented_batch()
    buses = {s: build_segmented_bus(s) for s in (1, 2, 4, 8)}

    def sweep():
        return {s: timed_batch(bus, batch) for s, bus in buses.items()}

    results = run_once(benchmark, sweep)

    delivered = {s: out.delivered for s, (_t, out) in results.items()}
    checked = {s: out.candidates_checked for s, (_t, out) in results.items()}
    elapsed = {s: t for s, (t, _out) in results.items()}
    for s, (t, out) in sorted(results.items()):
        print(
            f"\nshards={s}: delivered={out.delivered} checked={out.candidates_checked} "
            f"elapsed={t * 1e3:.1f}ms"
        )

    # identical outcomes at every shard count
    assert len(set(delivered.values())) == 1 and delivered[1] > 0
    # at 1 shard every message scans the whole population; at 8 the
    # required-attribute skip confines it to the marker's shard
    assert checked[1] == SCALE_MSGS * SCALE_SUBS
    assert checked[8] <= checked[4] <= checked[2] <= checked[1]
    work_ratio = checked[1] / checked[8]
    time_ratio = elapsed[1] / elapsed[8]
    print(f"1->8 shards: work x{work_ratio:.1f}, wall x{time_ratio:.1f}")
    assert work_ratio >= 4.0  # near-linear work reduction
    assert time_ratio >= 3.0  # and it shows up on the clock
