"""Perf trajectory: broker throughput snapshot + regression gate.

Runs a fixed, seedless-deterministic broker workload and writes the
numbers to ``BENCH_broker.json`` at the repo root.  The file is
committed, so the repo carries its own performance trajectory; CI
re-measures and fails when the tree got more than ``THRESHOLD``× slower
than the committed snapshot (or when any deterministic work counter —
delivery counts, interpreter runs, shard skips — changed at all, which
means dispatch *semantics* drifted, not just speed).

Usage::

    python benchmarks/perf_trajectory.py            # refresh the snapshot
    python benchmarks/perf_trajectory.py --check    # CI gate vs the snapshot

Timing metrics are throughput rates (higher is better) and the gate is
deliberately loose (2×): CI machines vary, trajectories only need to
catch order-of-magnitude regressions.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT = REPO_ROOT / "BENCH_broker.json"

#: a timing metric may degrade to 1/THRESHOLD of the snapshot before CI fails
THRESHOLD = 2.0

ATTACH_SUBS = 40_000
BATCH_SUBS = 12_000
BATCH_MSGS = 2_000
PLAIN_SUBS = 2_000
PLAIN_MSGS = 200

ROLES = ("medic", "scout", "engineer", "observer")


def _profiles(n):
    from repro.core.profiles import ClientProfile

    out = []
    for i in range(n):
        attrs = {"role": ROLES[i % 4], "cell": f"c{i % (n // 10 or 1)}"}
        if i % 3 == 0:
            attrs["tier"] = i % 5
        out.append(ClientProfile(f"s{i}", attrs))
    return out


def _batch(n):
    from repro.messaging.message import SemanticMessage

    return [
        SemanticMessage.create(
            "hq",
            f"cell == 'c{(i * 97) % (BATCH_SUBS // 10)}' and role == '{ROLES[i % 4]}'",
            kind="bench",
        )
        for i in range(n)
    ]


def collect() -> dict:
    """One deterministic workload pass; returns the metric dict."""
    from repro.messaging.broker import SemanticBus
    from repro.messaging.sharded import ShardedSemanticBus

    sink = lambda d: None  # noqa: E731
    metrics: dict[str, float] = {}

    # -- attach throughput on the sharded backend ----------------------
    bus = ShardedSemanticBus(shards=8)
    profiles = _profiles(ATTACH_SUBS)
    t0 = time.perf_counter()
    for p in profiles:
        bus.attach(p, sink)
    metrics["sharded_attach_per_s"] = ATTACH_SUBS / (time.perf_counter() - t0)

    # -- batch publish throughput on the sharded backend ---------------
    bus = ShardedSemanticBus(shards=8)
    for p in _profiles(BATCH_SUBS):
        bus.attach(p, sink)
    batch = _batch(BATCH_MSGS)
    t0 = time.perf_counter()
    out = bus.publish_many(batch)
    metrics["sharded_publish_many_msgs_per_s"] = BATCH_MSGS / (
        time.perf_counter() - t0
    )
    metrics["sharded_delivered"] = out.delivered
    metrics["sharded_checked"] = out.candidates_checked

    # -- single-message publish on the plain indexed bus ---------------
    bus = SemanticBus()
    for p in _profiles(PLAIN_SUBS):
        bus.attach(p, sink)
    msgs = _batch(PLAIN_MSGS)
    t0 = time.perf_counter()
    delivered = sum(bus.publish(m).delivered for m in msgs)
    metrics["bus_publish_per_s"] = PLAIN_MSGS / (time.perf_counter() - t0)
    metrics["bus_delivered"] = delivered
    return metrics


#: metrics compared as throughput rates (2× tolerance)
RATE_METRICS = (
    "sharded_attach_per_s",
    "sharded_publish_many_msgs_per_s",
    "bus_publish_per_s",
)
#: metrics that must match the snapshot exactly (semantic drift gate)
EXACT_METRICS = ("sharded_delivered", "sharded_checked", "bus_delivered")


def check(baseline: dict, fresh: dict) -> list[str]:
    """Compare a fresh run against the snapshot; returns failure strings."""
    failures = []
    base = baseline.get("metrics", {})
    for name in RATE_METRICS:
        if name not in base:
            continue  # snapshot predates the metric
        old, new = float(base[name]), float(fresh[name])
        if new < old / THRESHOLD:
            failures.append(
                f"{name}: {new:.0f}/s is more than {THRESHOLD}x below "
                f"the committed {old:.0f}/s"
            )
    for name in EXACT_METRICS:
        if name not in base:
            continue
        if int(base[name]) != int(fresh[name]):
            failures.append(
                f"{name}: {int(fresh[name])} != committed {int(base[name])} "
                f"(deterministic workload changed meaning)"
            )
    return failures


def main(argv: list[str]) -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    fresh = collect()
    if "--check" in argv:
        if not SNAPSHOT.exists():
            print(f"no snapshot at {SNAPSHOT}; run without --check to create it")
            return 1
        baseline = json.loads(SNAPSHOT.read_text())
        failures = check(baseline, fresh)
        for name in RATE_METRICS + EXACT_METRICS:
            committed = baseline.get("metrics", {}).get(name)
            print(f"{name}: fresh={fresh[name]:.0f} committed={committed}")
        if failures:
            print("\nperf trajectory REGRESSED:")
            for f in failures:
                print(f"  - {f}")
            return 1
        print("\nperf trajectory ok")
        return 0
    SNAPSHOT.write_text(
        json.dumps({"schema": 1, "metrics": fresh}, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {SNAPSHOT}")
    for name, value in sorted(fresh.items()):
        print(f"  {name}: {value:.0f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
