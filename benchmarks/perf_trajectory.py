"""Perf trajectory: broker + analyzer throughput snapshots + regression gate.

Runs fixed, seedless-deterministic workloads and writes the numbers to
``BENCH_broker.json``, ``BENCH_analysis.json`` and
``BENCH_multicast.json`` at the repo root.  The files are committed, so
the repo carries its own performance trajectory; CI re-measures and
fails when the tree got more than ``THRESHOLD``× slower than a committed
snapshot (or when any deterministic work counter — delivery counts,
interpreter runs, shard skips, analyzer findings, multicast packet
counts — changed at all, which means *semantics* drifted, not just
speed).

``BENCH_analysis.json`` covers the PERF/DET hot-path analyzer itself
(whole-tree analysis throughput, which must stay finding-free) plus the
two hot paths the analyzer's own findings sped up: single-message
sharded publish (PERF001: snapshot copy dropped) and profile
construction with string interests (PERF004: LRU-cached selector
parse).  Its ``provenance`` block records the before/after measurements
of those fixes at the commit that landed them.

Usage::

    python benchmarks/perf_trajectory.py            # refresh both snapshots
    python benchmarks/perf_trajectory.py --check    # CI gate vs the snapshots

Timing metrics are throughput rates (higher is better) and the gate is
deliberately loose (2×): CI machines vary, trajectories only need to
catch order-of-magnitude regressions.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT = REPO_ROOT / "BENCH_broker.json"
ANALYSIS_SNAPSHOT = REPO_ROOT / "BENCH_analysis.json"
MULTICAST_SNAPSHOT = REPO_ROOT / "BENCH_multicast.json"

#: a timing metric may degrade to 1/THRESHOLD of the snapshot before CI fails
THRESHOLD = 2.0

ATTACH_SUBS = 40_000
BATCH_SUBS = 12_000
BATCH_MSGS = 2_000
PLAIN_SUBS = 2_000
PLAIN_MSGS = 200
SINGLE_MSGS = 2_000
PARSE_PROFILES = 50_000
ANALYZER_RUNS = 3

ROLES = ("medic", "scout", "engineer", "observer")

#: the measured effect of the analyzer-driven fixes, at the commit that
#: landed them (same machine, same workloads as collect_analysis below).
#: Recorded for provenance, never re-checked: the rate gate above is what
#: protects the trajectory going forward.
HOTPATH_FIX_PROVENANCE = {
    "sharded_publish_per_s": {
        "rule": "PERF001",
        "fix": "publish_many hands live shard lists to workers instead of "
        "copying O(population) per publish (membership is frozen under "
        "the attach lock for the batch)",
        "before": 2250,
        "after": 2373,
    },
    "profile_parse_per_s": {
        "rule": "PERF004",
        "fix": "core.selectors.parse is LRU-cached by selector text; "
        "ClientProfile.__init__/set_interest go through it",
        "before": 44747,
        "after": 611745,
    },
}


def _profiles(n):
    from repro.core.profiles import ClientProfile

    out = []
    for i in range(n):
        attrs = {"role": ROLES[i % 4], "cell": f"c{i % (n // 10 or 1)}"}
        if i % 3 == 0:
            attrs["tier"] = i % 5
        out.append(ClientProfile(f"s{i}", attrs))
    return out


def _batch(n):
    from repro.messaging.message import SemanticMessage

    return [
        SemanticMessage.create(
            "hq",
            f"cell == 'c{(i * 97) % (BATCH_SUBS // 10)}' and role == '{ROLES[i % 4]}'",
            kind="bench",
        )
        for i in range(n)
    ]


def collect() -> dict:
    """One deterministic workload pass; returns the metric dict."""
    from repro.messaging.broker import SemanticBus
    from repro.messaging.sharded import ShardedSemanticBus

    sink = lambda d: None  # noqa: E731
    metrics: dict[str, float] = {}

    # -- attach throughput on the sharded backend ----------------------
    bus = ShardedSemanticBus(shards=8)
    profiles = _profiles(ATTACH_SUBS)
    t0 = time.perf_counter()
    for p in profiles:
        bus.attach(p, sink)
    metrics["sharded_attach_per_s"] = ATTACH_SUBS / (time.perf_counter() - t0)

    # -- batch publish throughput on the sharded backend ---------------
    bus = ShardedSemanticBus(shards=8)
    for p in _profiles(BATCH_SUBS):
        bus.attach(p, sink)
    batch = _batch(BATCH_MSGS)
    t0 = time.perf_counter()
    out = bus.publish_many(batch)
    metrics["sharded_publish_many_msgs_per_s"] = BATCH_MSGS / (
        time.perf_counter() - t0
    )
    metrics["sharded_delivered"] = out.delivered
    metrics["sharded_checked"] = out.candidates_checked

    # -- single-message publish on the plain indexed bus ---------------
    bus = SemanticBus()
    for p in _profiles(PLAIN_SUBS):
        bus.attach(p, sink)
    msgs = _batch(PLAIN_MSGS)
    t0 = time.perf_counter()
    delivered = sum(bus.publish(m).delivered for m in msgs)
    metrics["bus_publish_per_s"] = PLAIN_MSGS / (time.perf_counter() - t0)
    metrics["bus_delivered"] = delivered
    return metrics


def collect_analysis() -> dict:
    """Analyzer throughput + the hot paths its findings sped up."""
    import tempfile

    from repro.analysis import (
        AnalysisCache,
        analyze_concurrency,
        analyze_hotpath,
        analyze_wireformat,
        lint_paths,
        run_analysis,
    )
    from repro.core.profiles import ClientProfile
    from repro.core.selectors import parse
    from repro.messaging.sharded import ShardedSemanticBus

    sink = lambda d: None  # noqa: E731
    metrics: dict[str, float] = {}

    # -- PERF/DET analysis over the repo's own source tree -------------
    src_tree = str(REPO_ROOT / "src")
    findings = len(analyze_hotpath([src_tree]))  # warm imports + parse caches
    t0 = time.perf_counter()
    for _ in range(ANALYZER_RUNS):
        findings = len(analyze_hotpath([src_tree]))
    metrics["hotpath_analyses_per_s"] = ANALYZER_RUNS / (time.perf_counter() - t0)
    # exact gate: the committed tree must stay free of PERF/DET findings
    metrics["hotpath_findings"] = findings

    # -- DLK/RACE analysis over the same tree --------------------------
    conc_findings = len(analyze_concurrency([src_tree]))  # warm
    t0 = time.perf_counter()
    for _ in range(ANALYZER_RUNS):
        conc_findings = len(analyze_concurrency([src_tree]))
    metrics["concurrency_analyses_per_s"] = ANALYZER_RUNS / (
        time.perf_counter() - t0
    )
    # exact gate: the committed tree must stay free of DLK/RACE findings
    metrics["concurrency_findings"] = conc_findings

    # -- WIRE analysis over the same tree ------------------------------
    wire_findings = len(analyze_wireformat([src_tree]))  # warm
    t0 = time.perf_counter()
    for _ in range(ANALYZER_RUNS):
        wire_findings = len(analyze_wireformat([src_tree]))
    metrics["wire_analyses_per_s"] = ANALYZER_RUNS / (time.perf_counter() - t0)
    # exact gate: the committed tree must stay free of WIRE findings
    metrics["wire_findings"] = wire_findings

    # -- incremental cache: warm full run vs cold ----------------------
    with tempfile.TemporaryDirectory() as td:
        cache_path = str(Path(td) / "analysis-cache.json")
        cold = AnalysisCache.open(cache_path)
        run_analysis([src_tree], cache=cold)
        cold.save()
        warm = AnalysisCache.open(cache_path)
        t0 = time.perf_counter()
        run_analysis([src_tree], cache=warm)
        metrics["analysis_cache_warm_per_s"] = 1.0 / (time.perf_counter() - t0)
        # exact gate: a warm cache must satisfy every pass (zero misses)
        metrics["analysis_cache_hit_complete"] = int(warm.misses == 0)

    # -- per-file lint fan-out (python -m repro.analysis --jobs N) -----
    lint_paths([src_tree])  # warm
    t0 = time.perf_counter()
    serial = lint_paths([src_tree])
    t_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = lint_paths([src_tree], jobs=4)
    t_parallel = time.perf_counter() - t0
    metrics["repo_lint_per_s"] = 1.0 / t_serial
    #: recorded, not gated: worker processes win on big trees but the
    #: spawn cost dominates on small ones and CI core counts vary
    metrics["repo_lint_jobs_speedup"] = t_serial / t_parallel
    # exact gate: the parallel merge must be byte-identical to serial
    metrics["repo_lint_jobs_match"] = int(
        [(d.code, d.file, d.line) for d in serial]
        == [(d.code, d.file, d.line) for d in parallel]
    )

    # -- single-message publish on the sharded backend (PERF001 fix) ---
    bus = ShardedSemanticBus(shards=8)
    for p in _profiles(BATCH_SUBS):
        bus.attach(p, sink)
    msgs = _batch(SINGLE_MSGS + 100)
    for m in msgs[:100]:  # warmup
        bus.publish(m)
    t0 = time.perf_counter()
    delivered = sum(bus.publish(m).delivered for m in msgs[100:])
    metrics["sharded_publish_per_s"] = SINGLE_MSGS / (time.perf_counter() - t0)
    metrics["sharded_single_delivered"] = delivered

    # -- profile construction with string interests (PERF004 fix) ------
    interests = [f"role == '{r}' and tier >= {t}" for r in ROLES for t in range(5)]
    parse.cache_clear()  # measure from a cold cache, deterministically
    t0 = time.perf_counter()
    for i in range(PARSE_PROFILES):
        ClientProfile(f"p{i}", {"role": "medic"}, interest=interests[i % 20])
    metrics["profile_parse_per_s"] = PARSE_PROFILES / (time.perf_counter() - t0)
    return metrics


def collect_multicast() -> dict:
    """Flat vs. tree multicast packet cost (deterministic counters).

    Everything except the send rate is an exact virtual-time packet count
    from ``repro.experiments.multicast_scale``, so the gate catches any
    semantic drift in the routing fabric — a changed tree shape, a lost
    receiver, a fan-out regression — not just slowdowns.  The headline
    number is the M=256 flat→tree reduction on the two-domain topology,
    which must stay at or above 5× (ISSUE 10 acceptance criterion).
    """
    from repro.experiments.multicast_scale import run_multicast_scale

    metrics: dict[str, float] = {}
    t0 = time.perf_counter()
    result = run_multicast_scale()
    elapsed = time.perf_counter() - t0
    sends = 2 * sum(4 for _ in result.rows)  # 2 modes x 4 sends per size
    metrics["multicast_bench_sends_per_s"] = sends / elapsed
    for row in result.rows:
        m = row["members"]
        metrics[f"multicast_flat_tx_per_send_m{m}"] = row["flat_tx_per_send"]
        metrics[f"multicast_tree_tx_per_send_m{m}"] = row["tree_tx_per_send"]
        metrics[f"multicast_delivered_each_m{m}"] = row["delivered_each"]
    last = result.rows[-1]
    # x10 fixed-point so the exact gate compares integers
    metrics["multicast_reduction_m256_x10"] = int(
        last["flat_tx_per_send"] * 10 // last["tree_tx_per_send"]
    )
    metrics["multicast_reduction_m256_at_least_5x"] = int(
        last["flat_tx_per_send"] >= 5 * last["tree_tx_per_send"]
    )
    return metrics


#: metrics compared as throughput rates (2× tolerance)
RATE_METRICS = (
    "sharded_attach_per_s",
    "sharded_publish_many_msgs_per_s",
    "bus_publish_per_s",
)
#: metrics that must match the snapshot exactly (semantic drift gate)
EXACT_METRICS = ("sharded_delivered", "sharded_checked", "bus_delivered")

ANALYSIS_RATE_METRICS = (
    "hotpath_analyses_per_s",
    "concurrency_analyses_per_s",
    "wire_analyses_per_s",
    "analysis_cache_warm_per_s",
    "repo_lint_per_s",
    "sharded_publish_per_s",
    "profile_parse_per_s",
)
ANALYSIS_EXACT_METRICS = (
    "hotpath_findings",
    "concurrency_findings",
    "wire_findings",
    "analysis_cache_hit_complete",
    "repo_lint_jobs_match",
    "sharded_single_delivered",
)

MULTICAST_RATE_METRICS = ("multicast_bench_sends_per_s",)
MULTICAST_EXACT_METRICS = (
    "multicast_flat_tx_per_send_m16",
    "multicast_tree_tx_per_send_m16",
    "multicast_delivered_each_m16",
    "multicast_flat_tx_per_send_m64",
    "multicast_tree_tx_per_send_m64",
    "multicast_delivered_each_m64",
    "multicast_flat_tx_per_send_m256",
    "multicast_tree_tx_per_send_m256",
    "multicast_delivered_each_m256",
    "multicast_reduction_m256_x10",
    "multicast_reduction_m256_at_least_5x",
)


def check(
    baseline: dict,
    fresh: dict,
    rate_metrics: tuple[str, ...] = RATE_METRICS,
    exact_metrics: tuple[str, ...] = EXACT_METRICS,
) -> list[str]:
    """Compare a fresh run against a snapshot; returns failure strings."""
    failures = []
    base = baseline.get("metrics", {})
    for name in rate_metrics:
        if name not in base:
            continue  # snapshot predates the metric
        old, new = float(base[name]), float(fresh[name])
        if new < old / THRESHOLD:
            failures.append(
                f"{name}: {new:.0f}/s is more than {THRESHOLD}x below "
                f"the committed {old:.0f}/s"
            )
    for name in exact_metrics:
        if name not in base:
            continue
        if int(base[name]) != int(fresh[name]):
            failures.append(
                f"{name}: {int(fresh[name])} != committed {int(base[name])} "
                f"(deterministic workload changed meaning)"
            )
    return failures


def _gate(
    path: Path,
    fresh: dict,
    rate_metrics: tuple[str, ...],
    exact_metrics: tuple[str, ...],
) -> list[str]:
    if not path.exists():
        return [f"no snapshot at {path}; run without --check to create it"]
    baseline = json.loads(path.read_text())
    for name in rate_metrics + exact_metrics:
        committed = baseline.get("metrics", {}).get(name)
        print(f"{name}: fresh={fresh[name]:.0f} committed={committed}")
    return check(baseline, fresh, rate_metrics, exact_metrics)


def main(argv: list[str]) -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    fresh_broker = collect()
    fresh_analysis = collect_analysis()
    fresh_multicast = collect_multicast()
    if "--check" in argv:
        failures = _gate(SNAPSHOT, fresh_broker, RATE_METRICS, EXACT_METRICS)
        failures += _gate(
            ANALYSIS_SNAPSHOT,
            fresh_analysis,
            ANALYSIS_RATE_METRICS,
            ANALYSIS_EXACT_METRICS,
        )
        failures += _gate(
            MULTICAST_SNAPSHOT,
            fresh_multicast,
            MULTICAST_RATE_METRICS,
            MULTICAST_EXACT_METRICS,
        )
        if failures:
            print("\nperf trajectory REGRESSED:")
            for f in failures:
                print(f"  - {f}")
            return 1
        print("\nperf trajectory ok")
        return 0
    SNAPSHOT.write_text(
        json.dumps({"schema": 1, "metrics": fresh_broker}, indent=2, sort_keys=True)
        + "\n"
    )
    ANALYSIS_SNAPSHOT.write_text(
        json.dumps(
            {
                "schema": 1,
                "metrics": fresh_analysis,
                "provenance": HOTPATH_FIX_PROVENANCE,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    MULTICAST_SNAPSHOT.write_text(
        json.dumps(
            {"schema": 1, "metrics": fresh_multicast}, indent=2, sort_keys=True
        )
        + "\n"
    )
    for path, fresh in (
        (SNAPSHOT, fresh_broker),
        (ANALYSIS_SNAPSHOT, fresh_analysis),
        (MULTICAST_SNAPSHOT, fresh_multicast),
    ):
        print(f"wrote {path}")
        for name, value in sorted(fresh.items()):
            print(f"  {name}: {value:.0f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
