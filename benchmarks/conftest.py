"""Shared helpers for the benchmark harness.

Each benchmark regenerates one paper figure (or one ablation) and prints
the series it produced, so ``pytest benchmarks/ --benchmark-only -s``
doubles as the reproduction report generator.  Experiments are
deterministic, so a single round measures honest wall-clock cost without
re-running multi-second simulations dozens of times.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer and return it."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
