"""ABL-SEL — semantic (profile-addressed) delivery vs roster-based naming.

The paper's core substrate argument: with semantic selectors, "the group
of interacting clients is determined only at run-time" and no roster must
be synchronized.  This ablation measures (a) per-message interpretation
cost at increasing population sizes, and (b) the roster-maintenance
traffic a naming-based design would need under profile churn (semantic:
zero messages; roster: one update fan-out per change).
"""

import pytest

from repro.core.matching import interpret
from repro.core.profiles import ClientProfile
from repro.core.selectors import Selector
from repro.messaging.broker import SemanticBus
from repro.messaging.message import SemanticMessage

N_CLIENTS = 200
N_MESSAGES = 50


def build_population(n):
    roles = ("medic", "logistics", "command", "observer")
    profiles = []
    for i in range(n):
        profiles.append(
            ClientProfile(
                f"c{i}",
                {
                    "role": roles[i % len(roles)],
                    "battery": 10 + (i * 7) % 90,
                    "device": "wireless" if i % 3 == 0 else "wired",
                },
                interest="kind == 'alert' or kind == 'chat'",
            )
        )
    return profiles


@pytest.mark.benchmark(group="ablations")
def test_semantic_dispatch_cost(benchmark):
    """Per-message semantic interpretation across a 200-client session."""
    profiles = build_population(N_CLIENTS)
    selector = Selector("role == 'medic' and battery >= 30")
    headers = {"kind": "alert"}

    def dispatch_all():
        return sum(
            1 for p in profiles if interpret(selector, headers, p).accepted
        )

    matched = benchmark(dispatch_all)
    assert 0 < matched < N_CLIENTS  # selective, not broadcast


@pytest.mark.benchmark(group="ablations")
def test_profile_churn_semantic_vs_roster(benchmark):
    """Profile churn: semantic needs 0 control messages; roster needs
    O(population) fan-out per change."""
    bus = SemanticBus()
    profiles = build_population(N_CLIENTS)
    sinks = {p.client_id: [] for p in profiles}
    for p in profiles:
        bus.attach(p, lambda d, pid=p.client_id: sinks[pid].append(d))

    def churn_and_publish():
        control_messages_semantic = 0
        control_messages_roster = 0
        for i, p in enumerate(profiles[:N_MESSAGES]):
            p.update(battery=5)  # local mutation, instantly effective
            control_messages_semantic += 0
            control_messages_roster += N_CLIENTS - 1  # naming design must tell everyone
            bus.publish(
                SemanticMessage.create("hq", "battery <= 10", kind="alert")
            )
        return control_messages_semantic, control_messages_roster

    semantic, roster = benchmark.pedantic(churn_and_publish, rounds=1, iterations=1)
    assert semantic == 0
    assert roster == N_MESSAGES * (N_CLIENTS - 1)
    # the drained-battery clients actually got the alerts
    assert any(sinks[p.client_id] for p in profiles[:N_MESSAGES])


@pytest.mark.benchmark(group="ablations")
def test_selector_compile_cost(benchmark):
    """Selector parsing is cheap enough to do per message if needed."""
    text = "role == 'medic' and (battery >= 30 or priority == 'urgent') and device in ['wired', 'wireless']"

    compiled = benchmark(lambda: Selector(text))
    assert compiled.matches({"role": "medic", "battery": 50, "device": "wired"})
