"""ABL-FAULT — fault-injection subsystem overhead.

The chaos controller must be pay-for-what-you-use: an *empty* plan
installs no interceptor and no link hooks, so a session that doesn't
opt into faults pays (near) nothing.  An active plan's interceptor sits
on the per-delivery path, so its cost is measured too.
"""

import time

import pytest

from repro.network.clock import Scheduler
from repro.network.faults import ChaosController, Duplication, FaultPlan
from repro.network.simnet import Network, Packet


def _packet_storm(with_plan: FaultPlan | None, n: int = 3_000) -> int:
    sched = Scheduler()
    net = Network(sched, seed=0)
    for name in ("a", "b"):
        net.add_node(name)
    net.add_link("a", "b", bandwidth=1e9)
    got = []
    net.node("b").bind(9, lambda p: got.append(None))
    if with_plan is not None:
        ChaosController(net, with_plan, seed=0).install()
    for i in range(n):
        sched.call_at(i * 1e-5, net.send, Packet("a", 1, "b", 9, b"x" * 100))
    sched.run()
    return len(got)


@pytest.mark.benchmark(group="faults")
def test_empty_plan_delivery_throughput(benchmark):
    """Delivery rate with an installed-but-empty chaos controller."""
    delivered = benchmark(_packet_storm, FaultPlan())
    assert delivered == 3_000


@pytest.mark.benchmark(group="faults")
def test_active_interceptor_delivery_throughput(benchmark):
    """Delivery rate with a live packet interceptor (duplication window)."""
    plan = FaultPlan(events=(Duplication(start=0.0, duration=60.0, probability=0.1),))
    delivered = benchmark(_packet_storm, plan)
    assert delivered >= 3_000  # duplicates only add copies


def test_empty_plan_overhead_within_budget():
    """An empty plan targets <5% overhead over no controller at all.

    Measured directly (not via pytest-benchmark) so the assertion runs
    in plain CI too.  Rounds are interleaved and the *minimum* per
    variant compared — min-of-N is robust to the scheduling jitter of
    shared runners, where means/medians drift with background load.
    The asserted bound is deliberately looser than the 5% design target
    so a noisy runner doesn't flake the suite; locally this measures
    ~2-3%.
    """
    _packet_storm(None)  # warm-up
    bare_samples, empty_samples = [], []
    for _ in range(9):
        t0 = time.perf_counter()
        _packet_storm(None)
        bare_samples.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        _packet_storm(FaultPlan())
        empty_samples.append(time.perf_counter() - t0)
    overhead = (min(empty_samples) - min(bare_samples)) / min(bare_samples)
    assert overhead < 0.15, f"empty-plan overhead {overhead:.1%} (target <5%)"
