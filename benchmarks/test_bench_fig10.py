"""BENCH FIG10 — three wireless clients: joins degrade SIR (Sec. 6.3.3).

Paper anchors: 2nd join cuts A's SIR by ~90 %, 3rd join by a further
~23 %; an upper limit on session size follows.
"""

import pytest

from conftest import run_once
from repro.experiments.fig10 import run_fig10


@pytest.mark.benchmark(group="figures")
def test_fig10_join_degradation(benchmark):
    result = run_once(benchmark, run_fig10)
    print("\n" + result.format_table())

    sirs = result.column("sir_a_linear")
    drops = result.column("drop_vs_prev_pct")

    # every join strictly degrades the incumbent
    assert sirs == sorted(sirs, reverse=True)

    # the paper's percentages (geometry solved for them; see DESIGN.md)
    assert drops[1] == pytest.approx(90.0, abs=2.0)
    assert drops[2] == pytest.approx(23.0, abs=2.0)

    # session-size limit: with both interferers in, A's SIR is a tiny
    # fraction of its solo value
    assert sirs[-1] < 0.1 * sirs[0]
