"""BENCH FIG8 — two wireless clients, varying distance (paper Sec. 6.3.1).

Client A moves 100 m → 50 m → 100 m; the BS recomputes SIR each point and
selects the modality tier (image threshold 4 dB).
"""

import numpy as np
import pytest

from conftest import run_once
from repro.experiments.fig8 import run_fig8


@pytest.mark.benchmark(group="figures")
def test_fig8_distance_sweep(benchmark):
    result = run_once(benchmark, run_fig8)
    print("\n" + result.format_table())

    sa = np.array(result.column("sir_a_db"))
    sb = np.array(result.column("sir_b_db"))
    tiers_a = result.column("tier_a")
    tiers_b = result.column("tier_b")

    # approaching (points 0-3) monotonically improves A and degrades B
    assert np.all(np.diff(sa[:4]) > 0)
    assert np.all(np.diff(sb[:4]) < 0)
    # retreating mirrors
    assert np.all(np.diff(sa[3:]) < 0)
    assert np.all(np.diff(sb[3:]) > 0)
    # the trace is symmetric: endpoints match
    assert sa[0] == pytest.approx(sa[-1], abs=0.2)

    # "changes the SIR considerably": >10 dB swing for A
    assert sa.max() - sa.min() > 10.0

    # tier transitions: A crosses from degraded up to FULL_IMAGE at 50 m
    assert tiers_a[0] != "FULL_IMAGE"
    assert tiers_a[3] == "FULL_IMAGE"
    # B loses service as A gets close (interference)
    assert tiers_b[3] in ("TEXT_ONLY", "NOTHING")


@pytest.mark.benchmark(group="figures")
def test_fig8_uplink_dataflow(benchmark):
    """The narrative behind Fig. 8: the BS forwards whatever modality the
    sender's SIR supports — packets at full tier, text otherwise."""
    from repro.experiments.fig8 import run_fig8_dataflow

    result = run_once(benchmark, run_fig8_dataflow)
    print("\n" + result.format_table())
    for row in result.rows:
        if row["tier_a"] == "FULL_IMAGE":
            assert row["session_got_packets"]
        elif row["tier_a"] != "NOTHING":
            assert row["session_got_text"] and not row["session_got_packets"]
    # the sweep exercises both regimes
    tiers = set(result.column("tier_a"))
    assert "FULL_IMAGE" in tiers and len(tiers) >= 2
