"""ABL-RTP — the RTP-thin layer vs raw datagrams under loss/reorder.

"Reliable and ordered delivery of these packets is critical for
successful reconstruction" (Sec. 5.1).  Raw datagrams deliver fragments
out of order and torn; the RTP layer reassembles whole messages and
accounts loss.  The bench measures completion rates and layer overhead.
"""

import numpy as np
import pytest

from conftest import run_once
from repro.messaging.rtp import HEADER_SIZE, RtpPacketizer, RtpReassembler

PAYLOADS = 60
PAYLOAD_SIZE = 6000
MTU = 1400


def transmit(loss_rate: float, seed: int = 0):
    """Send PAYLOADS messages through a lossy, reordering channel."""
    rng = np.random.default_rng(seed)
    out = []
    packetizer = RtpPacketizer(ssrc=1, mtu=MTU)
    reassembler = RtpReassembler(lambda s, payload: out.append(payload), clock=lambda: 0.0)
    wire = []
    sent_payloads = []
    for i in range(PAYLOADS):
        payload = bytes([i % 256]) * PAYLOAD_SIZE
        sent_payloads.append(payload)
        wire.extend(f.encode() for f in packetizer.packetize(payload))
    # channel: iid loss + local reordering
    survivors = [w for w in wire if rng.random() >= loss_rate]
    for i in range(0, len(survivors) - 1, 2):
        if rng.random() < 0.3:
            survivors[i], survivors[i + 1] = survivors[i + 1], survivors[i]
    for w in survivors:
        reassembler.ingest(w)
    reassembler.expire()
    return sent_payloads, out, reassembler.report(1)


@pytest.mark.benchmark(group="ablations")
def test_rtp_lossless_channel_complete(benchmark):
    sent, received, report = run_once(benchmark, transmit, 0.0)
    assert received == sent  # all messages, in order, byte-exact
    assert report.fraction_lost == 0.0


@pytest.mark.benchmark(group="ablations")
def test_rtp_under_loss_degrades_gracefully(benchmark):
    sent, received, report = run_once(benchmark, transmit, 0.05)
    # every completed message is byte-exact (no torn reassembly)
    assert all(r in sent for r in received)
    # a useful fraction still completes at 5% fragment loss
    assert len(received) >= 0.5 * len(sent)
    assert report.cumulative_lost > 0
    print(
        f"\nloss=5%: {len(received)}/{len(sent)} messages complete,"
        f" fraction_lost={report.fraction_lost:.3f}"
    )


@pytest.mark.benchmark(group="ablations")
def test_rtp_overhead_is_small(benchmark):
    """Header overhead of the thin layer on image-sized payloads."""

    def overhead():
        packetizer = RtpPacketizer(ssrc=1, mtu=MTU)
        frags = packetizer.packetize(b"x" * PAYLOAD_SIZE)
        wire_bytes = sum(len(f.encode()) for f in frags)
        return wire_bytes / PAYLOAD_SIZE

    ratio = run_once(benchmark, overhead)
    assert ratio < 1.02  # under 2% overhead


@pytest.mark.benchmark(group="ablations")
def test_raw_datagrams_tear_messages(benchmark):
    """The counterfactual: without reassembly, fragments are not messages.

    A raw-datagram consumer that naively concatenates arriving fragments
    reconstructs a corrupted byte stream as soon as anything is lost or
    reordered — quantified here as the fraction of corrupted messages.
    """

    def naive():
        rng = np.random.default_rng(1)
        packetizer = RtpPacketizer(ssrc=1, mtu=MTU)
        corrupted = 0
        for i in range(PAYLOADS):
            payload = bytes([i % 256]) * PAYLOAD_SIZE
            frags = [f.payload for f in packetizer.packetize(payload)]
            frags = [f for f in frags if rng.random() >= 0.05]
            if len(frags) >= 2 and rng.random() < 0.3:
                frags[0], frags[1] = frags[1], frags[0]
            if b"".join(frags) != payload:
                corrupted += 1
        return corrupted / PAYLOADS

    corruption = run_once(benchmark, naive)
    assert corruption > 0.1  # raw delivery is not viable for images
    print(f"\nraw datagram corruption rate at 5% loss: {corruption:.0%}")
