"""BENCH FIG6 — image-viewer parameters vs page faults (paper Sec. 6.1).

Regenerates the three series of Figure 6: packets vs page faults,
compression ratio vs packets, BPP vs packets — through the full stack
(workload → host → SNMP → inference → multicast → progressive decode).
"""

import pytest

from conftest import run_once
from repro.experiments.fig6 import run_fig6


@pytest.mark.benchmark(group="figures")
def test_fig6_page_fault_sweep(benchmark):
    result = run_once(benchmark, run_fig6)
    print("\n" + result.format_table())

    packets = result.column("packets")
    bpps = result.column("bpp")
    crs = result.column("compression_ratio")

    # paper shape 1: packets 16 -> 1, powers of two, monotone non-increasing
    assert packets[0] == 16
    assert packets[-1] == 1
    assert packets == sorted(packets, reverse=True)
    assert set(packets) == {16, 8, 4, 2, 1}

    # paper shape 2: compression ratio rises as packets fall (3.6 -> 131 reported)
    assert crs == sorted(crs)
    assert crs[0] == pytest.approx(3.6, rel=0.15)
    assert crs[-1] > 10 * crs[0]

    # paper shape 3: BPP falls (2.1 -> 0.1 reported)
    assert bpps == sorted(bpps, reverse=True)
    assert bpps[0] == pytest.approx(2.2, rel=0.15)
    assert bpps[-1] < 0.2
