"""ABL-SNMP — network-state interface cost: codec and query round trips.

The inference engine polls SNMP every adaptation cycle, so the state
interface must be cheap.  Benches: BER message codec throughput, and
end-to-end GET round trips (virtual-time network, real CPU cost).
"""

import pytest

from conftest import run_once
from repro.network.clock import Scheduler
from repro.network.simnet import Network
from repro.network.udp import DatagramSocket
from repro.snmp.agent import SnmpAgent
from repro.snmp.ber import Gauge32, Integer, Null, OctetString, Sequence, TaggedPdu, decode, encode
from repro.snmp.manager import SnmpManager
from repro.snmp.mib import MibTree
from repro.snmp.oids import TASSL


def sample_message():
    return Sequence(
        (
            Integer(1),
            OctetString(b"public"),
            TaggedPdu(
                0xA0,
                (
                    Integer(1234),
                    Integer(0),
                    Integer(0),
                    Sequence(
                        tuple(
                            Sequence((oid.to_ber(), Null()))
                            for oid in (
                                TASSL.hostCpuLoad,
                                TASSL.hostPageFaults,
                                TASSL.hostFreeMemory,
                            )
                        )
                    ),
                ),
            ),
        )
    )


@pytest.mark.benchmark(group="ablations")
def test_ber_encode_throughput(benchmark):
    msg = sample_message()
    wire = benchmark(lambda: encode(msg))
    assert len(wire) > 40


@pytest.mark.benchmark(group="ablations")
def test_ber_decode_throughput(benchmark):
    wire = encode(sample_message())
    decoded = benchmark(lambda: decode(wire)[0])
    assert decoded == sample_message()


@pytest.mark.benchmark(group="ablations")
def test_snmp_get_round_trips(benchmark):
    """100 GET cycles through agent + manager + simulated network."""

    def run_cycles():
        sched = Scheduler()
        net = Network(sched, seed=0)
        net.add_node("mgr")
        net.add_node("host1")
        net.add_link("mgr", "host1", latency=0.001, bandwidth=1e7)
        tree = MibTree()
        tree.register_scalar(TASSL.hostCpuLoad, Gauge32(50))
        tree.register_scalar(TASSL.hostPageFaults, Gauge32(40))
        SnmpAgent(DatagramSocket(net, "host1"), tree)
        mgr = SnmpManager(DatagramSocket(net, "mgr"), sched)
        for _ in range(100):
            out = mgr.get("host1", [TASSL.hostCpuLoad, TASSL.hostPageFaults])
        return out

    out = run_once(benchmark, run_cycles)
    assert out[0][1].value == 50


@pytest.mark.benchmark(group="ablations")
def test_getbulk_vs_walk_round_trips(benchmark):
    """Table polling cost: GETBULK reduces round trips ~Nx on a 30-row
    interface table."""
    from repro.snmp.oids import MIB2

    def compare():
        sched = Scheduler()
        net = Network(sched, seed=0)
        net.add_node("mgr")
        net.add_node("sw")
        net.add_link("mgr", "sw", latency=0.001, bandwidth=1e7)
        tree = MibTree()
        for i in range(1, 31):
            tree.register_scalar(MIB2.ifInOctets.child(i), Gauge32(i))
        SnmpAgent(DatagramSocket(net, "sw"), tree)
        mgr = SnmpManager(DatagramSocket(net, "mgr"), sched)
        mgr.walk("sw", MIB2.ifInOctets)
        walk_cost = mgr.requests_sent
        mgr.requests_sent = 0
        rows = mgr.bulk_walk("sw", MIB2.ifInOctets, max_repetitions=30)
        return walk_cost, mgr.requests_sent, len(rows)

    walk_cost, bulk_cost, rows = run_once(benchmark, compare)
    print(f"\n30-row table: walk={walk_cost} round trips, getbulk={bulk_cost}")
    assert rows == 30
    assert bulk_cost * 5 <= walk_cost
