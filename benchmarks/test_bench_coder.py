"""ABL-EZW — progressive coder rate-distortion across packet budgets.

Why hierarchical (embedded) coding: a single truncatable stream serves
every client tier; this bench regenerates the coder's operating curve
(the substance behind FIG6/7's BPP/CR axes) and checks its cost.
"""

import numpy as np
import pytest

from conftest import run_once
from repro.media.images import collaboration_scene
from repro.media.metrics import psnr
from repro.media.progressive import PACKET_COUNTS, ProgressiveImage


@pytest.mark.benchmark(group="ablations")
def test_coder_rate_distortion_curve(benchmark):
    img = collaboration_scene(128, 128)

    def build_curve():
        prog = ProgressiveImage(img, n_packets=16, target_bpp=2.2)
        return [prog.report(k) for k in PACKET_COUNTS]

    reports = run_once(benchmark, build_curve)
    print("\npackets  bpp    CR      PSNR")
    for r in reports:
        print(f"{r.packets_used:7d}  {r.bpp:5.2f}  {r.compression_ratio:6.1f}  {r.psnr_db:5.1f}")

    psnrs = [r.psnr_db for r in reports]
    assert all(b >= a - 0.25 for a, b in zip(psnrs, psnrs[1:]))  # monotone-ish
    assert psnrs[-1] > 35.0


@pytest.mark.benchmark(group="ablations")
def test_encode_throughput_128(benchmark):
    """Encoding cost of a 128x128 frame at the experiment rate."""
    img = collaboration_scene(128, 128)
    prog = benchmark(lambda: ProgressiveImage(img, n_packets=16, target_bpp=2.2))
    assert prog.total_bits > 0


@pytest.mark.benchmark(group="ablations")
def test_embedded_vs_fixed_quality(benchmark):
    """The design-choice ablation: one embedded stream vs per-tier
    re-encodes.  To serve K distinct quality tiers the fixed design runs
    the coder K times; embedded runs once and truncates."""
    img = collaboration_scene(64, 64)
    tiers = (1, 4, 16)

    def fixed_quality_design():
        total_bits = 0
        for k in tiers:
            prog = ProgressiveImage(img, n_packets=16, target_bpp=2.2 * k / 16)
            total_bits += prog.total_bits
        return total_bits

    fixed_bits = run_once(benchmark, fixed_quality_design)
    embedded = ProgressiveImage(img, n_packets=16, target_bpp=2.2)
    # embedded serves every tier from one stream no longer than its top rate
    assert embedded.total_bits < fixed_bits
    for k in tiers:
        assert psnr(img, embedded.reconstruct(k)) > 15.0
