"""ABL-TIER — tier gating saves radio airtime on physically-dead channels.

With the channel coupled (SIR → packet loss), fragments unicast to a
below-image-tier client are mostly lost anyway.  Tier gating means the
BS never puts them on the air: same delivered utility (the client gets
its text/sketch rendition), a fraction of the airtime.
"""

import pytest

from conftest import run_once
from repro.core.framework import CollaborationFramework
from repro.core.policies import PolicyDatabase, SirTierPolicy
from repro.media.images import collaboration_scene


def run_cell(gating: bool, seed: int = 3):
    """One wired sharer, one weak wireless client; coupled channel.

    Returns (radio bytes transmitted toward the weak client, packets the
    client actually completed, text/sketch renditions it received).
    """
    fw = CollaborationFramework("tier-bench", seed=seed)
    wired = fw.add_wired_client("wired")
    policies = None
    if not gating:
        policies = PolicyDatabase()
        policies.set_sir_policy(
            SirTierPolicy(image_db=-100.0, sketch_db=-100.0, text_db=-100.0)
        )
    bs = fw.add_base_station("bs", policies=policies)
    # geometry: weak lands in the text band (~-5 dB), strong in full tier
    weak = fw.add_wireless_client("weak", bs, distance=80.0)
    fw.add_wireless_client("strong", bs, distance=60.0)
    wired.join()
    bs.couple_channel()
    bs.evaluate_qos()

    # a 128x128 share: each of the 16 fragments is ~600 B, i.e. real data
    # frames that cannot ride the robust base rate
    wired.viewer.target_bpp = 4.0
    wired.share_image("img", collaboration_scene(128, 128))
    fw.run_for(5.0)

    link = fw.network.link("bs", "weak")
    counts = weak.modality_counts()
    return link.tx_octets, counts["image_packets"], counts["text"] + counts["sketch"]


@pytest.mark.benchmark(group="ablations")
def test_tier_gating_saves_airtime(benchmark):
    def both():
        return run_cell(gating=True), run_cell(gating=False)

    (gated_bytes, gated_pkts, gated_rendition), (raw_bytes, raw_pkts, _) = run_once(
        benchmark, both
    )
    print(
        f"\ngated:   {gated_bytes:7d} B on air, {gated_pkts} image pkts delivered,"
        f" {gated_rendition} degraded rendition(s)"
    )
    print(f"ungated: {raw_bytes:7d} B on air, {raw_pkts} image pkts delivered")

    # gating cuts the airtime toward the weak client by a large factor ...
    assert gated_bytes * 3 < raw_bytes
    # ... while the client still follows the session via text/sketch
    assert gated_rendition >= 1
    # and the ungated design wasted the air: the dead channel delivered
    # few (usually zero) complete packets anyway
    assert raw_pkts < 16
