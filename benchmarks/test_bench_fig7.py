"""BENCH FIG7 — image-viewer parameters vs CPU load (paper Sec. 6.2).

Color image; packets 16 → 0 over 30–100 % CPU; BPP 14.3 → 0.7 and CR
1.6 → 32.7 reported (24-bit raw baseline).
"""

import pytest

from conftest import run_once
from repro.experiments.fig7 import run_fig7


@pytest.mark.benchmark(group="figures")
def test_fig7_cpu_load_sweep(benchmark):
    result = run_once(benchmark, run_fig7)
    print("\n" + result.format_table())

    packets = result.column("packets")
    bpps = result.column("bpp")
    crs = [c for c in result.column("compression_ratio") if c is not None]

    # packets drop from 16 all the way to 0 at saturation
    assert packets[0] == 16
    assert packets[-1] == 0
    assert packets == sorted(packets, reverse=True)

    # BPP anchors: ~14.3 at full quality, <1 at one packet, 0 at zero
    assert bpps[0] == pytest.approx(14.3, rel=0.1)
    one_packet_rows = [r for r in result.rows if r["packets"] == 1]
    assert one_packet_rows and one_packet_rows[0]["bpp"] == pytest.approx(0.9, rel=0.3)
    assert bpps[-1] == 0.0

    # CR anchors: ~1.6 at 16 packets, tens at 1 packet (paper: 1.6 -> 32.7)
    assert crs[0] == pytest.approx(1.68, rel=0.1)
    assert 15.0 < crs[-1] < 60.0
