"""BENCH-MCAST — tree replication vs. flat fan-out on the router fabric.

Asserts the ISSUE 10 acceptance criterion directly: a group send to a
256-member group spread over the two-domain topology costs O(tree edges)
physical packets (measured by ``Network.packets_transmitted``), at least
5× fewer than the flat per-member unicast fan-out — and both modes
deliver to the identical member set.
"""

import pytest

from conftest import run_once
from repro.experiments.multicast_scale import run_multicast_scale


@pytest.mark.benchmark(group="multicast-fabric")
def test_tree_reduction_at_256(benchmark):
    """M=256 on two domains: >=5x fewer packets per send, same delivery."""
    result = run_once(benchmark, run_multicast_scale)

    by_m = {row["members"]: row for row in result.rows}
    row = by_m[256]
    print(
        f"\nM=256: flat={row['flat_tx_per_send']} tree={row['tree_tx_per_send']} "
        f"({row['reduction']:.2f}x), delivered={row['delivered_each']}/send"
    )
    # every member hears every send, in both modes (equality is asserted
    # inside run_multicast_scale; here we pin the absolute count)
    assert row["delivered_each"] == 256
    # tree cost is exactly one transmission per tree edge
    assert row["tree_tx_per_send"] == row["tree_edges"]
    # the acceptance criterion: >=5x packet reduction at M=256
    assert row["flat_tx_per_send"] >= 5 * row["tree_tx_per_send"]
    # and the gap widens with group size
    reductions = [by_m[m]["reduction"] for m in sorted(by_m)]
    assert reductions == sorted(reductions)
