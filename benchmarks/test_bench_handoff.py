"""ABL-HO — handoff across cells vs sticking to one base station.

The paper motivates dynamism with "path updates of the wireless user".
A client crossing between two cells keeps usable SIR when the handoff
manager re-associates it; without handoff its service decays with d⁻⁴.
"""

import numpy as np
import pytest

from conftest import run_once
from repro.core.framework import CollaborationFramework
from repro.core.handoff import HandoffManager, Position


def drive_across(with_handoff: bool):
    """Walk a client 0→400 m between two stations; sample serving SIR."""
    fw = CollaborationFramework("ho-bench", seed=0)
    west = fw.add_base_station("bs-west")
    east = fw.add_base_station("bs-east")
    client = fw.add_wireless_client("roamer", west, distance=20.0)
    hm = HandoffManager(fw.network, hysteresis_db=3.0)
    hm.add_station(west, Position(0.0, 0.0))
    hm.add_station(east, Position(400.0, 0.0))
    hm.add_client(client, Position(20.0, 0.0), serving_bs="bs-west")

    xs = np.linspace(20.0, 380.0, 19)
    serving_sir = []
    for x in xs:
        hm.move_client("roamer", Position(float(x), 0.0))
        if with_handoff:
            hm.step()
        table = hm.evaluate()
        serving_sir.append(table["roamer"][hm.serving_station("roamer")])
    return xs, np.array(serving_sir), hm.events


@pytest.mark.benchmark(group="ablations")
def test_handoff_preserves_service(benchmark):
    def both():
        return drive_across(True), drive_across(False)

    (xs, with_ho, events), (_, without_ho, _) = run_once(benchmark, both)
    print("\n x(m)   with-HO(dB)  without-HO(dB)")
    for x, a, b in zip(xs[::3], with_ho[::3], without_ho[::3]):
        print(f"{x:5.0f}   {a:10.1f}  {b:13.1f}")

    # exactly one handoff happened, into the east cell, past the midpoint
    # (hysteresis delays it until east is clearly better)
    assert len(events) == 1
    assert events[0].to_bs == "bs-east"
    assert events[0].to_sir_db > events[0].from_sir_db + 3.0
    # with handoff, worst-case serving SIR across the walk is far better
    # (hysteresis holds the old cell slightly past the midpoint, so the
    # dip is bounded by the crossover SIR, not by the far-cell decay)
    assert with_ho.min() > without_ho.min() + 8.0
    # far side: handoff keeps near-cell service, no-handoff decays
    assert with_ho[-1] > without_ho[-1] + 30.0
    # both equal while still in the west cell
    assert with_ho[0] == pytest.approx(without_ho[0])
