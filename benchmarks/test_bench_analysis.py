"""ABL-ANA — static analyzer throughput on generated selector corpora.

The analyzer gates CI, so its cost matters: this bench measures full
``analyze_selector`` reports (SAT + vacuity, witness re-verification)
over generated corpora of 100 and 1000 selectors, and the pairwise
subsumption audit over a registration-sized set.  Corpora mix shapes the
repo actually uses (role/capability equalities, threshold bands,
membership, negations) so the numbers reflect gate wall-clock, not a
micro-loop.
"""

import pytest

from repro.analysis import Verdict, analyze_selector, analyze_selector_set

ROLES = ("medic", "logistics", "command", "observer")
ENCODINGS = ("jpeg", "mpeg2", "h261", "png")


def build_corpus(n):
    """``n`` deterministic selectors over the repo's vocabulary."""
    out = []
    for i in range(n):
        role = ROLES[i % len(ROLES)]
        enc = ENCODINGS[i % len(ENCODINGS)]
        lo = 10 + (i * 7) % 60
        shape = i % 5
        if shape == 0:
            out.append(f"role == '{role}' and battery >= {lo}")
        elif shape == 1:
            out.append(f"load > {lo} and load < {lo + 25} and exists(device)")
        elif shape == 2:
            out.append(f"encoding in ['{enc}', 'jpeg'] and caps contains '{enc}'")
        elif shape == 3:
            out.append(f"not (role == '{role}') or battery < {lo}")
        else:
            out.append(f"kind == 'alert' or (kind == 'chat' and priority >= {lo % 10})")
    return out


def analyze_corpus(corpus):
    verdicts = [analyze_selector(text).verdict for text in corpus]
    assert all(v is Verdict.SAT for v in verdicts)  # corpus is well-formed
    return len(verdicts)


@pytest.mark.benchmark(group="analysis")
def test_analyzer_throughput_100(benchmark):
    """Full reports over a 100-selector corpus."""
    corpus = build_corpus(100)
    analyzed = benchmark(analyze_corpus, corpus)
    assert analyzed == 100


@pytest.mark.benchmark(group="analysis")
def test_analyzer_throughput_1000(benchmark):
    """Full reports over a 1000-selector corpus."""
    corpus = build_corpus(1000)
    analyzed = benchmark.pedantic(analyze_corpus, args=(corpus,), rounds=1, iterations=1)
    assert analyzed == 1000


@pytest.mark.benchmark(group="analysis")
def test_subsumption_audit_cost(benchmark):
    """Pairwise implication/overlap over a registration-sized set."""
    labelled = [(f"s{i}", text) for i, text in enumerate(build_corpus(40))]

    def audit():
        return analyze_selector_set(labelled, max_pairs=400)

    diags = benchmark.pedantic(audit, rounds=1, iterations=1)
    # generated corpus repeats shapes, so the audit must find equivalences
    assert any(d.code == "SEL005" for d in diags)


# ----------------------------------------------------------------------
# dataflow engine cost (call graph + UNI/EXC/RES passes)
# ----------------------------------------------------------------------
from repro.analysis import build_call_graph_from_sources, dataflow_diagnostics

_DATAFLOW_MODULE = (
    "class WireError(Exception):\n"
    "    pass\n"
    "def parse_{i}(data):\n"
    "    if not data:\n"
    "        raise WireError('empty')\n"
    "    return data\n"
    "def deliver_{i}(data, src):\n"
    "    try:\n"
    "        parse_{i}(data)\n"
    "    except WireError:\n"
    "        return\n"
    "def attach_{i}(sock):\n"
    "    sock.on_receive = deliver_{i}\n"
    "def budget_{i}(rate_bps, margin_db):\n"
    "    window_bps = rate_bps + {i}\n"
    "    return window_bps\n"
    "def poll_{i}(net):\n"
    "    sock = DatagramSocket(net, 'a')\n"
    "    try:\n"
    "        sock.sendto(b'x', ('b', 7))\n"
    "    finally:\n"
    "        sock.close()\n"
)


def build_dataflow_corpus(n_modules):
    """``n_modules`` synthetic modules exercising every rule family."""
    return [
        (f"src/pkg/mod{i}.py", _DATAFLOW_MODULE.replace("{i}", str(i)))
        for i in range(n_modules)
    ]


@pytest.mark.benchmark(group="analysis")
def test_callgraph_construction_cost(benchmark):
    """Two-pass call-graph build over a 50-module synthetic tree."""
    sources = build_dataflow_corpus(50)
    graph = benchmark(build_call_graph_from_sources, sources)
    assert len(graph) == 50 * 5  # five functions per module


@pytest.mark.benchmark(group="analysis")
def test_dataflow_pass_throughput(benchmark):
    """All UNI/EXC/RES passes (fixpoints included) over a prebuilt graph."""
    graph = build_call_graph_from_sources(build_dataflow_corpus(50))

    def run():
        return dataflow_diagnostics(graph)

    diags = benchmark.pedantic(run, rounds=3, iterations=1)
    assert diags == []  # corpus is the clean idiom for every family


# ----------------------------------------------------------------------
# typestate engine cost (protocol automata + concurrency passes)
# ----------------------------------------------------------------------
from repro.analysis import typestate_diagnostics

_TYPESTATE_MODULE = (
    "def locks_{i}(lm: LockManager):\n"
    "    lm.acquire('k{i}', 'a')\n"
    "    lm.release('k{i}', 'a')\n"
    "def reasm_{i}(part: _PartialMessage, pkt):\n"
    "    part.fragments[pkt.frag_index] = pkt.payload\n"
    "    if part.complete:\n"
    "        return part.assemble()\n"
    "def poll_{i}(sock, sched):\n"
    "    mgr = SnmpManager(sock, sched)\n"
    "    out = mgr.get('h', ['1.3.6.1'])\n"
    "    mgr.close()\n"
    "    return out\n"
    "def subs_{i}(bus, profile, cb, d):\n"
    "    sub = bus.attach(profile, cb)\n"
    "    sub.callback(d)\n"
    "    sub.detach()\n"
)


def build_typestate_corpus(n_modules):
    """``n_modules`` synthetic modules exercising every protocol automaton."""
    return [
        (f"src/pkg/ts{i}.py", _TYPESTATE_MODULE.replace("{i}", str(i)))
        for i in range(n_modules)
    ]


@pytest.mark.benchmark(group="analysis")
def test_typestate_pass_throughput(benchmark):
    """All TSP/CON passes (automata walks included) over a prebuilt graph."""
    graph = build_call_graph_from_sources(build_typestate_corpus(50))

    def run():
        return typestate_diagnostics(graph)

    diags = benchmark.pedantic(run, rounds=3, iterations=1)
    assert diags == []  # corpus is the clean idiom for every protocol
