"""ABL-ANA — static analyzer throughput on generated selector corpora.

The analyzer gates CI, so its cost matters: this bench measures full
``analyze_selector`` reports (SAT + vacuity, witness re-verification)
over generated corpora of 100 and 1000 selectors, and the pairwise
subsumption audit over a registration-sized set.  Corpora mix shapes the
repo actually uses (role/capability equalities, threshold bands,
membership, negations) so the numbers reflect gate wall-clock, not a
micro-loop.
"""

import pytest

from repro.analysis import Verdict, analyze_selector, analyze_selector_set

ROLES = ("medic", "logistics", "command", "observer")
ENCODINGS = ("jpeg", "mpeg2", "h261", "png")


def build_corpus(n):
    """``n`` deterministic selectors over the repo's vocabulary."""
    out = []
    for i in range(n):
        role = ROLES[i % len(ROLES)]
        enc = ENCODINGS[i % len(ENCODINGS)]
        lo = 10 + (i * 7) % 60
        shape = i % 5
        if shape == 0:
            out.append(f"role == '{role}' and battery >= {lo}")
        elif shape == 1:
            out.append(f"load > {lo} and load < {lo + 25} and exists(device)")
        elif shape == 2:
            out.append(f"encoding in ['{enc}', 'jpeg'] and caps contains '{enc}'")
        elif shape == 3:
            out.append(f"not (role == '{role}') or battery < {lo}")
        else:
            out.append(f"kind == 'alert' or (kind == 'chat' and priority >= {lo % 10})")
    return out


def analyze_corpus(corpus):
    verdicts = [analyze_selector(text).verdict for text in corpus]
    assert all(v is Verdict.SAT for v in verdicts)  # corpus is well-formed
    return len(verdicts)


@pytest.mark.benchmark(group="analysis")
def test_analyzer_throughput_100(benchmark):
    """Full reports over a 100-selector corpus."""
    corpus = build_corpus(100)
    analyzed = benchmark(analyze_corpus, corpus)
    assert analyzed == 100


@pytest.mark.benchmark(group="analysis")
def test_analyzer_throughput_1000(benchmark):
    """Full reports over a 1000-selector corpus."""
    corpus = build_corpus(1000)
    analyzed = benchmark.pedantic(analyze_corpus, args=(corpus,), rounds=1, iterations=1)
    assert analyzed == 1000


@pytest.mark.benchmark(group="analysis")
def test_subsumption_audit_cost(benchmark):
    """Pairwise implication/overlap over a registration-sized set."""
    labelled = [(f"s{i}", text) for i, text in enumerate(build_corpus(40))]

    def audit():
        return analyze_selector_set(labelled, max_pairs=400)

    diags = benchmark.pedantic(audit, rounds=1, iterations=1)
    # generated corpus repeats shapes, so the audit must find equivalences
    assert any(d.code == "SEL005" for d in diags)
