"""ABL-SIM — discrete-event substrate throughput.

The experiments run entire collaboration sessions inside the simulator,
so its event and packet throughput bound every study's wall-clock cost.
"""

import pytest

from repro.network.clock import Scheduler
from repro.network.simnet import Network, Packet
from repro.network.udp import DatagramSocket


@pytest.mark.benchmark(group="substrate")
def test_scheduler_event_throughput(benchmark):
    """Dispatch rate of bare scheduler events."""

    def run():
        sched = Scheduler()
        count = 10_000
        for i in range(count):
            sched.call_after(i * 1e-6, lambda: None)
        return sched.run()

    dispatched = benchmark(run)
    assert dispatched == 10_000


@pytest.mark.benchmark(group="substrate")
def test_packet_delivery_throughput(benchmark):
    """End-to-end datagram rate through a 3-hop path."""

    def run():
        sched = Scheduler()
        net = Network(sched, seed=0)
        for n in ("a", "r1", "r2", "b"):
            net.add_node(n)
        net.add_link("a", "r1", bandwidth=1e9)
        net.add_link("r1", "r2", bandwidth=1e9)
        net.add_link("r2", "b", bandwidth=1e9)
        got = []
        net.node("b").bind(9, lambda p: got.append(None))
        sock = DatagramSocket(net, "a")
        for _ in range(2_000):
            sock.sendto(b"x" * 100, ("b", 9))
        sched.run()
        return len(got)

    delivered = benchmark(run)
    assert delivered == 2_000


@pytest.mark.benchmark(group="substrate")
def test_full_session_event_cost(benchmark):
    """A whole chat-heavy session: 2 clients, 200 chat lines."""
    from repro.core.framework import CollaborationFramework

    def run():
        fw = CollaborationFramework("perf")
        a = fw.add_wired_client("alice")
        b = fw.add_wired_client("bob")
        a.join()
        b.join()
        fw.run_for(0.2)
        for i in range(200):
            (a if i % 2 == 0 else b).send_chat(f"line {i}")
        fw.run_for(5.0)
        return len(a.chat.lines), len(b.chat.lines)

    la, lb = benchmark(run)
    assert la == 200 and lb == 200
