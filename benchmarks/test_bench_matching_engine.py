"""ABL-IDX — indexed vs linear publish dispatch across population sizes.

The matching engine's pitch: with a predicate index over attached
profiles, a selective publish interprets only its shortlist instead of
every subscriber, so per-message cost stays near-constant while the
linear path grows with the population.  This sweep measures publish
throughput at 10 / 100 / 1000 / 5000 subscribers on both paths with a
selective selector, and asserts the indexed path is at least 5× faster
at 1000 subscribers.
"""

import time

import pytest

from repro.core.profiles import ClientProfile
from repro.messaging.broker import SemanticBus
from repro.messaging.message import SemanticMessage

SWEEP = (10, 100, 1000, 5000)
SELECTOR = "role == 'medic' and battery >= 80"
N_MESSAGES = 30


def build_bus(n, indexed):
    roles = ("medic", "logistics", "command", "observer")
    bus = SemanticBus(indexed=indexed)
    for i in range(n):
        profile = ClientProfile(
            f"c{i}",
            {
                "role": roles[i % len(roles)],
                "battery": 10 + (i * 7) % 90,
                "device": "wireless" if i % 3 == 0 else "wired",
            },
        )
        bus.attach(profile, lambda d: None)
    return bus


def publish_burst(bus):
    delivered = 0
    for _ in range(N_MESSAGES):
        delivered += bus.publish(
            SemanticMessage.create("hq", SELECTOR, kind="alert")
        ).delivered
    return delivered


def timed_burst(bus):
    start = time.perf_counter()
    delivered = publish_burst(bus)
    return time.perf_counter() - start, delivered


@pytest.mark.benchmark(group="matching-engine")
@pytest.mark.parametrize("n", SWEEP)
def test_indexed_publish_sweep(benchmark, n):
    """Publish throughput with the predicate index at each population size."""
    bus = build_bus(n, indexed=True)
    delivered = benchmark.pedantic(publish_burst, args=(bus,), rounds=1, iterations=1)
    if n >= 100:  # the 10-client population has no high-battery medic
        assert delivered > 0
    assert bus.engine.indexed_publishes == N_MESSAGES


@pytest.mark.benchmark(group="matching-engine")
@pytest.mark.parametrize("n", SWEEP)
def test_linear_publish_sweep(benchmark, n):
    """The same burst with the index disabled (reference semantics)."""
    bus = build_bus(n, indexed=False)
    delivered = benchmark.pedantic(publish_burst, args=(bus,), rounds=1, iterations=1)
    if n >= 100:
        assert delivered > 0


@pytest.mark.benchmark(group="matching-engine")
def test_indexed_speedup_at_1000(benchmark):
    """Acceptance bar: >= 5x publish throughput over linear at 1000
    subscribers with a selective selector."""
    n = 1000
    indexed_bus = build_bus(n, indexed=True)
    linear_bus = build_bus(n, indexed=False)

    # identical decisions first — the speedup must not change semantics
    warm_i = indexed_bus.publish(SemanticMessage.create("hq", SELECTOR, kind="alert"))
    warm_l = linear_bus.publish(SemanticMessage.create("hq", SELECTOR, kind="alert"))
    assert warm_i.delivered == warm_l.delivered
    assert warm_i.rejected == warm_l.rejected
    assert warm_i.matched_via_index and not warm_l.matched_via_index
    assert warm_i.candidates_checked < warm_l.candidates_checked

    def measure():
        indexed_s, delivered_i = timed_burst(indexed_bus)
        linear_s, delivered_l = timed_burst(linear_bus)
        return indexed_s, linear_s, delivered_i, delivered_l

    indexed_s, linear_s, delivered_i, delivered_l = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    assert delivered_i == delivered_l
    speedup = linear_s / indexed_s
    print(
        f"\npublish x{N_MESSAGES} at n={n}: linear {linear_s * 1e3:.2f} ms,"
        f" indexed {indexed_s * 1e3:.2f} ms, speedup {speedup:.1f}x"
    )
    assert speedup >= 5.0
