"""ABL-PC — power control on/off vs cell capacity.

"Modality transformation at the base-station is one way of increasing
the number of clients that can be accommodated" — and so is power
control.  This ablation measures how many clients a cell can serve at a
given SIR target with (a) fixed equal powers vs (b) Foschini–Miljanic
target tracking, plus the convergence cost of the iteration.
"""

import numpy as np
import pytest

from conftest import run_once
from repro.wireless.channel import NoiseModel, PathLossModel
from repro.wireless.powercontrol import feasible_targets, foschini_miljanic
from repro.wireless.sir import sir_db

TARGET_DB = -8.0  # text+sketch-capable service level for everyone
PATHLOSS = PathLossModel(alpha=4.0, k=1e6)
SIGMA2 = NoiseModel(reference_power=1.0, snr_ref_db=40.0).sigma2


def ring_gains(n, d_min=40.0, d_max=120.0):
    """n clients spread over distances d_min..d_max."""
    distances = np.linspace(d_min, d_max, n)
    return np.asarray(PATHLOSS.gain(distances))


def capacity_fixed_power():
    """Largest n where equal unit powers meet TARGET_DB for everyone."""
    n = 1
    while n < 50:
        gains = ring_gains(n + 1)
        if np.min(sir_db(np.ones(n + 1), gains, SIGMA2)) < TARGET_DB:
            break
        n += 1
    return n


def capacity_power_controlled():
    """Largest n where FM power control meets TARGET_DB for everyone."""
    n = 1
    while n < 50:
        gains = ring_gains(n + 1)
        targets = np.full(n + 1, TARGET_DB)
        if not feasible_targets(gains, targets, SIGMA2):
            break
        res = foschini_miljanic(gains, targets, SIGMA2, max_power=10.0)
        if not res.converged:
            break
        n += 1
    return n


@pytest.mark.benchmark(group="ablations")
def test_power_control_extends_capacity(benchmark):
    def both():
        return capacity_fixed_power(), capacity_power_controlled()

    fixed, controlled = run_once(benchmark, both)
    print(f"\ncell capacity at {TARGET_DB} dB target: fixed={fixed}, power-controlled={controlled}")
    assert controlled >= fixed  # control never hurts
    assert controlled > fixed   # and actually helps for spread-out clients


@pytest.mark.benchmark(group="ablations")
def test_fm_convergence_speed(benchmark):
    """Iterations to converge a 5-client cell (distributed algorithm cost)."""
    gains = ring_gains(5)
    targets = np.full(5, TARGET_DB)
    assert feasible_targets(gains, targets, SIGMA2)

    res = benchmark(lambda: foschini_miljanic(gains, targets, SIGMA2, max_power=10.0))
    assert res.converged
    assert res.iterations < 100
    print(f"\nFM converged in {res.iterations} iterations")


@pytest.mark.benchmark(group="ablations")
def test_power_control_saves_energy(benchmark):
    """Controlled powers sum well below the fixed-power budget."""
    gains = ring_gains(5)
    targets = np.full(5, TARGET_DB)

    res = run_once(
        benchmark, foschini_miljanic, gains, targets, SIGMA2, None, 10.0
    )
    fixed_total = 5 * 1.0
    controlled_total = float(res.powers.sum())
    print(f"\ntotal power: fixed={fixed_total:.2f}, controlled={controlled_total:.3f}")
    assert controlled_total < fixed_total
