"""ABL-SNAP — the paper's power-of-two packet discretization.

The inference engine snaps budgets to {0,1,2,4,8,16} ("the numbers of
packets vary from 1 to 16 in powers of 2").  The ablation quantifies
what that coarseness costs against a hypothetical continuous budget:
bounded quality loss (< the one-halving step) for a 3-entry policy table
instead of a 16-entry one.
"""

import numpy as np
import pytest

from conftest import run_once
from repro.media.images import collaboration_scene
from repro.media.progressive import ProgressiveImage

SNAPS = (0, 1, 2, 4, 8, 16)


def snap_down(k: int) -> int:
    return max(s for s in SNAPS if s <= k)


@pytest.mark.benchmark(group="ablations")
def test_power_of_two_snap_cost(benchmark):
    def measure():
        img = collaboration_scene(64, 64)
        prog = ProgressiveImage(img, n_packets=16, target_bpp=2.2)
        rows = []
        for k in range(1, 17):
            exact = prog.report(k)
            snapped = prog.report(snap_down(k))
            rows.append((k, snap_down(k), exact.psnr_db, snapped.psnr_db))
        return rows

    rows = run_once(benchmark, measure)
    print("\nbudget  snapped  psnr_exact  psnr_snapped  delta")
    worst = 0.0
    for k, s, pe, ps in rows:
        delta = pe - ps
        worst = max(worst, delta)
        print(f"{k:6d}  {s:7d}  {pe:10.1f}  {ps:12.1f}  {delta:5.1f}")

    # snapping never *helps* quality and costs at most one halving step
    assert all(pe >= ps - 0.3 for _, _, pe, ps in rows)
    # the worst case is the step just below a power of two (e.g. 15 -> 8)
    worst_k = max(rows, key=lambda r: r[2] - r[3])[0]
    assert worst_k in (3, 7, 15)
    # and stays bounded: the embedded coder degrades gracefully
    assert worst < 15.0
